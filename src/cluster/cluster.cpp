#include "cluster/cluster.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/fnv.hpp"
#include "common/logging.hpp"
#include "health/flightrec.hpp"
#include "obs/metrics.hpp"

namespace gp::cluster {

namespace {

/// Ring point for (slot, virtual node) — pure, so the ring is identical
/// across runs and across routers.
std::uint64_t ring_hash(std::size_t slot, std::size_t vnode) {
  std::uint64_t h = fnv::kOffsetBasis;
  h = fnv::accumulate_value(h, static_cast<std::uint64_t>(slot));
  h = fnv::accumulate_value(h, static_cast<std::uint64_t>(vnode));
  return h;
}

std::uint64_t session_hash(std::uint64_t session_id) {
  return fnv::accumulate_value(fnv::kOffsetBasis, session_id);
}

FrameCloud own_frame(const FrameView& frame) {
  FrameCloud owned;
  owned.frame_index = frame.frame_index;
  owned.timestamp = frame.timestamp;
  owned.points.assign(frame.points.begin(), frame.points.end());
  return owned;
}

}  // namespace

const char* eviction_reason_name(EvictionReason reason) {
  switch (reason) {
    case EvictionReason::kProcessDied:
      return "process_died";
    case EvictionReason::kLinkFailure:
      return "link_failure";
    case EvictionReason::kMissedHeartbeats:
      return "missed_heartbeats";
  }
  return "unknown";
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.virtual_nodes == 0) config_.virtual_nodes = 1;
  if (config_.checkpoint_every == 0) config_.checkpoint_every = 1;
  workers_.resize(config_.workers);
  ring_.reserve(config_.workers * config_.virtual_nodes);
  for (std::size_t slot = 0; slot < config_.workers; ++slot) {
    for (std::size_t v = 0; v < config_.virtual_nodes; ++v) {
      ring_.emplace_back(ring_hash(slot, v), slot);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t slot = 0; slot < config_.workers; ++slot) spawn_slot_locked(slot);
  publish_gauges_locked();
}

Cluster::~Cluster() {
  std::lock_guard<std::mutex> lk(mu_);
  for (WorkerState& w : workers_) {
    if (!w.alive) continue;
    // Best-effort graceful stop: one kShutdown attempt with a short budget,
    // then close the link (EOF also terminates a healthy worker).
    try {
      attempt_locked(w.handle.slot, ++w.seq, MsgType::kShutdown, std::string(),
                     /*deadline_ms=*/500);
    } catch (...) {
    }
    w.handle.channel.close();
  }
  for (WorkerState& w : workers_) {
    if (!w.alive || w.handle.pid <= 0) continue;
    int status = 0;
    bool reaped = false;
    for (int i = 0; i < 200; ++i) {  // ~2 s grace for the clean exit
      const pid_t rc = ::waitpid(w.handle.pid, &status, WNOHANG);
      if (rc == w.handle.pid || (rc < 0 && errno == ECHILD)) {
        reaped = true;
        break;
      }
      ::usleep(10 * 1000);
    }
    if (!reaped) {
      ::kill(w.handle.pid, SIGKILL);
      ::waitpid(w.handle.pid, &status, 0);
    }
    w.alive = false;
  }
}

std::vector<int> Cluster::open_fds_locked() const {
  std::vector<int> fds;
  for (const WorkerState& w : workers_) {
    if (w.alive && w.handle.channel.valid()) fds.push_back(w.handle.channel.fd());
  }
  return fds;
}

void Cluster::spawn_slot_locked(std::size_t slot) {
  WorkerState& w = workers_[slot];
  w.handle = spawn_worker(config_, slot, open_fds_locked());
  w.alive = true;
  w.seq = 0;
  w.last_ok_ns = monotonic_ns();
  w.missed_heartbeats = 0;
  ++stats_.workers_spawned;
  GP_COUNTER_ADD("gp.cluster.workers_spawned", 1);
}

std::size_t Cluster::route_locked(std::uint64_t session_id) const {
  if (ring_.empty()) return kNoOwner;
  const std::uint64_t h = session_hash(session_id);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, static_cast<std::size_t>(0)));
  for (std::size_t step = 0; step < ring_.size(); ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (workers_[it->second].alive) return it->second;
  }
  return kNoOwner;
}

Cluster::SessionState& Cluster::session_locked(std::uint64_t session_id) {
  return sessions_[session_id];
}

Message Cluster::attempt_locked(std::size_t slot, std::uint64_t seq, MsgType type,
                                const std::string& payload, std::uint64_t deadline_ms) {
  WorkerState& w = workers_[slot];
  if (!w.handle.channel.valid()) throw TransportError("worker link is closed");
  Message request;
  request.type = type;
  request.seq = seq;
  request.payload = payload;
  ++stats_.rpc_attempts;
  w.handle.channel.send_message(encode_message(request));
  std::string bytes;
  for (;;) {
    if (!w.handle.channel.recv_message(bytes, deadline_ms)) {
      throw TransportError("worker closed the link mid-RPC");
    }
    Message reply;
    try {
      reply = decode_message(bytes);
    } catch (const SerializationError& e) {
      // The reply got damaged in flight: a retransmission produces fresh
      // bytes, so this is a *transport* fault at the RPC layer — wrapping it
      // keeps faults::with_retries' never-retry-SerializationError contract
      // intact while still retrying the link.
      ++stats_.corrupt_replies;
      GP_COUNTER_ADD("gp.cluster.corrupt_replies", 1);
      throw TransportError(std::string("corrupt reply envelope: ") + e.what());
    }
    if (reply.type == MsgType::kCorrupt) {
      // Our request got damaged in flight; the worker rejected it typed and
      // changed no state. Re-send (same seq, so a racing duplicate is safe).
      ++stats_.corrupt_requests;
      GP_COUNTER_ADD("gp.cluster.corrupt_requests", 1);
      throw TransportError("worker rejected a corrupt request: " +
                           decode_text(reply.payload));
    }
    // A reply from an earlier timed-out attempt of a previous RPC can still
    // sit in the stream; seqs are per-link unique, so skip anything stale.
    if (reply.seq != seq) continue;
    w.last_ok_ns = monotonic_ns();
    w.missed_heartbeats = 0;
    return reply;
  }
}

Message Cluster::call_locked(std::size_t slot, MsgType type, const std::string& payload,
                             std::uint64_t deadline_ms,
                             const faults::RetryPolicy& policy) {
  WorkerState& w = workers_[slot];
  if (!w.alive) throw TransportError("worker slot is down");
  // One seq for the whole RPC: every retry re-sends the same seq, so the
  // worker's at-most-once cache fires instead of re-executing the request.
  const std::uint64_t seq = ++w.seq;
  ++stats_.rpc_calls;
  try {
    return faults::with_retries(policy, [&]() -> Message {
      return attempt_locked(slot, seq, type, payload, deadline_ms);
    });
  } catch (const Error&) {
    ++stats_.rpc_failures;
    GP_COUNTER_ADD("gp.cluster.rpc_failures", 1);
    throw;
  }
}

Message Cluster::call_locked(std::size_t slot, MsgType type, const std::string& payload) {
  return call_locked(slot, type, payload, config_.rpc_deadline_ms, config_.retry);
}

serve::Admission Cluster::push_frame(std::uint64_t session_id, const FrameView& frame) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string payload = encode_wire_frame(session_id, frame);
  for (std::size_t round = 0; round < config_.workers + 2; ++round) {
    SessionState& s = session_locked(session_id);
    if (s.owner == kNoOwner) {
      const bool has_history =
          s.checkpoint_valid || !s.replay.empty() || s.emitted > 0;
      if (has_history) {
        // A previously-unplaceable session regains capacity: run the full
        // failover (restore checkpoint + replay) before this new frame.
        pending_migrations_.emplace_back(session_id, kNoOwner);
        drive_migrations_locked();
      } else {
        s.owner = route_locked(session_id);
      }
      if (s.owner == kNoOwner) {
        ++stats_.frames_shed_no_worker;
        GP_COUNTER_ADD("gp.cluster.frames_shed_no_worker", 1);
        return serve::Admission::kRejectedNoWorker;
      }
    }
    const std::size_t owner = s.owner;
    serve::Admission verdict;
    try {
      const Message reply = call_locked(owner, MsgType::kFrame, payload);
      if (reply.type != MsgType::kAck) {
        // kError (handler threw) or a protocol violation: the worker's state
        // for this stream can no longer be trusted — evict and fail over.
        throw TransportError(std::string("unexpected kFrame reply: ") +
                             msg_type_name(reply.type));
      }
      verdict = static_cast<serve::Admission>(decode_ack(reply.payload));
    } catch (const Error&) {
      evict_locked(owner, EvictionReason::kLinkFailure, /*already_reaped=*/false);
      continue;  // the eviction migrated (or unowned) this session; re-route
    }
    if (verdict == serve::Admission::kAccepted) {
      // Record for replay only *after* the ack: an eviction mid-push means
      // the frame was never accepted anywhere, and this loop re-sends it to
      // the new owner itself — buffering it early would double-deliver.
      s.replay.push_back(own_frame(frame));
      ++s.frames_since_checkpoint;
      ++stats_.frames_accepted;
      GP_COUNTER_ADD("gp.cluster.frames_accepted", 1);
    } else {
      ++stats_.frames_rejected_queue_full;
      GP_COUNTER_ADD("gp.cluster.frames_rejected", 1);
    }
    return verdict;
  }
  ++stats_.frames_shed_no_worker;
  GP_COUNTER_ADD("gp.cluster.frames_shed_no_worker", 1);
  return serve::Admission::kRejectedNoWorker;
}

void Cluster::append_results_locked(const std::vector<serve::ServeResult>& batch,
                                    std::vector<serve::ServeResult>& out) {
  for (const serve::ServeResult& r : batch) {
    SessionState& s = session_locked(r.session_id);
    if (r.segment_ordinal < s.emitted) {
      // A failover replayed frames whose segments were already delivered;
      // the per-session ordinal is the dedup key.
      ++stats_.duplicate_results_dropped;
      GP_COUNTER_ADD("gp.cluster.duplicate_results_dropped", 1);
      continue;
    }
    s.emitted = r.segment_ordinal + 1;
    ++stats_.results;
    out.push_back(r);
  }
}

std::vector<serve::ServeResult> Cluster::pump() {
  std::lock_guard<std::mutex> lk(mu_);
  ++tick_;
  std::vector<serve::ServeResult> out;
  // Sessions migrated on a *previous* tick have had their replay frames
  // drained by now (their new owner was pumped), so they are checkpointable
  // again this tick.
  for (auto& [sid, s] : sessions_) s.migrated_this_tick = false;
  reap_dead_locked();
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
    if (!workers_[slot].alive) continue;
    try {
      const Message reply = call_locked(slot, MsgType::kPump, std::string());
      if (reply.type != MsgType::kResults) {
        throw TransportError(std::string("unexpected kPump reply: ") +
                             msg_type_name(reply.type));
      }
      append_results_locked(decode_wire_results(reply.payload), out);
    } catch (const Error&) {
      evict_locked(slot, EvictionReason::kLinkFailure, /*already_reaped=*/false);
    }
  }
  checkpoint_due_locked();
  heartbeat_probe_locked();
  publish_gauges_locked();
  return out;
}

std::vector<serve::ServeResult> Cluster::drain() {
  std::lock_guard<std::mutex> lk(mu_);
  ++tick_;
  std::vector<serve::ServeResult> out;
  reap_dead_locked();
  // A worker dying mid-drain migrates its sessions (replay frames land in
  // the new owner's ingress queue), so keep draining until one full pass
  // completes without an eviction. Re-draining an already-flushed worker is
  // idempotent, and replayed duplicates fall to the ordinal dedup.
  for (std::size_t pass = 0; pass < config_.workers + 2; ++pass) {
    const std::uint64_t evictions_before = stats_.workers_evicted;
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      if (!workers_[slot].alive) continue;
      try {
        const Message reply = call_locked(slot, MsgType::kDrainAll, std::string());
        if (reply.type != MsgType::kResults) {
          throw TransportError(std::string("unexpected kDrainAll reply: ") +
                               msg_type_name(reply.type));
        }
        append_results_locked(decode_wire_results(reply.payload), out);
      } catch (const Error&) {
        evict_locked(slot, EvictionReason::kLinkFailure, /*already_reaped=*/false);
      }
    }
    if (stats_.workers_evicted == evictions_before) break;
  }
  publish_gauges_locked();
  return out;
}

void Cluster::checkpoint_due_locked() {
  for (auto& [sid, s] : sessions_) {
    if (s.owner == kNoOwner) continue;
    if (s.migrated_this_tick) continue;  // replay not yet drained by its owner
    if (s.frames_since_checkpoint < config_.checkpoint_every) continue;
    if (!workers_[s.owner].alive) continue;
    try {
      const Message reply =
          call_locked(s.owner, MsgType::kCheckpoint, encode_u64(sid));
      if (reply.type != MsgType::kState) {
        throw TransportError(std::string("unexpected kCheckpoint reply: ") +
                             msg_type_name(reply.type));
      }
      auto [echo_sid, blob] = decode_state(reply.payload);
      if (echo_sid != sid || blob.empty()) continue;  // keep the replay buffer
      s.checkpoint = std::move(blob);
      s.checkpoint_valid = true;
      s.replay.clear();
      s.frames_since_checkpoint = 0;
      ++stats_.checkpoints;
      GP_COUNTER_ADD("gp.cluster.checkpoints", 1);
    } catch (const Error&) {
      evict_locked(s.owner, EvictionReason::kLinkFailure, /*already_reaped=*/false);
      // The eviction migrated this session (flagging it), or left it
      // unowned; either way its checkpoint state is untouched. The map
      // itself was not mutated, so iteration continues safely.
    }
  }
}

void Cluster::heartbeat_probe_locked() {
  const std::uint64_t now_ns = monotonic_ns();
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
    WorkerState& w = workers_[slot];
    if (!w.alive) continue;
    const std::uint64_t idle_ms = (now_ns - w.last_ok_ns) / 1000000ULL;
    // Only probe workers that have been silent: a worker answering real RPCs
    // is evidently alive, and last_ok_ns refreshes on every success.
    if (idle_ms < config_.heartbeat_ms) continue;
    ++stats_.heartbeat_probes;
    GP_COUNTER_ADD("gp.cluster.heartbeat_probes", 1);
    const std::uint64_t nonce = ++heartbeat_nonce_;
    bool ok = false;
    try {
      const Message reply = attempt_locked(slot, ++w.seq, MsgType::kHeartbeat,
                                           encode_u64(nonce), config_.heartbeat_ms);
      ok = reply.type == MsgType::kAck && decode_u64(reply.payload) == nonce;
    } catch (const Error&) {
      ok = false;
    }
    if (ok) continue;  // attempt_locked already reset the miss counter
    ++stats_.heartbeat_misses;
    GP_COUNTER_ADD("gp.cluster.heartbeat_misses", 1);
    ++w.missed_heartbeats;
    if (w.missed_heartbeats >= config_.max_missed_heartbeats) {
      evict_locked(slot, EvictionReason::kMissedHeartbeats, /*already_reaped=*/false);
    }
  }
}

void Cluster::reap_dead_locked() {
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
    WorkerState& w = workers_[slot];
    if (!w.alive || w.handle.pid <= 0) continue;
    int status = 0;
    const pid_t rc = ::waitpid(w.handle.pid, &status, WNOHANG);
    if (rc == w.handle.pid || (rc < 0 && errno == ECHILD)) {
      evict_locked(slot, EvictionReason::kProcessDied, /*already_reaped=*/true);
    }
  }
}

void Cluster::evict_locked(std::size_t slot, EvictionReason reason, bool already_reaped) {
  WorkerState& w = workers_[slot];
  if (!w.alive) return;
  w.alive = false;
  const pid_t pid = w.handle.pid;
  ++stats_.workers_evicted;
  GP_COUNTER_ADD("gp.cluster.workers_evicted", 1);
  switch (reason) {
    case EvictionReason::kProcessDied:
      ++stats_.evicted_process_died;
      break;
    case EvictionReason::kLinkFailure:
      ++stats_.evicted_link_failure;
      break;
    case EvictionReason::kMissedHeartbeats:
      ++stats_.evicted_missed_heartbeats;
      break;
  }
  health::FlightRecorder::global().record(
      health::EventKind::kWorkerEvicted, tick_, static_cast<std::uint64_t>(slot),
      static_cast<std::uint64_t>(pid), static_cast<std::uint64_t>(reason));
  log_warn() << "cluster: evicting worker " << slot << " (pid " << pid
             << "): " << eviction_reason_name(reason);
  if (!already_reaped && pid > 0) {
    // The process may be hung (SIGSTOP, livelock) rather than dead; make the
    // eviction final so the slot can be reused.
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  w.handle.channel.close();
  w.handle.pid = -1;
  for (auto& [sid, s] : sessions_) {
    if (s.owner != slot) continue;
    s.owner = kNoOwner;
    pending_migrations_.emplace_back(sid, slot);
  }
  if (config_.respawn) {
    spawn_slot_locked(slot);
    ++stats_.workers_respawned;
    GP_COUNTER_ADD("gp.cluster.workers_respawned", 1);
  }
  drive_migrations_locked();
}

void Cluster::drive_migrations_locked() {
  // Evictions triggered *during* a migration (the new owner fails too) land
  // back in pending_migrations_; only the outermost call drains the queue,
  // so the recursion depth stays constant no matter how many workers fall.
  if (migration_depth_ > 0) return;
  ++migration_depth_;
  // Hard bound on total work: every session can fail over across every slot
  // a constant number of times before we give up and leave it unowned.
  std::size_t pops_left = (sessions_.size() + 1) * (config_.workers + 2);
  while (!pending_migrations_.empty()) {
    const auto [sid, from_slot] = pending_migrations_.back();
    pending_migrations_.pop_back();
    SessionState& s = session_locked(sid);
    if (s.owner != kNoOwner) continue;  // already re-homed by a later entry
    if (pops_left == 0) {
      ++stats_.migration_failures;
      GP_COUNTER_ADD("gp.cluster.migration_failures", 1);
      continue;
    }
    --pops_left;
    std::size_t placed_target = kNoOwner;
    for (std::size_t attempt = 0;
         attempt < config_.workers + 1 && placed_target == kNoOwner; ++attempt) {
      const std::size_t target = route_locked(sid);
      if (target == kNoOwner) break;
      try {
        if (s.checkpoint_valid) {
          const Message reply = call_locked(
              target, MsgType::kRestore, encode_state(sid, s.checkpoint));
          if (reply.type != MsgType::kAck) {
            throw TransportError(
                std::string("unexpected kRestore reply: ") + msg_type_name(reply.type) +
                (reply.type == MsgType::kError ? " (" + decode_text(reply.payload) + ")"
                                               : std::string()));
          }
        }
        for (const FrameCloud& frame : s.replay) {
          const Message reply = call_locked(
              target, MsgType::kFrame, encode_wire_frame(sid, frame));
          if (reply.type != MsgType::kAck ||
              static_cast<serve::Admission>(decode_ack(reply.payload)) !=
                  serve::Admission::kAccepted) {
            // A replay frame the old owner had accepted must land — a
            // partial replay leaves the target's stream diverged, so discard
            // that worker's state (evict) and try a fresh target.
            throw TransportError("replay frame not accepted during failover");
          }
        }
        placed_target = target;
      } catch (const Error& e) {
        log_warn() << "cluster: failover of session " << sid << " to worker " << target
                   << " failed: " << e.what();
        evict_locked(target, EvictionReason::kLinkFailure, /*already_reaped=*/false);
        // Note: the eviction queued the *target's* sessions; this session is
        // still unowned and the attempt loop tries the next route.
      }
    }
    if (placed_target != kNoOwner) {
      s.owner = placed_target;
      s.migrated_this_tick = true;
      ++stats_.sessions_migrated;
      GP_COUNTER_ADD("gp.cluster.sessions_migrated", 1);
      health::FlightRecorder::global().record(
          health::EventKind::kSessionMigrated, tick_, sid,
          static_cast<std::uint64_t>(from_slot),
          static_cast<std::uint64_t>(placed_target));
    } else {
      ++stats_.migration_failures;
      GP_COUNTER_ADD("gp.cluster.migration_failures", 1);
      // Left unowned with checkpoint+replay intact: a later push_frame (or
      // respawn) re-queues the failover once capacity returns.
    }
  }
  --migration_depth_;
}

void Cluster::supervise() {
  std::lock_guard<std::mutex> lk(mu_);
  reap_dead_locked();
  heartbeat_probe_locked();
  publish_gauges_locked();
}

health::Verdict Cluster::verdict_locked() const {
  std::size_t alive = 0;
  for (const WorkerState& w : workers_) alive += w.alive ? 1 : 0;
  if (alive == 0) return health::Verdict::kUnhealthy;
  if (alive < workers_.size()) return health::Verdict::kDegraded;
  return health::Verdict::kHealthy;
}

void Cluster::publish_gauges_locked() const {
  std::size_t alive = 0;
  for (const WorkerState& w : workers_) alive += w.alive ? 1 : 0;
  obs::gauge("gp.cluster.workers_alive").set(static_cast<double>(alive));
  obs::gauge("gp.cluster.verdict")
      .set(static_cast<double>(static_cast<int>(verdict_locked())));
}

health::Verdict Cluster::verdict() const {
  std::lock_guard<std::mutex> lk(mu_);
  return verdict_locked();
}

std::size_t Cluster::worker_count() const { return config_.workers; }

std::size_t Cluster::workers_alive() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t alive = 0;
  for (const WorkerState& w : workers_) alive += w.alive ? 1 : 0;
  return alive;
}

pid_t Cluster::worker_pid(std::size_t slot) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (slot >= workers_.size() || !workers_[slot].alive) return -1;
  return workers_[slot].handle.pid;
}

std::size_t Cluster::owner_slot(std::uint64_t session_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = sessions_.find(session_id);
  return it == sessions_.end() ? kNoOwner : it->second.owner;
}

Cluster::Stats Cluster::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace gp::cluster
