#include "cluster/config.hpp"

#include <cstdlib>

#include "common/logging.hpp"

namespace gp::cluster {

namespace {

/// Parses a positive integer env var; warns and keeps `fallback` on junk.
std::uint64_t env_u64(const char* name, std::uint64_t fallback, std::uint64_t min_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || parsed < min_value) {
    log_warn() << "ignoring invalid " << name << "='" << v << "' (want an integer >= "
               << min_value << ")";
    return fallback;
  }
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

ClusterConfig ClusterConfig::from_env(ClusterConfig base) {
  base.workers = static_cast<std::size_t>(env_u64("GP_CLUSTER_WORKERS", base.workers, 1));
  base.heartbeat_ms = env_u64("GP_CLUSTER_HEARTBEAT_MS", base.heartbeat_ms, 1);
  base.serve = serve::ServeConfig::from_env(base.serve);
  return base;
}

}  // namespace gp::cluster
