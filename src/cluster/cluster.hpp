// gp::cluster — crash-tolerant multi-process serving (DESIGN.md §12).
//
// The Cluster owns N forked worker processes, each running a single-threaded
// gp::serve::Server behind the checksummed wire protocol (wire.hpp), and
// plays two roles over them:
//
//   Router: consistent-hashes session ids onto worker slots (a fixed ring
//   of virtual nodes; assignments are sticky until an eviction), speaks
//   at-most-once RPC per link (per-link seq + worker-side duplicate
//   suppression), and retries transient link failures under
//   faults::with_retries with a total deadline budget.
//
//   Supervisor: detects dead children (waitpid WNOHANG), hung workers
//   (missed heartbeat probes) and broken links (RPC failure after retries),
//   evicts them typed, respawns replacements, and *migrates* the evicted
//   worker's sessions — restore the last checkpointed StreamSession state
//   blob on the new owner, then re-deliver the replay buffer of frames
//   accepted since that checkpoint. The delivered frame sequence after a
//   failover is therefore byte-identical to the uninterrupted stream, and
//   because per-session results are a pure function of (frame sequence,
//   serve seed, session id, ordinal), results stay *bitwise* identical to a
//   fault-free single-worker run. Replayed segments re-emitted by the new
//   owner are deduplicated by per-session next-expected-ordinal.
//
// Graceful degradation: when every slot is down and respawn is off,
// push_frame sheds typed (serve::Admission::kRejectedNoWorker) — the serve
// load-shed vocabulary, extended one row. Everything is counted under
// gp.cluster.* and the capacity verdict reuses gp::health's vocabulary.
//
// Threading contract: all public methods are thread-safe behind one router
// mutex; RPCs serialize on it (throughput scaling comes from the worker
// processes, not from router concurrency).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/wire.hpp"
#include "cluster/worker.hpp"
#include "health/slo.hpp"
#include "pointcloud/point.hpp"
#include "serve/config.hpp"

namespace gp::cluster {

/// Why a worker was evicted (flight-recorder payload + per-reason counters).
enum class EvictionReason : std::uint64_t {
  kProcessDied = 0,     ///< waitpid reaped the child (crash / SIGKILL)
  kLinkFailure,         ///< an RPC failed after retries + deadline budget
  kMissedHeartbeats,    ///< max_missed_heartbeats probes went unanswered
};
const char* eviction_reason_name(EvictionReason reason);

class Cluster {
 public:
  /// Forks config.workers workers (each publishes config.model_path).
  explicit Cluster(const ClusterConfig& config);
  /// Graceful shutdown: best-effort kShutdown RPC, close links, reap; any
  /// straggler is SIGKILLed. Never throws.
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Routes one frame to the session's owner worker. Returns the worker's
  /// admission verdict; kRejectedNoWorker when no live worker remains.
  /// Accepted frames enter the session's replay buffer until the next
  /// checkpoint, so a failover can re-deliver them.
  serve::Admission push_frame(std::uint64_t session_id, const FrameView& frame);

  /// One cluster tick: reap dead children, pump every live worker (collect
  /// + dedupe results), take due session checkpoints, probe idle workers.
  std::vector<serve::ServeResult> pump();

  /// End-of-stream: drains every worker (flushes in-progress gestures),
  /// repeating while failovers migrate sessions mid-drain, so the final
  /// result set is complete even when a worker dies during the drain.
  std::vector<serve::ServeResult> drain();

  /// Supervision sweep without pumping: reap dead children and heartbeat-
  /// probe workers idle for longer than heartbeat_ms. Call this when the
  /// cluster is otherwise idle; pump() runs the same sweep every tick.
  void supervise();

  /// Capacity verdict in gp::health vocabulary: kHealthy = every slot live,
  /// kDegraded = some slots down, kUnhealthy = none left.
  health::Verdict verdict() const;

  std::size_t worker_count() const;  ///< configured slots
  std::size_t workers_alive() const;
  /// pid of slot `s` (-1 when down) — chaos tests SIGKILL/SIGSTOP through it.
  pid_t worker_pid(std::size_t slot) const;
  /// Current owner slot of a session (SIZE_MAX when unowned); diagnostics.
  std::size_t owner_slot(std::uint64_t session_id) const;

  /// Monotonic tallies, mirrored into gp.cluster.* obs counters.
  struct Stats {
    std::uint64_t frames_accepted = 0;
    std::uint64_t frames_rejected_queue_full = 0;
    std::uint64_t frames_shed_no_worker = 0;
    std::uint64_t results = 0;
    std::uint64_t duplicate_results_dropped = 0;
    std::uint64_t corrupt_requests = 0;  ///< worker kCorrupt replies (typed rejects)
    std::uint64_t corrupt_replies = 0;   ///< router-side envelope decode failures
    std::uint64_t rpc_attempts = 0;
    std::uint64_t rpc_calls = 0;         ///< retries = attempts - calls
    std::uint64_t rpc_failures = 0;      ///< RPCs that exhausted retries
    std::uint64_t workers_spawned = 0;
    std::uint64_t workers_evicted = 0;
    std::uint64_t evicted_process_died = 0;
    std::uint64_t evicted_link_failure = 0;
    std::uint64_t evicted_missed_heartbeats = 0;
    std::uint64_t workers_respawned = 0;
    std::uint64_t sessions_migrated = 0;
    std::uint64_t migration_failures = 0;  ///< sessions left unowned
    std::uint64_t checkpoints = 0;
    std::uint64_t heartbeat_probes = 0;
    std::uint64_t heartbeat_misses = 0;
  };
  Stats stats() const;

  const ClusterConfig& config() const { return config_; }

 private:
  static constexpr std::size_t kNoOwner = static_cast<std::size_t>(-1);

  struct WorkerState {
    WorkerHandle handle;
    bool alive = false;
    std::uint64_t seq = 0;          ///< per-link request sequence
    std::uint64_t last_ok_ns = 0;   ///< last successful RPC (heartbeat basis)
    std::size_t missed_heartbeats = 0;
  };

  struct SessionState {
    std::size_t owner = kNoOwner;
    std::uint64_t emitted = 0;  ///< results returned to the caller (dedupe bar)
    std::uint64_t frames_since_checkpoint = 0;
    bool checkpoint_valid = false;
    bool migrated_this_tick = false;  ///< skip checkpointing until re-pumped
    std::string checkpoint;           ///< GPSS blob (state at last checkpoint)
    std::vector<FrameCloud> replay;   ///< accepted frames since the checkpoint
  };

  // All *_locked members require mu_.
  void spawn_slot_locked(std::size_t slot);
  std::vector<int> open_fds_locked() const;
  /// One request/reply exchange with a fixed seq (retries reuse the seq so
  /// the worker's duplicate suppression can fire). Returns kError replies to
  /// the caller; wraps corrupt envelopes into retryable TransportError.
  Message attempt_locked(std::size_t slot, std::uint64_t seq, MsgType type,
                         const std::string& payload, std::uint64_t deadline_ms);
  Message call_locked(std::size_t slot, MsgType type, const std::string& payload,
                      std::uint64_t deadline_ms, const faults::RetryPolicy& policy);
  Message call_locked(std::size_t slot, MsgType type, const std::string& payload);
  void reap_dead_locked();
  void evict_locked(std::size_t slot, EvictionReason reason, bool already_reaped);
  void drive_migrations_locked();
  std::size_t route_locked(std::uint64_t session_id) const;
  SessionState& session_locked(std::uint64_t session_id);
  void append_results_locked(const std::vector<serve::ServeResult>& batch,
                             std::vector<serve::ServeResult>& out);
  void checkpoint_due_locked();
  void heartbeat_probe_locked();
  void publish_gauges_locked() const;
  health::Verdict verdict_locked() const;

  ClusterConfig config_;
  mutable std::mutex mu_;
  std::vector<WorkerState> workers_;
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;  ///< (hash, slot), sorted
  std::map<std::uint64_t, SessionState> sessions_;
  /// (session id, evicted-from slot) queued for failover.
  std::vector<std::pair<std::uint64_t, std::size_t>> pending_migrations_;
  int migration_depth_ = 0;  ///< re-entrancy guard for drive_migrations
  std::uint64_t tick_ = 0;   ///< cluster pump/drain count (flight-rec basis)
  std::uint64_t heartbeat_nonce_ = 0;
  Stats stats_;
};

}  // namespace gp::cluster
