// gp::cluster worker process (DESIGN.md §12).
//
// A worker is a forked child running one single-threaded gp::serve::Server
// behind an RPC loop on its end of a socketpair. Fork safety on a process
// that may already have touched the global ExecContext: the child holds an
// exec::SerialScope for its whole life, so every run_chunks call executes
// inline and the (non-existent-in-the-child) inherited pool threads are
// never awaited. The child exits with _exit(2) — no atexit handlers, no
// static destructors, no sanitizer leak sweep racing the parent.
//
// At-most-once execution: every request carries a per-link seq. The worker
// remembers the last successfully executed seq and its reply; a duplicate
// seq (the router re-sent after a lost/corrupt reply) returns the cached
// reply without re-executing, so a retried kFrame can never push the same
// frame twice. Requests that fail the envelope decode get a kCorrupt reply
// (seq 0 — the seq itself is untrusted in corrupt bytes) and change no
// state: the router counts them and retransmits.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/transport.hpp"

namespace gp::cluster {

/// Parent-side handle on one spawned worker.
struct WorkerHandle {
  pid_t pid = -1;
  std::size_t slot = 0;
  Channel channel;  ///< router end of the socketpair
};

/// Forks a worker for `slot`; returns the parent-side handle. Throws
/// gp::Error when the socketpair or fork fails. The child never returns.
/// `close_in_child` lists router-side fds of *other* live links: the child
/// inherits them across fork and must drop them, or a sibling worker would
/// never see EOF when the router closes its link.
WorkerHandle spawn_worker(const ClusterConfig& config, std::size_t slot,
                          const std::vector<int>& close_in_child = {});

/// The child-side RPC loop (exposed for in-process protocol tests: drive it
/// over a socketpair from a thread). Returns the exit code (0 = clean
/// shutdown via kShutdown or router EOF).
int worker_main(int fd, const ClusterConfig& config, std::size_t slot);

}  // namespace gp::cluster
