#include "cluster/transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "cluster/wire.hpp"
#include "common/logging.hpp"
#include "exec/exec.hpp"
#include "faults/faults.hpp"

namespace gp::cluster {

namespace {

/// Remaining poll budget in ms, or -1 for "block indefinitely".
int remaining_ms(std::uint64_t deadline_ms, std::uint64_t start_ns) {
  if (deadline_ms == 0) return -1;
  const std::uint64_t elapsed_ms = (monotonic_ns() - start_ns) / 1000000ULL;
  if (elapsed_ms >= deadline_ms) return 0;
  return static_cast<int>(deadline_ms - elapsed_ms);
}

}  // namespace

Channel::Channel(int fd, LinkFaultConfig faults) : fd_(fd), faults_(faults) {}

Channel::~Channel() { close(); }

Channel::Channel(Channel&& other) noexcept
    : fd_(other.fd_),
      send_count_(other.send_count_),
      faults_(other.faults_),
      chaos_scratch_(std::move(other.chaos_scratch_)) {
  other.fd_ = -1;
}

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    send_count_ = other.send_count_;
    faults_ = other.faults_;
    chaos_scratch_ = std::move(other.chaos_scratch_);
    other.fd_ = -1;
  }
  return *this;
}

void Channel::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Channel::send_message(const std::string& envelope) {
  if (fd_ < 0) throw TransportError("send on a closed channel");
  const std::string* bytes = &envelope;
  const std::uint64_t draw_index = send_count_++;
  if (faults_.armed()) {
    // Deterministic chaos: the draw is a pure function of (seed, send
    // counter), so a retry — a new send — corrupts (or not) independently
    // and any failing schedule replays exactly from the config.
    Rng rng = exec::child_rng(faults_.seed, draw_index);
    const bool flip = rng.uniform() < faults_.flip_prob;
    const bool truncate = rng.uniform() < faults_.truncate_prob;
    if (flip || truncate) {
      chaos_scratch_ = envelope;
      if (truncate && chaos_scratch_.size() > 6) {
        // Keep at least the magic so the receiver exercises the checksum /
        // short-payload paths, not only the tag check.
        const std::size_t keep =
            6 + rng.index(chaos_scratch_.size() - 6);
        chaos_scratch_.resize(keep);
      }
      if (flip) {
        faults::flip_bits(chaos_scratch_, faults_.flip_bits,
                          exec::child_seed(faults_.seed, draw_index));
      }
      bytes = &chaos_scratch_;
    }
  }
  if (bytes->size() > kMaxMessageBytes) {
    throw TransportError("message exceeds the framing cap");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(bytes->size());
  char header[sizeof(len)];
  std::memcpy(header, &len, sizeof(len));

  const auto send_all = [&](const char* data, std::size_t n) {
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t rc = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw TransportError(std::string("link send failed: ") + std::strerror(errno));
      }
      sent += static_cast<std::size_t>(rc);
    }
  };
  send_all(header, sizeof(header));
  send_all(bytes->data(), bytes->size());
}

void Channel::read_exact(char* dst, std::size_t n, std::uint64_t deadline_ms,
                         std::uint64_t start_ns, bool* clean_eof) {
  std::size_t got = 0;
  while (got < n) {
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int budget = remaining_ms(deadline_ms, start_ns);
    if (deadline_ms != 0 && budget <= 0) {
      throw TimeoutError("link recv deadline (" + std::to_string(deadline_ms) +
                         " ms) exceeded");
    }
    const int rc = ::poll(&pfd, 1, budget);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("link poll failed: ") + std::strerror(errno));
    }
    if (rc == 0) {
      throw TimeoutError("link recv deadline (" + std::to_string(deadline_ms) +
                         " ms) exceeded");
    }
    const ssize_t r = ::read(fd_, dst + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("link read failed: ") + std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return;
      }
      throw TransportError("peer closed the link mid-message");
    }
    got += static_cast<std::size_t>(r);
  }
}

bool Channel::recv_message(std::string& out, std::uint64_t deadline_ms) {
  if (fd_ < 0) throw TransportError("recv on a closed channel");
  const std::uint64_t start_ns = monotonic_ns();
  std::uint32_t len = 0;
  bool clean_eof = false;
  read_exact(reinterpret_cast<char*>(&len), sizeof(len), deadline_ms, start_ns,
             &clean_eof);
  if (clean_eof) return false;
  if (len > kMaxMessageBytes) {
    throw TransportError("framing length " + std::to_string(len) +
                         " exceeds the cap (corrupt framing)");
  }
  out.resize(len);
  if (len > 0) read_exact(out.data(), len, deadline_ms, start_ns, nullptr);
  return true;
}

}  // namespace gp::cluster
