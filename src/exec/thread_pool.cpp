#include "exec/thread_pool.hpp"

#include <cstdio>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp::exec {

namespace {

thread_local bool tl_in_region = false;

/// RAII marker so nested parallel calls from a chunk body run inline.
/// Saves and restores the previous value: a nested inline run() also
/// creates a mark, and its destruction must not clear the outer region's
/// flag (the outer chunk loop keeps running afterwards).
struct RegionMark {
  bool prev;
  RegionMark() : prev(tl_in_region) { tl_in_region = true; }
  ~RegionMark() { tl_in_region = prev; }
};

}  // namespace

bool ThreadPool::in_region() { return tl_in_region; }

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t spawn = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::work_on(Region& region) {
  RegionMark mark;
  // One span per participant per region: in a Perfetto trace every worker
  // shows a "exec.work" block for the stretch it helped with; the metrics
  // side accumulates per-worker busy time (the thread-sharded counter means
  // per-thread utilisation survives in the shard totals).
  GP_SPAN("exec.work");
  const bool instrumented = obs::metrics_enabled();
  const std::uint64_t t0 = instrumented ? monotonic_ns() : 0;
  std::size_t chunks_run = 0;
  for (;;) {
    const std::size_t c = region.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= region.num_chunks) break;
    try {
      (*region.fn)(c);
    } catch (...) {
      region.errors[c] = std::current_exception();
    }
    ++chunks_run;
    region.done.fetch_add(1, std::memory_order_acq_rel);
  }
  if (instrumented) {
    GP_COUNTER_ADD("gp.exec.chunks", chunks_run);
    GP_COUNTER_ADD("gp.exec.worker_busy_us", (monotonic_ns() - t0) / 1000);
  }
}

void ThreadPool::worker_loop() {
  {
    // Label the worker's trace lane once; names are per-thread-lifetime.
    char name[32];
    std::snprintf(name, sizeof(name), "exec.worker-%d", thread_ordinal());
    obs::set_thread_name(name);
  }
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Region* region = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || (region_ != nullptr && epoch_ != seen_epoch); });
      if (stop_) return;
      region = region_;
      seen_epoch = epoch_;
      ++region->active_workers;
    }
    work_on(*region);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --region->active_workers;
    }
    finished_.notify_one();
  }
}

void ThreadPool::run(std::size_t num_chunks, const ChunkFn& fn) {
  if (num_chunks == 0) return;
  if (workers_.empty() || num_chunks == 1 || tl_in_region) {
    RegionMark mark;
    GP_COUNTER_ADD("gp.exec.regions_inline", 1);
    for (std::size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }

  const bool instrumented = obs::metrics_enabled();
  const std::uint64_t region_t0 = instrumented ? monotonic_ns() : 0;
  std::lock_guard<std::mutex> region_guard(run_mutex_);
  Region region;
  region.fn = &fn;
  region.num_chunks = num_chunks;
  region.errors.resize(num_chunks);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    region_ = &region;
    ++epoch_;
  }
  wake_.notify_all();

  work_on(region);  // the caller participates

  {
    // Wait until every chunk ran AND every worker left the region, so the
    // stack-allocated Region cannot be touched after we return.
    std::unique_lock<std::mutex> lock(mutex_);
    finished_.wait(lock, [&] {
      return region.done.load(std::memory_order_acquire) == num_chunks &&
             region.active_workers == 0;
    });
    region_ = nullptr;
  }

  if (instrumented) {
    GP_COUNTER_ADD("gp.exec.regions", 1);
    static obs::Histogram& region_ms = obs::histogram("gp.exec.region_ms");
    region_ms.observe(static_cast<double>(monotonic_ns() - region_t0) * 1e-6);
  }

  for (auto& error : region.errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace gp::exec
