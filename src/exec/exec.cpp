#include "exec/exec.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "obs/metrics.hpp"

namespace gp::exec {

namespace {

thread_local int tl_serial_depth = 0;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t default_threads() {
  if (const char* env = std::getenv("GP_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && parsed >= 1) {
      return std::min<std::size_t>(static_cast<std::size_t>(parsed), 512);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::uint64_t child_seed(std::uint64_t base, std::uint64_t index) {
  // Two rounds of splitmix64 over a mix of base and index; the odd
  // multiplier decorrelates (base, index) pairs that differ in one bit.
  return splitmix64(splitmix64(base) ^ (index * 0xC2B2AE3D27D4EB4FULL + 0x165667B19E3779F9ULL));
}

Rng child_rng(std::uint64_t base, std::uint64_t index) {
  const std::uint64_t seed = child_seed(base, index);
  const std::uint64_t stream = child_seed(base ^ 0x5851F42D4C957F2DULL, index);
  return Rng(seed, stream);
}

SerialScope::SerialScope() { ++tl_serial_depth; }
SerialScope::~SerialScope() { --tl_serial_depth; }
bool SerialScope::active() { return tl_serial_depth > 0; }

ExecContext::ExecContext(std::size_t threads)
    : pool_(std::make_unique<ThreadPool>(threads == 0 ? default_threads() : threads)) {}

ExecContext& ExecContext::global() {
  static ExecContext context;  // sized from GP_THREADS / hardware_concurrency
  return context;
}

std::size_t ExecContext::threads() const {
  if (SerialScope::active() || ThreadPool::in_region()) return 1;
  return pool_->size();
}

void ExecContext::run_chunks(std::size_t chunks, const ThreadPool::ChunkFn& fn) {
  if (chunks == 0) return;
  if (threads() <= 1 || chunks == 1) {
    GP_COUNTER_ADD("gp.exec.regions_inline", 1);
    GP_COUNTER_ADD("gp.exec.chunks", chunks);
    for (std::size_t c = 0; c < chunks; ++c) fn(c);
    return;
  }
  pool_->run(chunks, fn);
}

}  // namespace gp::exec
