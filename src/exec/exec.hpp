// gp::exec — the execution layer every hot path runs on.
//
// ExecContext wraps a ThreadPool behind a small set of deterministic
// parallel primitives:
//
//   * parallel_for / parallel_for_chunks — static chunking by `grain`
//     indices per chunk. Chunk boundaries depend only on (range, grain),
//     never on the thread count, so any per-index or per-chunk computation
//     that writes disjoint state is bitwise-reproducible.
//   * parallel_map — parallel_for that collects one result per index.
//   * parallel_reduce_ordered — chunk partials are combined **in chunk
//     index order** after the region, so floating-point reductions give
//     the same bits for 1 thread or 64.
//
// Randomised parallel work must not share one Rng across chunks: derive an
// independent per-item generator with child_rng(base_seed, index), which is
// a pure function of its inputs (order- and schedule-independent).
//
// The global() context sizes its pool from GP_THREADS (env var) or
// std::thread::hardware_concurrency(). SerialScope forces every context
// used by the current thread to run inline — handy in tests and in code
// that is already inside a parallel region.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "exec/thread_pool.hpp"

namespace gp::exec {

/// Thread count used by the global context: GP_THREADS if set (clamped to
/// [1, 512]), else std::thread::hardware_concurrency(), else 1.
std::size_t default_threads();

/// Deterministically mixes (base, index) into an independent 64-bit seed
/// (splitmix64 finalisation). A pure function: the same inputs produce the
/// same child no matter which thread asks, in which order.
std::uint64_t child_seed(std::uint64_t base, std::uint64_t index);

/// An independent PCG32 stream for item `index` of a job seeded by `base`.
Rng child_rng(std::uint64_t base, std::uint64_t index);

/// Forces all ExecContexts used by this thread to run inline while alive.
/// Nestable; used by tests and by already-parallel callers.
class SerialScope {
 public:
  SerialScope();
  ~SerialScope();
  SerialScope(const SerialScope&) = delete;
  SerialScope& operator=(const SerialScope&) = delete;

  static bool active();
};

class ExecContext {
 public:
  /// `threads` = total parallelism (including the calling thread);
  /// 0 means default_threads().
  explicit ExecContext(std::size_t threads = 0);

  /// Process-wide context. Sized once, on first use.
  static ExecContext& global();

  /// Effective parallelism: 1 inside a SerialScope or an active region.
  std::size_t threads() const;

  /// Raw region API: fn(chunk) for chunk in [0, chunks), blocking.
  void run_chunks(std::size_t chunks, const ThreadPool::ChunkFn& fn);

  /// fn(chunk_begin, chunk_end) over [begin, end) split every `grain`
  /// indices (grain 0 behaves as 1). Chunking is thread-count independent.
  template <typename Fn>
  void parallel_for_chunks(std::size_t begin, std::size_t end, std::size_t grain, Fn&& fn) {
    if (end <= begin) return;
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t chunks = (end - begin + g - 1) / g;
    run_chunks(chunks, [&](std::size_t c) {
      const std::size_t cb = begin + c * g;
      const std::size_t ce = cb + g < end ? cb + g : end;
      fn(cb, ce);
    });
  }

  /// fn(i) for every i in [begin, end).
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain, Fn&& fn) {
    parallel_for_chunks(begin, end, grain,
                        [&](std::size_t cb, std::size_t ce) {
                          for (std::size_t i = cb; i < ce; ++i) fn(i);
                        });
  }

  /// Collects fn(i) for i in [0, n) into a vector (index-aligned).
  template <typename T, typename Fn>
  std::vector<T> parallel_map(std::size_t n, std::size_t grain, Fn&& fn) {
    std::vector<T> out(n);
    parallel_for(0, n, grain, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Ordered reduction: partial[c] = map(chunk_begin, chunk_end) computed in
  /// parallel, then combine(acc, partial[c]) applied serially for ascending
  /// c. Floating-point results are identical for every thread count.
  template <typename T, typename MapFn, typename CombineFn>
  T parallel_reduce_ordered(std::size_t begin, std::size_t end, std::size_t grain, T init,
                            MapFn&& map, CombineFn&& combine) {
    if (end <= begin) return init;
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t chunks = (end - begin + g - 1) / g;
    std::vector<T> partial(chunks);
    run_chunks(chunks, [&](std::size_t c) {
      const std::size_t cb = begin + c * g;
      const std::size_t ce = cb + g < end ? cb + g : end;
      partial[c] = map(cb, ce);
    });
    T acc = std::move(init);
    for (std::size_t c = 0; c < chunks; ++c) acc = combine(std::move(acc), std::move(partial[c]));
    return acc;
  }

 private:
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace gp::exec
