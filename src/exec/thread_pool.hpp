// Fixed-size worker pool executing "parallel regions".
//
// Design goals (in priority order):
//   1. Determinism. A region is a set of chunk indices [0, num_chunks); a
//      chunk's result may never depend on which thread ran it or when. The
//      pool therefore does no work stealing and no task futures — it only
//      hands out chunk indices. Callers that obey the contract (chunks write
//      disjoint state; cross-chunk combination happens in index order after
//      the region) get bitwise-identical results for any thread count.
//   2. Zero overhead when serial. A pool of size 1 spawns no threads and
//      run() degenerates to a plain loop.
//   3. Safe nesting. A parallel call made from inside a running region
//      executes inline (serially) instead of deadlocking the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gp::exec {

class ThreadPool {
 public:
  /// `threads` is the total parallelism including the calling thread, so a
  /// pool of size N spawns N-1 workers. `threads <= 1` spawns none.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  using ChunkFn = std::function<void(std::size_t)>;

  /// Runs fn(c) exactly once for every c in [0, num_chunks), using the
  /// workers plus the calling thread, and blocks until all chunks finished.
  /// Exceptions thrown by chunks are captured; after the region completes
  /// the exception of the lowest-indexed failing chunk is rethrown here
  /// (deterministic regardless of scheduling). The pool stays usable.
  /// Nested calls (from inside a chunk) run inline.
  void run(std::size_t num_chunks, const ChunkFn& fn);

  /// True while the current thread is executing a chunk of some region
  /// (worker or caller). Used to make nested parallelism inline.
  static bool in_region();

 private:
  struct Region {
    const ChunkFn* fn = nullptr;
    std::size_t num_chunks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::vector<std::exception_ptr> errors;  ///< one slot per chunk
    int active_workers = 0;  ///< workers currently inside (guarded by mutex_)
  };

  void worker_loop();
  static void work_on(Region& region);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;      ///< workers: a region was published
  std::condition_variable finished_;  ///< caller: region fully drained
  Region* region_ = nullptr;          ///< active region (guarded by mutex_)
  std::uint64_t epoch_ = 0;           ///< bumped per published region
  bool stop_ = false;
  std::mutex run_mutex_;  ///< serialises concurrent top-level run() calls
};

}  // namespace gp::exec
