#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "common/logging.hpp"
#include "common/mem.hpp"
#include "obs/json.hpp"

namespace gp::obs {

namespace {

bool parse_enabled_env(const char* name, bool default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr) return default_value;
  const std::string s(v);
  if (s == "off" || s == "0" || s == "false" || s == "no") return false;
  if (s == "on" || s == "1" || s == "true" || s == "yes") return true;
  return default_value;
}

std::atomic<bool>& metrics_flag() {
  static std::atomic<bool> flag{parse_enabled_env("GP_METRICS", /*default=*/true)};
  return flag;
}

}  // namespace

bool metrics_enabled() { return metrics_flag().load(std::memory_order_relaxed); }
void set_metrics_enabled(bool enabled) {
  metrics_flag().store(enabled, std::memory_order_relaxed);
}

std::size_t shard_index() {
  return static_cast<std::size_t>(thread_ordinal()) % kShards;
}

// --------------------------------------------------------------- Histogram

double Histogram::bucket_upper_bound(std::size_t b) {
  if (b + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return kFirstBound * std::pow(kGrowth, static_cast<double>(b));
}

std::size_t Histogram::bucket_of(double value) {
  if (!(value > kFirstBound)) return 0;  // also catches NaN and negatives
  const double idx = std::floor(std::log(value / kFirstBound) / std::log(kGrowth)) + 1.0;
  if (idx >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<std::size_t>(idx);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBuckets, 0);
  for (const Shard& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.min = std::min(snap.min, shard.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    for (auto& bucket : shard.buckets) bucket.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t next = cumulative + buckets[b];
    if (static_cast<double>(next) >= rank) {
      // Interpolate inside the bucket; clamp to the observed min/max so
      // the estimate never leaves the data's true range.
      double lo = b == 0 ? 0.0 : Histogram::bucket_upper_bound(b - 1);
      double hi = Histogram::bucket_upper_bound(b);
      if (!std::isfinite(hi)) hi = max;
      const double frac =
          buckets[b] > 0 ? (rank - static_cast<double>(cumulative)) / static_cast<double>(buckets[b])
                         : 0.0;
      const double est = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(est, min, max);
    }
    cumulative = next;
  }
  return max;
}

// ---------------------------------------------------------------- Registry

struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Impl& Registry::impl() const {
  static Impl instance;  // leaks nothing: process-lifetime registry
  return instance;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  Impl& m = impl();
  const std::lock_guard<std::mutex> lock(m.mutex);
  auto& slot = m.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& m = impl();
  const std::lock_guard<std::mutex> lock(m.mutex);
  auto& slot = m.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  Impl& m = impl();
  const std::lock_guard<std::mutex> lock(m.mutex);
  auto& slot = m.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::to_text(std::ostream& out) const {
  Impl& m = impl();
  const std::lock_guard<std::mutex> lock(m.mutex);
  for (const auto& [name, c] : m.counters) out << name << " " << c->value() << "\n";
  for (const auto& [name, g] : m.gauges) out << name << " " << g->value() << "\n";
  for (const auto& [name, h] : m.histograms) {
    const HistogramSnapshot s = h->snapshot();
    out << name << " count=" << s.count << " mean=" << s.mean() << " p50=" << s.quantile(0.5)
        << " p95=" << s.quantile(0.95) << " p99=" << s.quantile(0.99) << " min="
        << (s.count ? s.min : 0.0) << " max=" << (s.count ? s.max : 0.0) << "\n";
  }
}

void Registry::to_json(std::ostream& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2 = pad + "  ";
  const std::string pad3 = pad2 + "  ";
  Impl& m = impl();
  const std::lock_guard<std::mutex> lock(m.mutex);

  out << "{\n" << pad2 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : m.counters) {
    out << (first ? "\n" : ",\n") << pad3 << "\"" << json::escape(name) << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n" + pad2) << "},\n";

  out << pad2 << "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : m.gauges) {
    out << (first ? "\n" : ",\n") << pad3 << "\"" << json::escape(name)
        << "\": " << json::number(g->value());
    first = false;
  }
  out << (first ? "" : "\n" + pad2) << "},\n";

  out << pad2 << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : m.histograms) {
    const HistogramSnapshot s = h->snapshot();
    out << (first ? "\n" : ",\n") << pad3 << "\"" << json::escape(name) << "\": {"
        << "\"count\": " << s.count << ", \"sum\": " << json::number(s.sum)
        << ", \"mean\": " << json::number(s.mean())
        << ", \"min\": " << json::number(s.count ? s.min : 0.0)
        << ", \"max\": " << json::number(s.count ? s.max : 0.0)
        << ", \"p50\": " << json::number(s.quantile(0.5))
        << ", \"p95\": " << json::number(s.quantile(0.95))
        << ", \"p99\": " << json::number(s.quantile(0.99)) << "}";
    first = false;
  }
  out << (first ? "" : "\n" + pad2) << "}\n" << pad << "}";
}

void Registry::reset_all() {
  Impl& m = impl();
  const std::lock_guard<std::mutex> lock(m.mutex);
  for (auto& [name, c] : m.counters) c->reset();
  for (auto& [name, g] : m.gauges) g->reset();
  for (auto& [name, h] : m.histograms) h->reset();
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_values() const {
  Impl& m = impl();
  const std::lock_guard<std::mutex> lock(m.mutex);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(m.counters.size());
  for (const auto& [name, c] : m.counters) out.emplace_back(name, c->value());
  return out;  // std::map iteration: already name-sorted
}

void MetricsDelta::rebase() {
  baseline_.clear();
  for (auto& [name, value] : Registry::global().counter_values()) {
    baseline_.emplace(std::move(name), value);
  }
}

std::uint64_t MetricsDelta::counter_delta(const std::string& name) const {
  std::uint64_t now = 0;
  for (const auto& [n, value] : Registry::global().counter_values()) {
    if (n == name) {
      now = value;
      break;
    }
  }
  const auto it = baseline_.find(name);
  const std::uint64_t base = it != baseline_.end() ? it->second : 0;
  return now >= base ? now - base : 0;
}

Counter& counter(const std::string& name) { return Registry::global().counter(name); }
Gauge& gauge(const std::string& name) { return Registry::global().gauge(name); }
Histogram& histogram(const std::string& name) { return Registry::global().histogram(name); }

void publish_mem_metrics() {
  if (!metrics_enabled()) return;
  // Delta state: mem's tallies are process-global monotonic; published
  // counters must advance by exactly the unseen amount regardless of how
  // many sites call this.
  static std::mutex mu;
  static mem::MemCounters last;
  static Counter& pool_hits = counter("gp.mem.pool.hits");
  static Counter& pool_misses = counter("gp.mem.pool.misses");
  static Counter& arena_blocks = counter("gp.mem.arena.blocks");
  static Counter& arena_recycled = counter("gp.mem.arena.bytes_recycled");
  static Gauge& arena_high_water = gauge("gp.mem.arena.high_water_bytes");

  const mem::MemCounters now = mem::mem_counters();
  const std::lock_guard<std::mutex> lock(mu);
  pool_hits.add(now.pool_hits - last.pool_hits);
  pool_misses.add(now.pool_misses - last.pool_misses);
  arena_blocks.add(now.arena_blocks - last.arena_blocks);
  arena_recycled.add(now.arena_bytes_recycled - last.arena_bytes_recycled);
  arena_high_water.set(static_cast<double>(now.arena_high_water));
  last = now;
}

}  // namespace gp::obs
