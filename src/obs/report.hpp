// Run reports: one machine-readable JSON per bench/example run, so every
// perf claim ships with its evidence.
//
// write_run_report("quickstart") writes <output_dir>/REPORT_quickstart.json
// containing
//   * build / thread / scale configuration,
//   * the wall clock since the process epoch,
//   * the per-stage latency breakdown (every GP_SPAN site: count, total,
//     mean, p50/p95/p99, min nesting depth — min-depth-0 stages are the
//     top-level phases and their totals should sum to ~ the wall clock),
//   * the full metrics registry snapshot.
// When tracing is on it also writes TRACE_<name>.json (Chrome trace-event
// format; load in chrome://tracing or Perfetto).
#pragma once

#include <iosfwd>
#include <string>

namespace gp::obs {

/// Serialises the report JSON for run `name` into `out`.
void write_run_report_json(std::ostream& out, const std::string& name);

/// Writes REPORT_<name>.json (and TRACE_<name>.json when tracing) under
/// gp::output_dir() and returns the report path.
std::string write_run_report(const std::string& name);

}  // namespace gp::obs
