// Minimal JSON support for the observability layer: string escaping for the
// exporters and a small recursive-descent parser used to validate emitted
// documents (tests and the obs-smoke checker parse traces/reports back).
//
// The parser handles the full JSON grammar (objects, arrays, strings with
// escapes, numbers, booleans, null) but is tuned for trust-worthy inputs we
// emitted ourselves: errors throw gp::Error with a byte offset.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace gp::obs::json {

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters; non-ASCII bytes pass through untouched).
std::string escape(const std::string& s);

/// Formats a double the way JSON expects: finite values via shortest-ish
/// round-trip formatting, non-finite values as null (JSON has no inf/nan).
std::string number(double v);

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;  ///< insertion-ordered

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  /// find() that throws gp::Error when the member is missing.
  const Value& at(const std::string& key) const;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
Value parse(const std::string& text);

}  // namespace gp::obs::json
