#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace gp::obs::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw Error("json: missing member '" + key + "'");
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Value v;
      v.type = Value::Type::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      Value v;
      v.type = Value::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      Value v;
      v.type = Value::Type::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_literal("null")) return Value{};
    return parse_number();
  }

  // A pathological input of the form "[[[[..." recurses once per bracket;
  // cap nesting so adversarial payloads get a typed Error instead of a
  // stack overflow. Real gp documents nest ~4 levels deep.
  static constexpr int kMaxDepth = 200;

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxDepth) parser.fail("nesting depth exceeds limit");
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  Value parse_object() {
    DepthGuard guard(*this);
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    DepthGuard guard(*this);
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (surrogate pairs unsupported; our emitter never
          // produces them — \u is only used for control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) fail("expected a value");
    const std::string token = text_.substr(begin, pos_ - begin);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number '" + token + "'");
    Value v;
    v.type = Value::Type::kNumber;
    v.num = parsed;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace gp::obs::json
