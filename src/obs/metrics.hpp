// gp::obs metrics — counters, gauges, and histograms cheap enough for hot
// paths, plus text/JSON exporters.
//
// Design:
//   * Handles are process-lifetime references into a global Registry; call
//     sites cache them in function-local statics (see GP_COUNTER below), so
//     the string lookup happens once per site.
//   * Counters and histograms are sharded: each metric owns kShards
//     cache-line-padded slots and a thread picks its slot from its
//     thread ordinal. Hot-path updates are relaxed atomics on the local
//     shard; shards are merged only when a snapshot is taken.
//   * Everything is TSan-clean by construction (atomics only; the registry
//     map itself is mutex-guarded and only touched on first lookup).
//   * GP_METRICS=off (or set_metrics_enabled(false)) turns recording into a
//     single predicted branch; recording never perturbs RNG streams or FP
//     accumulation order, so instrumented runs stay bitwise deterministic.
//
// Naming scheme: `gp.<subsystem>.<name>` (e.g. gp.exec.chunks,
// gp.dataset.cache.hits, gp.train.step_ms). See DESIGN.md §5.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace gp::obs {

/// Global enable switch; initialised from GP_METRICS (default: enabled,
/// "off"/"0" disables). Overridable at runtime for tests/benches.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

/// Shard count for counters/histograms. Threads map onto shards by their
/// ordinal, so with <= kShards live threads there is no sharing at all.
inline constexpr std::size_t kShards = 16;

/// The shard index of the calling thread.
std::size_t shard_index();

// ----------------------------------------------------------------- Counter

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Merged total across shards.
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

// ------------------------------------------------------------------- Gauge

/// A last-write-wins double; `add` is an atomic read-modify-write.
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  void add(double delta) {
    if (!metrics_enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// --------------------------------------------------------------- Histogram

/// Snapshot of a histogram at one instant (shards merged).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::vector<std::uint64_t> buckets;  ///< aligned with Histogram bucket bounds

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  /// Streaming quantile estimate (q in [0,1]) interpolated inside the
  /// geometric bucket holding the q-th observation; relative error is
  /// bounded by the bucket growth factor (~10%). Constant memory, single
  /// pass — the shape the latency benches need for p50/p95/p99.
  double quantile(double q) const;
};

/// Fixed-bucket histogram with geometric bounds spanning [1e-6, ~1e7]
/// (about 12 decades; in ms that is 1 ns .. ~3 h). Values outside the range
/// land in the first/last bucket. Each shard is fully atomic.
class Histogram {
 public:
  static constexpr double kFirstBound = 1e-6;
  static constexpr double kGrowth = 1.2;
  static constexpr std::size_t kBuckets = 168;

  void observe(double value) {
    if (!metrics_enabled()) return;
    Shard& shard = shards_[shard_index()];
    shard.count.fetch_add(1, std::memory_order_relaxed);
    atomic_add(shard.sum, value);
    atomic_min(shard.min, value);
    atomic_max(shard.max, value);
    shard.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;
  void reset();

  /// Upper bound of bucket `b` (lower bound = upper bound of b-1; bucket 0
  /// collects everything below kFirstBound).
  static double bucket_upper_bound(std::size_t b);
  static std::size_t bucket_of(double value);

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };

  static void atomic_add(std::atomic<double>& slot, double delta) {
    double cur = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  static void atomic_min(std::atomic<double>& slot, double v) {
    double cur = slot.load(std::memory_order_relaxed);
    while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<double>& slot, double v) {
    double cur = slot.load(std::memory_order_relaxed);
    while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<Shard, kShards> shards_;
};

// ---------------------------------------------------------------- Registry

/// Name -> metric. Lookup registers on first use; handles stay valid for
/// the process lifetime. All three namespaces (counter/gauge/histogram) are
/// separate: one name may exist in at most one of them.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One line per metric, sorted by name ("name value ..."), for humans.
  void to_text(std::ostream& out) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// min, max, mean, p50, p95, p99}}} — the machine-readable snapshot
  /// embedded in run reports.
  void to_json(std::ostream& out, int indent = 0) const;

  /// Zeroes every registered metric (handles stay valid). Tests only.
  void reset_all();

  /// Every registered counter's merged total at one instant, sorted by
  /// name. Feeds MetricsDelta; hot paths keep cached handles instead.
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

// ------------------------------------------------------------ MetricsDelta

/// Test/bench-only counter baseline: captures every registered counter at
/// construction (or rebase()) and answers "how much did `name` move since".
/// Multi-cell benches use this instead of Registry::reset_all() between
/// cells — resetting would clobber totals that belong to the whole process
/// (warm-up, other cells, the final run report), whereas a delta baseline
/// isolates one cell without touching shared state.
class MetricsDelta {
 public:
  /// Captures the baseline immediately.
  MetricsDelta() { rebase(); }

  /// Re-captures the baseline (start of the next cell).
  void rebase();

  /// Increase of counter `name` since the baseline. Counters registered
  /// after the baseline count from zero; never-registered names return 0.
  std::uint64_t counter_delta(const std::string& name) const;

 private:
  std::map<std::string, std::uint64_t> baseline_;
};

// Convenience forwarding helpers for call sites.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Bridges gp::mem's internal tallies (pool hit/miss, arena blocks/bytes
/// recycled/high-water) into gp.mem.* counters and gauges. gp::mem lives in
/// gp_common, *below* gp_obs in the library graph, so it cannot publish
/// itself; callers on the serving/report path invoke this periodically
/// (Server::pump, write_run_report). Publishes monotonic deltas — safe to
/// call from several sites.
void publish_mem_metrics();

/// Caches the metric handle in a function-local static so the name lookup
/// happens once per call site.
#define GP_COUNTER_ADD(name_literal, n)                                         \
  do {                                                                          \
    static ::gp::obs::Counter& gp_obs_counter_ = ::gp::obs::counter(name_literal); \
    gp_obs_counter_.add(n);                                                     \
  } while (0)

}  // namespace gp::obs
