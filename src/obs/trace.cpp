#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/json.hpp"

namespace gp::obs {

namespace {

constexpr std::size_t kTraceBufferCapacity = 1 << 16;  ///< events per thread

std::atomic<bool>& trace_flag() {
  static std::atomic<bool> flag = [] {
    const char* v = std::getenv("GP_TRACE");
    if (v == nullptr) return false;
    const std::string s(v);
    return s == "on" || s == "1" || s == "true" || s == "yes";
  }();
  return flag;
}

/// Per-thread ring buffer. The owning thread appends under the (practically
/// uncontended) mutex; the exporter locks each buffer briefly to copy.
/// Buffers are kept alive by shared_ptr in the global list so events from
/// exited worker threads still appear in the export.
struct TraceBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;  ///< ring storage, capacity-bounded
  std::size_t next = 0;            ///< ring write cursor
  std::uint64_t total = 0;         ///< events ever appended
  int tid = 0;
  std::string name;                ///< set_thread_name label ("" = unnamed)

  void append(const TraceEvent& event) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (events.size() < kTraceBufferCapacity) {
      events.push_back(event);
    } else {
      events[next] = event;
    }
    next = (next + 1) % kTraceBufferCapacity;
    ++total;
  }
};

struct BufferDirectory {
  std::mutex mutex;
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
};

BufferDirectory& directory() {
  static BufferDirectory dir;
  return dir;
}

TraceBuffer& thread_buffer() {
  thread_local std::shared_ptr<TraceBuffer> buffer = [] {
    auto b = std::make_shared<TraceBuffer>();
    b->tid = thread_ordinal();
    BufferDirectory& dir = directory();
    const std::lock_guard<std::mutex> lock(dir.mutex);
    dir.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

thread_local int tl_span_depth = 0;

struct StageDirectory {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<StageStats>> stages;
};

StageDirectory& stage_directory() {
  static StageDirectory dir;
  return dir;
}

}  // namespace

bool trace_enabled() { return trace_flag().load(std::memory_order_relaxed); }
void set_trace_enabled(bool enabled) {
  trace_flag().store(enabled, std::memory_order_relaxed);
}

StageStats& stage_stats(const char* name) {
  StageDirectory& dir = stage_directory();
  const std::lock_guard<std::mutex> lock(dir.mutex);
  auto& slot = dir.stages[name];
  if (!slot) {
    Histogram& hist = Registry::global().histogram(std::string("gp.stage.") + name);
    slot = std::make_unique<StageStats>(name, hist);
  }
  return *slot;
}

std::vector<StageSnapshot> stage_snapshots() {
  StageDirectory& dir = stage_directory();
  const std::lock_guard<std::mutex> lock(dir.mutex);
  std::vector<StageSnapshot> out;
  out.reserve(dir.stages.size());
  for (const auto& [name, stats] : dir.stages) {
    StageSnapshot snap;
    snap.name = name;
    snap.histogram = stats->histogram().snapshot();
    snap.min_depth = stats->min_depth();
    out.push_back(std::move(snap));
  }
  return out;
}

// -------------------------------------------------------------------- Span

Span::Span(const char* name, StageStats* stats) {
  const bool metrics = metrics_enabled();
  const bool trace = trace_enabled();
  if (!metrics && !trace) return;  // disabled: one predicted branch, no clock
  active_ = true;
  name_ = name;
  stats_ = stats;
  depth_ = tl_span_depth++;
  start_ns_ = monotonic_ns();
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end_ns = monotonic_ns();
  --tl_span_depth;
  const std::uint64_t duration_ns = end_ns - start_ns_;
  if (stats_ != nullptr && metrics_enabled()) {
    stats_->record(static_cast<double>(duration_ns) * 1e-6, depth_);
  }
  if (trace_enabled()) {
    TraceEvent event;
    event.name = name_;
    event.start_ns = start_ns_;
    event.duration_ns = duration_ns;
    event.tid = thread_ordinal();
    event.depth = depth_;
    thread_buffer().append(event);
  }
}

// ------------------------------------------------------------ trace export

void set_thread_name(const char* name) {
  TraceBuffer& buffer = thread_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.name == name) return;  // hot-path idempotence: no assignment
  buffer.name = name;
}

std::vector<std::pair<int, std::string>> thread_names() {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    BufferDirectory& dir = directory();
    const std::lock_guard<std::mutex> lock(dir.mutex);
    buffers = dir.buffers;
  }
  std::vector<std::pair<int, std::string>> out;
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    if (!buffer->name.empty()) out.emplace_back(buffer->tid, buffer->name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TraceEvent> collect_trace_events() {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    BufferDirectory& dir = directory();
    const std::lock_guard<std::mutex> lock(dir.mutex);
    buffers = dir.buffers;
  }
  std::vector<TraceEvent> out;
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.start_ns < b.start_ns;
  });
  return out;
}

std::size_t trace_event_count() {
  BufferDirectory& dir = directory();
  const std::lock_guard<std::mutex> lock(dir.mutex);
  std::size_t total = 0;
  for (const auto& buffer : dir.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

void clear_trace() {
  BufferDirectory& dir = directory();
  const std::lock_guard<std::mutex> lock(dir.mutex);
  for (const auto& buffer : dir.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->next = 0;
  }
}

std::size_t trace_buffer_capacity() { return kTraceBufferCapacity; }

void write_chrome_trace(std::ostream& out) {
  const std::vector<TraceEvent> events = collect_trace_events();
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  // Metadata first: a process name plus one thread_name per named thread,
  // so spans group under readable lanes in chrome://tracing / Perfetto.
  out << "\n    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"args\": {\"name\": \"gestureprint\"}}";
  first = false;
  for (const auto& [tid, name] : thread_names()) {
    out << ",\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
        << ", \"args\": {\"name\": \"" << json::escape(name) << "\"}}";
  }
  for (const TraceEvent& event : events) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << json::escape(event.name) << "\", \"cat\": \"gp\", "
        << "\"ph\": \"X\", \"ts\": " << json::number(static_cast<double>(event.start_ns) * 1e-3)
        << ", \"dur\": " << json::number(static_cast<double>(event.duration_ns) * 1e-3)
        << ", \"pid\": 1, \"tid\": " << event.tid << ", \"args\": {\"depth\": " << event.depth
        << "}}";
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
}

std::string write_trace_file(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) throw Error("cannot open trace file for writing: " + path);
  write_chrome_trace(out);
  log_info() << "wrote trace (" << collect_trace_events().size() << " events) -> " << path;
  return path;
}

}  // namespace gp::obs
