#include "obs/report.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <thread>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef GP_OBS_BUILD_TYPE
#define GP_OBS_BUILD_TYPE "unknown"
#endif
#ifndef GP_OBS_SANITIZE
#define GP_OBS_SANITIZE ""
#endif

namespace gp::obs {

namespace {

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

}  // namespace

void write_run_report_json(std::ostream& out, const std::string& name) {
  publish_mem_metrics();  // fold gp.mem.* tallies into the snapshot below
  const double wall_s = uptime_seconds();
  const auto unix_now = std::chrono::duration_cast<std::chrono::seconds>(
                            std::chrono::system_clock::now().time_since_epoch())
                            .count();

  out << "{\n";
  out << "  \"name\": \"" << json::escape(name) << "\",\n";
  out << "  \"created_unix\": " << unix_now << ",\n";
  out << "  \"wall_clock_s\": " << json::number(wall_s) << ",\n";

  out << "  \"build\": {\"type\": \"" << json::escape(GP_OBS_BUILD_TYPE)
      << "\", \"sanitize\": \"" << json::escape(GP_OBS_SANITIZE) << "\", \"compiler\": \""
#if defined(__clang__)
      << "clang " << __clang_major__ << "." << __clang_minor__
#elif defined(__GNUC__)
      << "gcc " << __GNUC__ << "." << __GNUC_MINOR__
#else
      << "unknown"
#endif
      << "\"},\n";

  out << "  \"config\": {"
      << "\"gp_threads_env\": \"" << json::escape(env_or("GP_THREADS", "")) << "\", "
      << "\"hardware_concurrency\": " << std::max(1u, std::thread::hardware_concurrency()) << ", "
      << "\"scale\": \"" << json::escape(run_scale_name()) << "\", "
      << "\"metrics\": " << (metrics_enabled() ? "true" : "false") << ", "
      << "\"trace\": " << (trace_enabled() ? "true" : "false") << "},\n";

  // Stage latency breakdown: every GP_SPAN site that fired at least once.
  out << "  \"stages\": [";
  bool first = true;
  for (const StageSnapshot& stage : stage_snapshots()) {
    if (stage.histogram.count == 0) continue;
    out << (first ? "\n" : ",\n");
    first = false;
    const HistogramSnapshot& h = stage.histogram;
    out << "    {\"name\": \"" << json::escape(stage.name) << "\", \"count\": " << h.count
        << ", \"total_ms\": " << json::number(h.sum)
        << ", \"mean_ms\": " << json::number(h.mean())
        << ", \"p50_ms\": " << json::number(h.quantile(0.5))
        << ", \"p95_ms\": " << json::number(h.quantile(0.95))
        << ", \"p99_ms\": " << json::number(h.quantile(0.99))
        << ", \"min_ms\": " << json::number(h.min) << ", \"max_ms\": " << json::number(h.max)
        << ", \"min_depth\": " << stage.min_depth << "}";
  }
  out << (first ? "" : "\n  ") << "],\n";

  out << "  \"metrics\": ";
  Registry::global().to_json(out, 2);
  out << "\n}\n";
}

std::string write_run_report(const std::string& name) {
  const std::string dir = output_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  const std::string report_path = dir + "/REPORT_" + name + ".json";
  {
    std::ofstream out(report_path);
    if (!out) throw Error("cannot open run report for writing: " + report_path);
    write_run_report_json(out, name);
  }
  log_info() << "wrote run report -> " << report_path;

  if (trace_enabled()) write_trace_file(dir + "/TRACE_" + name + ".json");
  return report_path;
}

}  // namespace gp::obs
