// Canonical builders for the machine-readable bench artifacts
// (BENCH_latency_stages.json, BENCH_parallel.json).
//
// The bench binaries used to hand-roll these documents inline, which left
// the schema pinned down nowhere; centralising the emission here gives the
// golden-snapshot tests (tests/test_golden_snapshot.cpp) a single place to
// pin the schema of every BENCH_*.json artifact external tooling consumes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp::obs {

/// One top-level latency series (e.g. "preprocessing") with its quantiles.
struct LatencyQuantileRow {
  std::string name;
  HistogramSnapshot hist;
};

/// One serve-tick latency/allocation profile phase (DESIGN.md §9): "cold"
/// is the first pass over a stream (pools/arenas still growing), "steady"
/// a repeat pass on the warmed server. allocs_per_tick is the mean heap
/// allocation count per engine tick measured by mem::AllocCounter.
struct ServeTickProfile {
  std::string phase;
  std::uint64_t ticks = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double allocs_per_tick = 0.0;
};

/// Builds the BENCH_latency_stages.json document: top-level quantile rows
/// plus the GP_SPAN per-stage breakdown and the serve-tick memory profile.
/// Stages with zero observations are skipped. Schema (pinned by golden test
/// `bench_latency_schema`):
///   {iterations, top_level:[{name,count,mean_ms,p50_ms,p95_ms,p99_ms}],
///    stages:[{name,min_depth,count,total_ms,mean_ms,p50_ms,p95_ms,p99_ms}],
///    serve_tick:[{phase,ticks,p50_ms,p95_ms,p99_ms,allocs_per_tick}]}
std::string latency_stages_json(int iterations,
                                const std::vector<LatencyQuantileRow>& top_level,
                                const std::vector<StageSnapshot>& stages,
                                const std::vector<ServeTickProfile>& serve_tick = {});

/// One stage's wall-times across the swept thread counts.
struct SweepStageSeries {
  std::string name;
  std::vector<double> ms;  ///< aligned with the swept thread counts
};

/// Builds the BENCH_parallel.json document. Speedups are derived from the
/// first (lowest) thread count. Schema (pinned by golden test
/// `bench_parallel_schema`):
///   {hardware_concurrency, threads:[...], stages:[{name,ms:[],speedup:[]}]}
std::string parallel_sweep_json(std::size_t hardware_concurrency,
                                const std::vector<std::size_t>& threads,
                                const std::vector<SweepStageSeries>& stages);

/// One (fault family, severity) cell of the robustness sweep.
struct FaultSweepRow {
  double severity = 0.0;
  std::uint64_t frames_in = 0;         ///< frames entering the injector
  std::uint64_t frames_delivered = 0;  ///< frames surviving injection
  std::uint64_t frames_dropped = 0;
  std::uint64_t ghost_points = 0;
  std::uint64_t points_removed = 0;
  std::uint64_t segments = 0;    ///< segments the streaming segmenter detected
  std::uint64_t classified = 0;  ///< clouds that got a (gesture,user) answer
  std::uint64_t abstained = 0;   ///< clouds the system refused (kAbstain)
  std::uint64_t correct = 0;     ///< classified AND gesture matched truth
  std::uint64_t uncaught_exceptions = 0;  ///< must be 0: degradation, not death
};

/// One fault family's severity series.
struct FaultFamilySeries {
  std::string kind;  ///< fault_kind_name() string, or "mixed"
  std::vector<FaultSweepRow> rows;
};

/// Builds the BENCH_faults.json document (graceful-degradation evidence,
/// DESIGN.md §7). `accuracy` is derived as correct/classified (0 when
/// nothing was classified). Schema (pinned by golden test
/// `bench_faults_schema`):
///   {abstain_margin, severities:[...], families:[{kind, rows:[{severity,
///    frames_in, frames_delivered, frames_dropped, ghost_points,
///    points_removed, segments, classified, abstained, correct, accuracy,
///    uncaught_exceptions}]}]}
std::string fault_sweep_json(double abstain_margin,
                             const std::vector<double>& severities,
                             const std::vector<FaultFamilySeries>& families);

/// Sequential per-segment baseline at one concurrency level: every segment
/// classified one at a time through the unfused offline classify() path.
struct ServeBaselineRow {
  std::size_t sessions = 0;
  std::uint64_t segments = 0;
  double ms = 0.0;
};

/// One (sessions, batch_max, quant mode) cell of the serving sweep.
struct ServeSweepCell {
  std::size_t sessions = 0;
  std::size_t batch_max = 0;
  std::string quant = "off";   ///< quant_mode_name() of the published model
  std::uint64_t segments = 0;  ///< completed segments entering the batcher
  std::uint64_t results = 0;   ///< ServeResults emitted
  std::uint64_t batches = 0;   ///< micro-batches flushed
  std::uint64_t abstained = 0;
  double ms = 0.0;             ///< serve wall time (stream in → drained)
  double speedup = 0.0;        ///< baseline(sessions).ms / ms
};

/// Head-to-head int8-vs-f32 summary of the serving sweep (DESIGN.md §11).
/// forward_speedup isolates the fused GesIDNet forward pass (the part the
/// int8 kernel accelerates); serve_speedup is end-to-end serve wall time,
/// diluted by featurization/segmentation that quantization cannot touch.
struct ServeQuantSummary {
  bool measured = false;  ///< false when the sweep ran a single mode only
  double f32_forward_ms = 0.0;
  double int8_forward_ms = 0.0;
  double forward_speedup = 0.0;  ///< f32_forward_ms / int8_forward_ms
  double serve_speedup = 0.0;    ///< f32 serve wall / int8 serve wall
  std::uint64_t argmax_mismatches = 0;  ///< (gesture,user) disagreements
};

/// Builds the BENCH_serve.json document (gp::serve throughput evidence,
/// DESIGN.md §8, §11). Schema (pinned by golden test `bench_serve_schema`):
///   {sessions:[...], batch_max:[...], baseline:[{sessions,segments,ms}],
///    cells:[{sessions,batch_max,quant,segments,results,batches,abstained,
///            ms,speedup}],
///    quant:{measured,f32_forward_ms,int8_forward_ms,forward_speedup,
///           serve_speedup,argmax_mismatches}}
std::string serve_bench_json(const std::vector<std::size_t>& sessions_swept,
                             const std::vector<std::size_t>& batch_max_swept,
                             const std::vector<ServeBaselineRow>& baseline,
                             const std::vector<ServeSweepCell>& cells,
                             const ServeQuantSummary& quant = {});

/// One shape of the GEMM kernel benchmark: the blocked kernel vs the
/// retained naive reference (nn/gemm_ref.hpp), plus the int8 fused-layer
/// row where applicable.
struct GemmBenchRow {
  std::string kernel;  ///< "matmul" | "matmul_bt" | "matmul_at" | "fused_int8"
  std::size_t m = 0, k = 0, n = 0;
  double ref_ms = 0.0;   ///< naive reference (or f32 fused for fused_int8)
  double opt_ms = 0.0;   ///< blocked kernel (or int8 fused for fused_int8)
  double speedup = 0.0;  ///< ref_ms / opt_ms
  double gflops = 0.0;   ///< 2*m*k*n / opt time
  std::string check;     ///< "bitwise" | "band" — differential result
};

/// Builds the BENCH_gemm.json document (blocked-GEMM + int8 kernel
/// evidence, DESIGN.md §11). Schema (pinned by golden test
/// `bench_gemm_schema`):
///   {threads, rows:[{kernel,m,k,n,ref_ms,opt_ms,speedup,gflops,check}]}
std::string gemm_bench_json(std::size_t threads, const std::vector<GemmBenchRow>& rows);

/// One mode of the health overhead sweep ("off" | "on"): serve-tick latency
/// quantiles over the measured pump loop, best-of-reps.
struct HealthBenchRow {
  std::string mode;
  std::uint64_t ticks = 0;
  std::uint64_t results = 0;  ///< ServeResults answered across the run
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// Builds the BENCH_health.json document (gp::health overhead evidence,
/// DESIGN.md §10). Schema (pinned by golden test `bench_health_schema`):
///   {reps, ticks_per_rep, rows:[{mode,ticks,results,p50_us,p95_us,p99_us}],
///    overhead_p50_pct, bitwise_identical, verdict, verdict_flips,
///    flightrec_events}
std::string health_bench_json(std::size_t reps, std::size_t ticks_per_rep,
                              const std::vector<HealthBenchRow>& rows,
                              double overhead_p50_pct, bool bitwise_identical,
                              const std::string& verdict, std::uint64_t verdict_flips,
                              std::uint64_t flightrec_events);

/// One worker-count cell of the cluster sweep: the same session streams
/// served by a gp::cluster::Cluster with `workers` forked replicas.
struct ClusterSweepCell {
  std::size_t workers = 0;
  std::uint64_t frames = 0;       ///< frames accepted across all sessions
  std::uint64_t results = 0;      ///< ServeResults delivered to the router
  std::uint64_t rpc_calls = 0;    ///< logical RPCs issued on worker links
  std::uint64_t rpc_attempts = 0; ///< wire attempts incl. retries
  std::uint64_t checkpoints = 0;  ///< session state snapshots captured
  double ms = 0.0;                ///< stream in → drained wall time
  bool bitwise_vs_single = false; ///< results identical to the 1-worker run
};

/// The kill-and-recover scenario: one worker SIGKILLed mid-stream, its
/// sessions restored onto survivors from checkpoint + replay.
struct ClusterFailoverSummary {
  bool measured = false;
  std::size_t workers = 0;
  std::uint64_t evictions = 0;
  std::uint64_t migrations = 0;
  std::uint64_t respawns = 0;
  std::uint64_t results = 0;
  std::uint64_t shed = 0;  ///< must be 0: failover degrades, it never drops
  double ms = 0.0;
  bool bitwise_identical = false;  ///< results match the undisturbed run
};

/// Builds the BENCH_cluster.json document (gp::cluster crash-tolerance
/// evidence, DESIGN.md §12). Schema (pinned by golden test
/// `bench_cluster_schema`):
///   {sessions, workers:[...], cells:[{workers,frames,results,rpc_calls,
///    rpc_attempts,checkpoints,ms,bitwise_vs_single}],
///    failover:{measured,workers,evictions,migrations,respawns,results,
///              shed,ms,bitwise_identical}}
std::string cluster_bench_json(std::size_t sessions,
                               const std::vector<std::size_t>& workers_swept,
                               const std::vector<ClusterSweepCell>& cells,
                               const ClusterFailoverSummary& failover);

/// One open-set operating point of the enrollment bench: the same
/// newcomer-vs-enrolled separation measured before and after the enrollment
/// pipeline ran. `eer` is the equal-error rate of the novelty score over
/// (enrolled-genuine, newcomer) samples; `newcomer_reject` the fraction of
/// newcomer segments the gate still rejects at the calibrated threshold.
struct EnrollOpenSetRow {
  std::string phase;  ///< "before" | "after"
  /// Newcomer-vs-stranger novelty EER: how well the gallery separates the
  /// (to-be-)enrolled person from people who stay unauthorized. Near chance
  /// before enrollment (both unseen); enrollment pulls it down.
  double eer = 0.0;
  double threshold = 0.0;
  double genuine_accept = 0.0;
  double newcomer_reject = 0.0;
};

/// The live serve-path half of the enrollment story: abstain → buffer →
/// head-only fine-tune → hot-swap publish, with the lossless-swap evidence
/// (results == expected_results) and the gp.enroll.* counter deltas.
struct EnrollServeSummary {
  std::uint64_t ticks = 0;
  std::uint64_t results = 0;
  std::uint64_t expected_results = 0;  ///< zero-dropped-ticks evidence
  std::uint64_t novelty_rejections = 0;
  std::uint64_t candidates_founded = 0;
  std::uint64_t fine_tunes = 0;
  std::uint64_t users_enrolled = 0;
  std::uint64_t published_version = 0;  ///< registry version after enrollment
};

/// Enrollment-to-live latency (first rejected segment staged → widened head
/// published), from the gp.enroll.to_live_ms histogram.
struct EnrollLatencySummary {
  std::uint64_t count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Builds the BENCH_enroll.json document (gp::enroll evidence, DESIGN.md
/// §13). Schema (pinned by golden test `bench_enroll_schema`):
///   {k_segments, max_candidates, open_set:[{phase,eer,threshold,
///    genuine_accept,newcomer_reject}], serve:{ticks,results,
///    expected_results,novelty_rejections,candidates_founded,fine_tunes,
///    users_enrolled,published_version},
///    to_live_ms:{count,p50_ms,p95_ms,p99_ms}}
std::string enroll_bench_json(std::size_t k_segments, std::size_t max_candidates,
                              const std::vector<EnrollOpenSetRow>& open_set,
                              const EnrollServeSummary& serve,
                              const EnrollLatencySummary& to_live);

}  // namespace gp::obs
