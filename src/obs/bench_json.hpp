// Canonical builders for the machine-readable bench artifacts
// (BENCH_latency_stages.json, BENCH_parallel.json).
//
// The bench binaries used to hand-roll these documents inline, which left
// the schema pinned down nowhere; centralising the emission here gives the
// golden-snapshot tests (tests/test_golden_snapshot.cpp) a single place to
// pin the schema of every BENCH_*.json artifact external tooling consumes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp::obs {

/// One top-level latency series (e.g. "preprocessing") with its quantiles.
struct LatencyQuantileRow {
  std::string name;
  HistogramSnapshot hist;
};

/// Builds the BENCH_latency_stages.json document: top-level quantile rows
/// plus the GP_SPAN per-stage breakdown. Stages with zero observations are
/// skipped. Schema (pinned by golden test `bench_latency_schema`):
///   {iterations, top_level:[{name,count,mean_ms,p50_ms,p95_ms,p99_ms}],
///    stages:[{name,min_depth,count,total_ms,mean_ms,p50_ms,p95_ms,p99_ms}]}
std::string latency_stages_json(int iterations,
                                const std::vector<LatencyQuantileRow>& top_level,
                                const std::vector<StageSnapshot>& stages);

/// One stage's wall-times across the swept thread counts.
struct SweepStageSeries {
  std::string name;
  std::vector<double> ms;  ///< aligned with the swept thread counts
};

/// Builds the BENCH_parallel.json document. Speedups are derived from the
/// first (lowest) thread count. Schema (pinned by golden test
/// `bench_parallel_schema`):
///   {hardware_concurrency, threads:[...], stages:[{name,ms:[],speedup:[]}]}
std::string parallel_sweep_json(std::size_t hardware_concurrency,
                                const std::vector<std::size_t>& threads,
                                const std::vector<SweepStageSeries>& stages);

}  // namespace gp::obs
