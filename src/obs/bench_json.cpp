#include "obs/bench_json.hpp"

#include <sstream>

#include "obs/json.hpp"

namespace gp::obs {

std::string latency_stages_json(int iterations,
                                const std::vector<LatencyQuantileRow>& top_level,
                                const std::vector<StageSnapshot>& stages,
                                const std::vector<ServeTickProfile>& serve_tick) {
  std::ostringstream out;
  out << "{\n  \"iterations\": " << iterations << ",\n  \"top_level\": [\n";
  for (std::size_t i = 0; i < top_level.size(); ++i) {
    const LatencyQuantileRow& row = top_level[i];
    out << "    {\"name\": \"" << json::escape(row.name) << "\", \"count\": " << row.hist.count
        << ", \"mean_ms\": " << json::number(row.hist.mean())
        << ", \"p50_ms\": " << json::number(row.hist.quantile(0.5))
        << ", \"p95_ms\": " << json::number(row.hist.quantile(0.95))
        << ", \"p99_ms\": " << json::number(row.hist.quantile(0.99)) << "}"
        << (i + 1 < top_level.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"stages\": [\n";
  std::size_t nonzero = 0;
  for (const StageSnapshot& s : stages) nonzero += s.histogram.count > 0 ? 1 : 0;
  std::size_t emitted = 0;
  for (const StageSnapshot& s : stages) {
    if (s.histogram.count == 0) continue;
    ++emitted;
    out << "    {\"name\": \"" << json::escape(s.name) << "\", \"min_depth\": " << s.min_depth
        << ", \"count\": " << s.histogram.count
        << ", \"total_ms\": " << json::number(s.histogram.sum)
        << ", \"mean_ms\": " << json::number(s.histogram.mean())
        << ", \"p50_ms\": " << json::number(s.histogram.quantile(0.5))
        << ", \"p95_ms\": " << json::number(s.histogram.quantile(0.95))
        << ", \"p99_ms\": " << json::number(s.histogram.quantile(0.99)) << "}"
        << (emitted < nonzero ? "," : "") << "\n";
  }
  out << "  ],\n  \"serve_tick\": [\n";
  for (std::size_t i = 0; i < serve_tick.size(); ++i) {
    const ServeTickProfile& p = serve_tick[i];
    out << "    {\"phase\": \"" << json::escape(p.phase) << "\", \"ticks\": " << p.ticks
        << ", \"p50_ms\": " << json::number(p.p50_ms)
        << ", \"p95_ms\": " << json::number(p.p95_ms)
        << ", \"p99_ms\": " << json::number(p.p99_ms)
        << ", \"allocs_per_tick\": " << json::number(p.allocs_per_tick) << "}"
        << (i + 1 < serve_tick.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string parallel_sweep_json(std::size_t hardware_concurrency,
                                const std::vector<std::size_t>& threads,
                                const std::vector<SweepStageSeries>& stages) {
  std::ostringstream out;
  out << "{\n  \"hardware_concurrency\": " << hardware_concurrency << ",\n  \"threads\": [";
  for (std::size_t i = 0; i < threads.size(); ++i) out << (i ? ", " : "") << threads[i];
  out << "],\n  \"stages\": [\n";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const SweepStageSeries& stage = stages[s];
    out << "    {\"name\": \"" << json::escape(stage.name) << "\", \"ms\": [";
    for (std::size_t i = 0; i < stage.ms.size(); ++i) {
      out << (i ? ", " : "") << json::number(stage.ms[i]);
    }
    out << "], \"speedup\": [";
    for (std::size_t i = 0; i < stage.ms.size(); ++i) {
      const double speedup = stage.ms.empty() || stage.ms[i] == 0.0
                                 ? 0.0
                                 : stage.ms[0] / stage.ms[i];
      out << (i ? ", " : "") << json::number(speedup);
    }
    out << "]}" << (s + 1 < stages.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string fault_sweep_json(double abstain_margin,
                             const std::vector<double>& severities,
                             const std::vector<FaultFamilySeries>& families) {
  std::ostringstream out;
  out << "{\n  \"abstain_margin\": " << json::number(abstain_margin)
      << ",\n  \"severities\": [";
  for (std::size_t i = 0; i < severities.size(); ++i) {
    out << (i ? ", " : "") << json::number(severities[i]);
  }
  out << "],\n  \"families\": [\n";
  for (std::size_t f = 0; f < families.size(); ++f) {
    const FaultFamilySeries& family = families[f];
    out << "    {\"kind\": \"" << json::escape(family.kind) << "\", \"rows\": [\n";
    for (std::size_t i = 0; i < family.rows.size(); ++i) {
      const FaultSweepRow& r = family.rows[i];
      const double accuracy =
          r.classified == 0 ? 0.0
                            : static_cast<double>(r.correct) /
                                  static_cast<double>(r.classified);
      out << "      {\"severity\": " << json::number(r.severity)
          << ", \"frames_in\": " << r.frames_in
          << ", \"frames_delivered\": " << r.frames_delivered
          << ", \"frames_dropped\": " << r.frames_dropped
          << ", \"ghost_points\": " << r.ghost_points
          << ", \"points_removed\": " << r.points_removed
          << ", \"segments\": " << r.segments
          << ", \"classified\": " << r.classified
          << ", \"abstained\": " << r.abstained
          << ", \"correct\": " << r.correct
          << ", \"accuracy\": " << json::number(accuracy)
          << ", \"uncaught_exceptions\": " << r.uncaught_exceptions << "}"
          << (i + 1 < family.rows.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (f + 1 < families.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string serve_bench_json(const std::vector<std::size_t>& sessions_swept,
                             const std::vector<std::size_t>& batch_max_swept,
                             const std::vector<ServeBaselineRow>& baseline,
                             const std::vector<ServeSweepCell>& cells,
                             const ServeQuantSummary& quant) {
  std::ostringstream out;
  out << "{\n  \"sessions\": [";
  for (std::size_t i = 0; i < sessions_swept.size(); ++i) {
    out << (i ? ", " : "") << sessions_swept[i];
  }
  out << "],\n  \"batch_max\": [";
  for (std::size_t i = 0; i < batch_max_swept.size(); ++i) {
    out << (i ? ", " : "") << batch_max_swept[i];
  }
  out << "],\n  \"baseline\": [\n";
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    const ServeBaselineRow& b = baseline[i];
    out << "    {\"sessions\": " << b.sessions << ", \"segments\": " << b.segments
        << ", \"ms\": " << json::number(b.ms) << "}"
        << (i + 1 < baseline.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ServeSweepCell& c = cells[i];
    out << "    {\"sessions\": " << c.sessions << ", \"batch_max\": " << c.batch_max
        << ", \"quant\": \"" << json::escape(c.quant) << "\""
        << ", \"segments\": " << c.segments << ", \"results\": " << c.results
        << ", \"batches\": " << c.batches << ", \"abstained\": " << c.abstained
        << ", \"ms\": " << json::number(c.ms)
        << ", \"speedup\": " << json::number(c.speedup) << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"quant\": {\"measured\": " << (quant.measured ? "true" : "false")
      << ", \"f32_forward_ms\": " << json::number(quant.f32_forward_ms)
      << ", \"int8_forward_ms\": " << json::number(quant.int8_forward_ms)
      << ", \"forward_speedup\": " << json::number(quant.forward_speedup)
      << ", \"serve_speedup\": " << json::number(quant.serve_speedup)
      << ", \"argmax_mismatches\": " << quant.argmax_mismatches << "}\n}\n";
  return out.str();
}

std::string gemm_bench_json(std::size_t threads, const std::vector<GemmBenchRow>& rows) {
  std::ostringstream out;
  out << "{\n  \"threads\": " << threads << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GemmBenchRow& r = rows[i];
    out << "    {\"kernel\": \"" << json::escape(r.kernel) << "\", \"m\": " << r.m
        << ", \"k\": " << r.k << ", \"n\": " << r.n
        << ", \"ref_ms\": " << json::number(r.ref_ms)
        << ", \"opt_ms\": " << json::number(r.opt_ms)
        << ", \"speedup\": " << json::number(r.speedup)
        << ", \"gflops\": " << json::number(r.gflops)
        << ", \"check\": \"" << json::escape(r.check) << "\"}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string health_bench_json(std::size_t reps, std::size_t ticks_per_rep,
                              const std::vector<HealthBenchRow>& rows,
                              double overhead_p50_pct, bool bitwise_identical,
                              const std::string& verdict, std::uint64_t verdict_flips,
                              std::uint64_t flightrec_events) {
  std::ostringstream out;
  out << "{\n  \"reps\": " << reps << ",\n  \"ticks_per_rep\": " << ticks_per_rep
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const HealthBenchRow& r = rows[i];
    out << "    {\"mode\": \"" << json::escape(r.mode) << "\", \"ticks\": " << r.ticks
        << ", \"results\": " << r.results << ", \"p50_us\": " << json::number(r.p50_us)
        << ", \"p95_us\": " << json::number(r.p95_us)
        << ", \"p99_us\": " << json::number(r.p99_us) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"overhead_p50_pct\": " << json::number(overhead_p50_pct)
      << ",\n  \"bitwise_identical\": " << (bitwise_identical ? "true" : "false")
      << ",\n  \"verdict\": \"" << json::escape(verdict) << "\""
      << ",\n  \"verdict_flips\": " << verdict_flips
      << ",\n  \"flightrec_events\": " << flightrec_events << "\n}\n";
  return out.str();
}

std::string cluster_bench_json(std::size_t sessions,
                               const std::vector<std::size_t>& workers_swept,
                               const std::vector<ClusterSweepCell>& cells,
                               const ClusterFailoverSummary& failover) {
  std::ostringstream out;
  out << "{\n  \"sessions\": " << sessions << ",\n  \"workers\": [";
  for (std::size_t i = 0; i < workers_swept.size(); ++i) {
    out << (i ? ", " : "") << workers_swept[i];
  }
  out << "],\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ClusterSweepCell& c = cells[i];
    out << "    {\"workers\": " << c.workers << ", \"frames\": " << c.frames
        << ", \"results\": " << c.results << ", \"rpc_calls\": " << c.rpc_calls
        << ", \"rpc_attempts\": " << c.rpc_attempts
        << ", \"checkpoints\": " << c.checkpoints << ", \"ms\": " << json::number(c.ms)
        << ", \"bitwise_vs_single\": " << (c.bitwise_vs_single ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"failover\": {\n    \"measured\": "
      << (failover.measured ? "true" : "false") << ",\n    \"workers\": "
      << failover.workers << ",\n    \"evictions\": " << failover.evictions
      << ",\n    \"migrations\": " << failover.migrations
      << ",\n    \"respawns\": " << failover.respawns
      << ",\n    \"results\": " << failover.results
      << ",\n    \"shed\": " << failover.shed
      << ",\n    \"ms\": " << json::number(failover.ms)
      << ",\n    \"bitwise_identical\": "
      << (failover.bitwise_identical ? "true" : "false") << "\n  }\n}\n";
  return out.str();
}

std::string enroll_bench_json(std::size_t k_segments, std::size_t max_candidates,
                              const std::vector<EnrollOpenSetRow>& open_set,
                              const EnrollServeSummary& serve,
                              const EnrollLatencySummary& to_live) {
  std::ostringstream out;
  out << "{\n  \"k_segments\": " << k_segments
      << ",\n  \"max_candidates\": " << max_candidates << ",\n  \"open_set\": [\n";
  for (std::size_t i = 0; i < open_set.size(); ++i) {
    const EnrollOpenSetRow& r = open_set[i];
    out << "    {\"phase\": \"" << json::escape(r.phase) << "\", \"eer\": " << json::number(r.eer)
        << ", \"threshold\": " << json::number(r.threshold)
        << ", \"genuine_accept\": " << json::number(r.genuine_accept)
        << ", \"newcomer_reject\": " << json::number(r.newcomer_reject) << "}"
        << (i + 1 < open_set.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"serve\": {\n    \"ticks\": " << serve.ticks
      << ",\n    \"results\": " << serve.results
      << ",\n    \"expected_results\": " << serve.expected_results
      << ",\n    \"novelty_rejections\": " << serve.novelty_rejections
      << ",\n    \"candidates_founded\": " << serve.candidates_founded
      << ",\n    \"fine_tunes\": " << serve.fine_tunes
      << ",\n    \"users_enrolled\": " << serve.users_enrolled
      << ",\n    \"published_version\": " << serve.published_version
      << "\n  },\n  \"to_live_ms\": {\"count\": " << to_live.count
      << ", \"p50_ms\": " << json::number(to_live.p50_ms)
      << ", \"p95_ms\": " << json::number(to_live.p95_ms)
      << ", \"p99_ms\": " << json::number(to_live.p99_ms) << "}\n}\n";
  return out.str();
}

}  // namespace gp::obs
