// gp::obs trace spans — RAII scoped timing that feeds (a) per-stage latency
// histograms in the metrics registry and (b) per-thread ring buffers of
// trace events exportable as Chrome trace-event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev).
//
//   void detect(...) {
//     GP_SPAN("radar.cfar");         // one span per call site
//     ...
//   }
//
// Behaviour matrix:
//   * GP_TRACE=off (default) + GP_METRICS=on : spans record duration into
//     the stage histogram only (one clock pair + sharded atomic adds).
//   * GP_TRACE=on : spans additionally append one event into the calling
//     thread's ring buffer (fixed capacity, oldest events overwritten).
//   * both off : the constructor is a single predicted branch, ~ns.
//
// Spans nest arbitrarily and are thread-aware: each thread tracks its own
// depth and owns its own buffer, so instrumenting code inside gp::exec
// parallel regions is safe and TSan-clean. Span names must be string
// literals (the buffers store the pointer, not a copy).
//
// Tracing never perturbs determinism: no RNG use, no FP-order changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace gp::obs {

/// Tracing switch: GP_TRACE=on|1 enables, anything else (or unset) is off.
/// Overridable at runtime (tests toggle it around deterministic sections).
bool trace_enabled();
void set_trace_enabled(bool enabled);

/// Per-call-site stage statistics: a duration histogram (milliseconds,
/// registered as "gp.stage.<name>") plus the minimum nesting depth this
/// stage was ever observed at (run reports treat min-depth-0 stages as the
/// top-level phases whose totals should sum to the wall clock).
class StageStats {
 public:
  StageStats(std::string name, Histogram& histogram)
      : name_(std::move(name)), histogram_(histogram) {}

  void record(double duration_ms, int depth) {
    histogram_.observe(duration_ms);
    int cur = min_depth_.load(std::memory_order_relaxed);
    while (depth < cur &&
           !min_depth_.compare_exchange_weak(cur, depth, std::memory_order_relaxed)) {
    }
  }

  const std::string& name() const { return name_; }
  const Histogram& histogram() const { return histogram_; }
  int min_depth() const { return min_depth_.load(std::memory_order_relaxed); }

 private:
  std::string name_;
  Histogram& histogram_;
  std::atomic<int> min_depth_{1 << 20};
};

/// Registers (or returns the existing) stage named `name`. Handles are
/// process-lifetime; call sites cache them via GP_SPAN.
StageStats& stage_stats(const char* name);

/// Snapshot of every registered stage, sorted by name.
struct StageSnapshot {
  std::string name;
  HistogramSnapshot histogram;  ///< durations in milliseconds
  int min_depth = 0;
};
std::vector<StageSnapshot> stage_snapshots();

// -------------------------------------------------------------------- Span

class Span {
 public:
  /// `name` must outlive the process (string literal). `stats` is optional;
  /// GP_SPAN wires the cached per-site StageStats.
  explicit Span(const char* name, StageStats* stats = nullptr);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  StageStats* stats_ = nullptr;
  std::uint64_t start_ns_ = 0;
  int depth_ = 0;
  bool active_ = false;
};

#define GP_OBS_CONCAT2(a, b) a##b
#define GP_OBS_CONCAT(a, b) GP_OBS_CONCAT2(a, b)

/// Scoped span for the rest of the enclosing block. Name must be a literal.
#define GP_SPAN(name_literal)                                                \
  static ::gp::obs::StageStats& GP_OBS_CONCAT(gp_obs_stats_, __LINE__) =     \
      ::gp::obs::stage_stats(name_literal);                                  \
  const ::gp::obs::Span GP_OBS_CONCAT(gp_obs_span_, __LINE__)(               \
      name_literal, &GP_OBS_CONCAT(gp_obs_stats_, __LINE__))

// ------------------------------------------------------------ trace export

/// Names the calling thread for trace exports: write_chrome_trace emits a
/// "thread_name" metadata event per named thread so serve shards/pump group
/// legibly in Perfetto instead of bare tids. Idempotent and cheap when the
/// thread already carries `name` (safe on hot paths); last write wins.
void set_thread_name(const char* name);

/// (tid, name) for every thread that called set_thread_name.
std::vector<std::pair<int, std::string>> thread_names();
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  int tid = 0;
  int depth = 0;
};

/// All buffered events from every thread (including exited threads),
/// ordered by (tid, start time). Ring buffers keep the newest
/// `trace_buffer_capacity()` events per thread.
std::vector<TraceEvent> collect_trace_events();

/// Number of currently buffered events across all threads.
std::size_t trace_event_count();

/// Drops all buffered events (tests / before a fresh measured region).
void clear_trace();

/// Events each thread's ring buffer retains (compile-time constant).
std::size_t trace_buffer_capacity();

/// Writes Chrome trace-event JSON ({"traceEvents": [...]}, "X" complete
/// events, microsecond timestamps) for everything buffered so far.
void write_chrome_trace(std::ostream& out);

/// write_chrome_trace to `path`; creates parent directories, logs the
/// destination, and returns the path.
std::string write_trace_file(const std::string& path);

}  // namespace gp::obs
