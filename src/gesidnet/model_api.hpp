// Common interface for all point-cloud classifiers (GesIDNet and the
// baseline networks), so the trainer and evaluation harness are generic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gesidnet/batch.hpp"
#include "nn/layers.hpp"

namespace gp {

class PointCloudClassifier {
 public:
  virtual ~PointCloudClassifier() = default;

  /// Inference-mode logits, one row per sample.
  virtual nn::Tensor infer(const BatchedCloud& batch) = 0;

  /// One training forward/backward pass; gradients accumulate into
  /// parameters() (the optimiser consumes them). Returns the batch loss.
  virtual double train_step(const BatchedCloud& batch, const std::vector<int>& labels) = 0;

  virtual std::vector<nn::Parameter*> parameters() = 0;
  /// Non-learned persistent state (batch-norm running stats); default none.
  virtual std::vector<nn::Parameter*> buffers() { return {}; }
  virtual std::string name() const = 0;

  /// Parameter subset a head-only fine-tune optimises. Models without a
  /// head/trunk split train everything (identical to parameters()).
  virtual std::vector<nn::Parameter*> head_parameters() { return parameters(); }
  /// Training step with the feature trunk frozen (no batch-norm statistic
  /// drift); models without the split fall back to a full step.
  virtual double train_step_head_only(const BatchedCloud& batch, const std::vector<int>& labels) {
    return train_step(batch, labels);
  }

  /// Deep copy with identical weights and buffers, used to build per-thread
  /// inference replicas (layers cache activations, so one instance cannot
  /// serve two threads). Models that do not support replication return
  /// nullptr and the execution layer falls back to serial inference.
  virtual std::unique_ptr<PointCloudClassifier> clone() { return nullptr; }
};

}  // namespace gp
