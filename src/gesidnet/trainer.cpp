#include "gesidnet/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp {

TrainStats train_classifier(PointCloudClassifier& model, const LabeledSamples& data,
                            const TrainConfig& config, exec::ExecContext& ctx) {
  GP_SPAN("train.fit");
  check_arg(data.samples.size() == data.labels.size(), "sample/label count mismatch");
  check_arg(!data.samples.empty(), "empty training set");
  check_arg(config.batch_size >= 2, "batch size must be >= 2 (batch norm)");

  Rng rng(config.seed, 0x7f4a7c15ULL);
  nn::Adam optimizer(config.head_only ? model.head_parameters() : model.parameters(), config.lr,
                     0.9, 0.999, 1e-8, config.weight_decay);

  std::vector<std::size_t> order(data.samples.size());
  std::iota(order.begin(), order.end(), 0);

  // Scratch reused across every step of every epoch: the minibatch tensors
  // keep their allocation (Tensor::resize), only their contents change.
  std::vector<const FeaturizedSample*> batch_samples;
  std::vector<int> batch_labels;
  BatchedCloud batch;

  TrainStats stats;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    GP_SPAN("train.epoch");
    const std::uint64_t epoch_t0 = obs::metrics_enabled() ? monotonic_ns() : 0;
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t steps = 0;
    std::size_t samples_seen = 0;

    for (std::size_t begin = 0; begin < order.size(); begin += config.batch_size) {
      GP_SPAN("train.step");
      const std::size_t count = std::min(config.batch_size, order.size() - begin);
      if (count < 2) break;  // batch-norm needs a real batch; drop remainder

      batch_samples.clear();
      batch_labels.clear();
      batch_samples.reserve(count);
      batch_labels.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        batch_samples.push_back(&data.samples[order[begin + i]]);
        batch_labels.push_back(data.labels[order[begin + i]]);
      }

      // The forward/backward pass below is data-parallel across the
      // minibatch: batched activations are sample-major, so the row-panel
      // kernels in gp::nn split every layer over `ctx`'s pool while keeping
      // the serial accumulation order (see DESIGN.md "Execution model").
      make_batch(batch_samples, batch);
      epoch_loss += config.head_only ? model.train_step_head_only(batch, batch_labels)
                                     : model.train_step(batch, batch_labels);
      optimizer.step();
      ++steps;
      samples_seen += count;
    }

    stats.epoch_loss.push_back(steps > 0 ? epoch_loss / static_cast<double>(steps) : 0.0);
    optimizer.set_lr(optimizer.lr() * config.lr_decay);
    if (obs::metrics_enabled()) {
      GP_COUNTER_ADD("gp.train.epochs", 1);
      GP_COUNTER_ADD("gp.train.steps", steps);
      GP_COUNTER_ADD("gp.train.samples", samples_seen);
      static obs::Gauge& loss_gauge = obs::gauge("gp.train.epoch_loss");
      loss_gauge.set(stats.epoch_loss.back());
      const double epoch_s =
          static_cast<double>(monotonic_ns() - epoch_t0) * 1e-9;
      if (epoch_s > 0.0) {
        static obs::Gauge& throughput = obs::gauge("gp.train.samples_per_s");
        throughput.set(static_cast<double>(samples_seen) / epoch_s);
      }
    }
    if (config.verbose) {
      log_info() << model.name() << " epoch " << epoch + 1 << "/" << config.epochs
                 << " loss=" << stats.epoch_loss.back();
    }
  }

  const nn::Tensor logits = predict_logits(model, data.samples, 64, ctx);
  stats.train_accuracy = nn::accuracy(logits, data.labels);
  return stats;
}

namespace {

/// Runs batch `batch_index` through `model` and writes its logit rows into
/// the matching rows of `all`. `scratch` is the lane-local batch buffer.
void infer_batch_into(PointCloudClassifier& model, std::span<const FeaturizedSample> samples,
                      std::size_t batch_size, std::size_t batch_index, BatchedCloud& scratch,
                      nn::Tensor& all) {
  const std::size_t begin = batch_index * batch_size;
  const std::size_t count = std::min(batch_size, samples.size() - begin);
  make_batch(samples, begin, count, scratch);
  const nn::Tensor logits = model.infer(scratch);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      all.at(begin + i, c) = logits.at(i, c);
    }
  }
}

}  // namespace

nn::Tensor predict_logits(PointCloudClassifier& model,
                          const std::vector<FeaturizedSample>& samples,
                          std::size_t batch_size, exec::ExecContext& ctx) {
  return predict_logits(model, std::span<const FeaturizedSample>(samples), batch_size, ctx);
}

nn::Tensor predict_logits(PointCloudClassifier& model, std::span<const FeaturizedSample> samples,
                          std::size_t batch_size, exec::ExecContext& ctx) {
  nn::Tensor all;
  predict_logits_into(model, samples, all, batch_size, ctx);
  return all;
}

void predict_logits_into(PointCloudClassifier& model, std::span<const FeaturizedSample> samples,
                         nn::Tensor& all, std::size_t batch_size, exec::ExecContext& ctx) {
  GP_SPAN("gesidnet.predict");
  check_arg(!samples.empty(), "predict over empty sample list");
  check_arg(batch_size > 0, "predict batch size must be > 0");
  const std::size_t num_batches = (samples.size() + batch_size - 1) / batch_size;

  // Batch 0 runs on the primary model to discover the class count.
  BatchedCloud scratch;
  {
    const std::size_t count = std::min(batch_size, samples.size());
    make_batch(samples, 0, count, scratch);
    const nn::Tensor logits = model.infer(scratch);
    all.resize(samples.size(), logits.cols());
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t c = 0; c < logits.cols(); ++c) all.at(i, c) = logits.at(i, c);
    }
  }
  if (num_batches == 1) return;

  // Layers cache activations for backward, so a model instance is not
  // reentrant: concurrent lanes need replicas. Lane 0 reuses the primary;
  // batch slicing is identical for every lane count, so the result matches
  // the serial path bitwise.
  const std::size_t lanes = std::min(ctx.threads(), num_batches - 1);
  if (lanes > 1) {
    std::vector<std::unique_ptr<PointCloudClassifier>> replicas;
    replicas.reserve(lanes - 1);
    bool cloneable = true;
    for (std::size_t r = 0; r + 1 < lanes; ++r) {
      auto replica = model.clone();
      if (!replica) {
        cloneable = false;
        break;
      }
      replicas.push_back(std::move(replica));
    }
    if (cloneable) {
      ctx.run_chunks(lanes, [&](std::size_t lane) {
        PointCloudClassifier& lane_model = lane == 0 ? model : *replicas[lane - 1];
        BatchedCloud lane_scratch;
        for (std::size_t b = 1 + lane; b < num_batches; b += lanes) {
          infer_batch_into(lane_model, samples, batch_size, b, lane_scratch, all);
        }
      });
      return;
    }
  }

  // Serial fallback (model not cloneable, single thread, or tiny input):
  // the layer kernels still parallelise internally via ctx.
  for (std::size_t b = 1; b < num_batches; ++b) {
    infer_batch_into(model, samples, batch_size, b, scratch, all);
  }
}

std::vector<int> argmax_labels(const nn::Tensor& logits) {
  std::vector<int> out(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const float* row = logits.row(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

}  // namespace gp
