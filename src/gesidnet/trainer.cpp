#include "gesidnet/trainer.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "nn/loss.hpp"

namespace gp {

TrainStats train_classifier(PointCloudClassifier& model, const LabeledSamples& data,
                            const TrainConfig& config) {
  check_arg(data.samples.size() == data.labels.size(), "sample/label count mismatch");
  check_arg(!data.samples.empty(), "empty training set");
  check_arg(config.batch_size >= 2, "batch size must be >= 2 (batch norm)");

  Rng rng(config.seed, 0x7f4a7c15ULL);
  nn::Adam optimizer(model.parameters(), config.lr, 0.9, 0.999, 1e-8, config.weight_decay);

  std::vector<std::size_t> order(data.samples.size());
  std::iota(order.begin(), order.end(), 0);

  TrainStats stats;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t steps = 0;

    for (std::size_t begin = 0; begin < order.size(); begin += config.batch_size) {
      const std::size_t count = std::min(config.batch_size, order.size() - begin);
      if (count < 2) break;  // batch-norm needs a real batch; drop remainder

      std::vector<const FeaturizedSample*> batch_samples;
      std::vector<int> batch_labels;
      batch_samples.reserve(count);
      batch_labels.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        batch_samples.push_back(&data.samples[order[begin + i]]);
        batch_labels.push_back(data.labels[order[begin + i]]);
      }

      const BatchedCloud batch = make_batch(batch_samples);
      epoch_loss += model.train_step(batch, batch_labels);
      optimizer.step();
      ++steps;
    }

    stats.epoch_loss.push_back(steps > 0 ? epoch_loss / static_cast<double>(steps) : 0.0);
    optimizer.set_lr(optimizer.lr() * config.lr_decay);
    if (config.verbose) {
      log_info() << model.name() << " epoch " << epoch + 1 << "/" << config.epochs
                 << " loss=" << stats.epoch_loss.back();
    }
  }

  const nn::Tensor logits = predict_logits(model, data.samples);
  stats.train_accuracy = nn::accuracy(logits, data.labels);
  return stats;
}

nn::Tensor predict_logits(PointCloudClassifier& model,
                          const std::vector<FeaturizedSample>& samples,
                          std::size_t batch_size) {
  check_arg(!samples.empty(), "predict over empty sample list");
  nn::Tensor all;
  for (std::size_t begin = 0; begin < samples.size(); begin += batch_size) {
    const std::size_t count = std::min(batch_size, samples.size() - begin);
    const BatchedCloud batch = make_batch(samples, begin, count);
    const nn::Tensor logits = model.infer(batch);
    if (all.empty()) {
      all = nn::Tensor(samples.size(), logits.cols());
    }
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t c = 0; c < logits.cols(); ++c) {
        all.at(begin + i, c) = logits.at(i, c);
      }
    }
  }
  return all;
}

std::vector<int> argmax_labels(const nn::Tensor& logits) {
  std::vector<int> out(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const float* row = logits.row(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

}  // namespace gp
