// Batched point-cloud tensors: the bridge between preprocessed gesture
// samples (pipeline::FeaturizedSample) and the network layers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/tensor.hpp"
#include "pipeline/preprocessor.hpp"

namespace gp {

/// A batch of B clouds with a uniform point count N. Rows are laid out
/// sample-major: row (b * N + i) belongs to sample b.
struct BatchedCloud {
  std::size_t batch = 0;
  std::size_t num_points = 0;
  nn::Tensor positions;  ///< (B*N x 3)
  nn::Tensor features;   ///< (B*N x C)

  std::size_t channels() const { return features.cols(); }
};

/// Assembles a batch; all samples must share num_points and dims.
BatchedCloud make_batch(const std::vector<const FeaturizedSample*>& samples);

/// Convenience for contiguous sample storage.
BatchedCloud make_batch(const std::vector<FeaturizedSample>& samples, std::size_t begin,
                        std::size_t count);

/// In-place variants: refill `out`, reusing its tensor allocations so batch
/// loops (training epochs, batched inference) stop reallocating per batch.
void make_batch(const std::vector<const FeaturizedSample*>& samples, BatchedCloud& out);
void make_batch(const std::vector<FeaturizedSample>& samples, std::size_t begin,
                std::size_t count, BatchedCloud& out);
/// Span variant: slices contiguous storage directly — no pointer table, no
/// per-call allocation (the inference hot path).
void make_batch(std::span<const FeaturizedSample> samples, std::size_t begin, std::size_t count,
                BatchedCloud& out);

}  // namespace gp
