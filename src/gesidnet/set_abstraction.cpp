#include "gesidnet/set_abstraction.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace gp {

namespace {

// Farthest point sampling over raw position rows [start_row, start_row+n).
// Deterministic (seeded at row 0) so inference is repeatable.
std::vector<std::size_t> fps_rows(const nn::Tensor& positions, std::size_t start_row,
                                  std::size_t n, std::size_t count) {
  std::vector<std::size_t> selected;
  if (count >= n) {
    selected.resize(n);
    for (std::size_t i = 0; i < n; ++i) selected[i] = start_row + i;
    return selected;
  }
  selected.reserve(count);
  std::vector<double> min_dist2(n, std::numeric_limits<double>::infinity());
  std::size_t current = 0;
  const auto dist2 = [&](std::size_t a, std::size_t b) {
    const float* pa = positions.row(start_row + a);
    const float* pb = positions.row(start_row + b);
    const double dx = pa[0] - pb[0];
    const double dy = pa[1] - pb[1];
    const double dz = pa[2] - pb[2];
    return dx * dx + dy * dy + dz * dz;
  };
  for (std::size_t round = 0; round < count; ++round) {
    selected.push_back(start_row + current);
    std::size_t far = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d2 = dist2(i, current);
      min_dist2[i] = std::min(min_dist2[i], d2);
      if (min_dist2[i] > best) {
        best = min_dist2[i];
        far = i;
      }
    }
    current = far;
  }
  return selected;
}

}  // namespace

SetAbstraction::SetAbstraction(std::size_t num_centroids, std::size_t in_channels,
                               std::vector<ScaleSpec> scales, Rng& rng, const std::string& name)
    : num_centroids_(num_centroids), in_channels_(in_channels), scales_(std::move(scales)) {
  check_arg(num_centroids_ > 0, "set abstraction needs centroids");
  check_arg(!scales_.empty(), "set abstraction needs at least one scale");
  for (std::size_t s = 0; s < scales_.size(); ++s) {
    const ScaleSpec& scale = scales_[s];
    check_arg(scale.group_size > 0 && !scale.mlp.empty() && scale.radius > 0.0,
              "bad scale spec");
    mlps_.push_back(nn::make_mlp(3 + in_channels_, scale.mlp, rng, /*batch_norm=*/true,
                                 name + ".s" + std::to_string(s)));
    scale_out_channels_.push_back(scale.mlp.back());
    out_channels_ += scale.mlp.back();
  }
  caches_.resize(scales_.size());
}

BatchedCloud SetAbstraction::forward(const BatchedCloud& in, bool training) {
  check_arg(in.channels() == in_channels_, "set abstraction channel mismatch");
  check_arg(in.num_points > 0 && in.batch > 0, "empty batch");
  batch_ = in.batch;
  in_rows_ = in.batch * in.num_points;

  BatchedCloud out;
  out.batch = in.batch;
  out.num_points = num_centroids_;
  out.positions = nn::Tensor(in.batch * num_centroids_, 3);
  out.features = nn::Tensor(in.batch * num_centroids_, out_channels_);

  // Centroids: FPS per sample, shared across scales.
  std::vector<std::size_t> centroid_rows;
  centroid_rows.reserve(in.batch * num_centroids_);
  for (std::size_t b = 0; b < in.batch; ++b) {
    const auto selected =
        fps_rows(in.positions, b * in.num_points, in.num_points, num_centroids_);
    for (std::size_t k = 0; k < num_centroids_; ++k) {
      // If the cloud has fewer points than centroids, repeat cyclically.
      const std::size_t row = selected[k % selected.size()];
      centroid_rows.push_back(row);
      const std::size_t out_row = b * num_centroids_ + k;
      for (std::size_t c = 0; c < 3; ++c) {
        out.positions.at(out_row, c) = in.positions.at(row, c);
      }
    }
  }

  std::size_t channel_offset = 0;
  for (std::size_t s = 0; s < scales_.size(); ++s) {
    const ScaleSpec& scale = scales_[s];
    ScaleCache& cache = caches_[s];
    const std::size_t m = scale.group_size;
    const std::size_t groups = in.batch * num_centroids_;
    cache.rows = groups * m;
    cache.member.assign(cache.rows, 0);

    // Build grouped rows: [local_xyz | features].
    nn::Tensor rows(cache.rows, 3 + in_channels_);
    const double r2 = scale.radius * scale.radius;
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t b = g / num_centroids_;
      const std::size_t centroid_row = centroid_rows[g];
      const float* cp = in.positions.row(centroid_row);

      // Ball query within this sample (nearest-first up to m).
      std::vector<std::pair<double, std::size_t>> hits;
      const std::size_t base = b * in.num_points;
      for (std::size_t i = 0; i < in.num_points; ++i) {
        const float* pp = in.positions.row(base + i);
        const double dx = pp[0] - cp[0];
        const double dy = pp[1] - cp[1];
        const double dz = pp[2] - cp[2];
        const double d2 = dx * dx + dy * dy + dz * dz;
        if (d2 <= r2) hits.emplace_back(d2, base + i);
      }
      if (hits.empty()) hits.emplace_back(0.0, centroid_row);  // degenerate: centroid only
      std::sort(hits.begin(), hits.end());
      if (hits.size() > m) hits.resize(m);

      for (std::size_t j = 0; j < m; ++j) {
        const std::size_t src = hits[j % hits.size()].second;  // cyclic padding
        cache.member[g * m + j] = src;
        float* dst = rows.row(g * m + j);
        const float* pp = in.positions.row(src);
        dst[0] = pp[0] - cp[0];
        dst[1] = pp[1] - cp[1];
        dst[2] = pp[2] - cp[2];
        const float* pf = in.features.row(src);
        for (std::size_t c = 0; c < in_channels_; ++c) dst[3 + c] = pf[c];
      }
    }

    // Shared MLP + per-group channel-wise max pool.
    const nn::Tensor activated = mlps_[s]->forward(rows, training);
    const std::size_t cs = scale_out_channels_[s];
    cache.argmax.assign(groups * cs, 0);
    for (std::size_t g = 0; g < groups; ++g) {
      float* dst = out.features.row(g);
      for (std::size_t c = 0; c < cs; ++c) {
        std::size_t best_row = g * m;
        float best = activated.at(best_row, c);
        for (std::size_t j = 1; j < m; ++j) {
          const float v = activated.at(g * m + j, c);
          if (v > best) {
            best = v;
            best_row = g * m + j;
          }
        }
        dst[channel_offset + c] = best;
        cache.argmax[g * cs + c] = best_row;
      }
    }
    channel_offset += cs;
  }
  return out;
}

nn::Tensor SetAbstraction::backward(const nn::Tensor& grad_out_features) {
  const std::size_t groups = batch_ * num_centroids_;
  check_arg(grad_out_features.rows() == groups && grad_out_features.cols() == out_channels_,
            "set abstraction backward shape mismatch");

  nn::Tensor grad_in(in_rows_, in_channels_);
  std::size_t channel_offset = 0;
  for (std::size_t s = 0; s < scales_.size(); ++s) {
    const ScaleCache& cache = caches_[s];
    const std::size_t cs = scale_out_channels_[s];

    // Un-pool: route each output channel's gradient to its argmax row.
    nn::Tensor rows_grad(cache.rows, cs);
    for (std::size_t g = 0; g < groups; ++g) {
      const float* src = grad_out_features.row(g);
      for (std::size_t c = 0; c < cs; ++c) {
        rows_grad.at(cache.argmax[g * cs + c], c) += src[channel_offset + c];
      }
    }

    // Through the shared MLP, then scatter the feature part into the input.
    const nn::Tensor rows_in_grad = mlps_[s]->backward(rows_grad);
    for (std::size_t r = 0; r < cache.rows; ++r) {
      const std::size_t src_row = cache.member[r];
      const float* g = rows_in_grad.row(r);
      float* dst = grad_in.row(src_row);
      for (std::size_t c = 0; c < in_channels_; ++c) dst[c] += g[3 + c];
    }
    channel_offset += cs;
  }
  return grad_in;
}

std::vector<nn::Parameter*> SetAbstraction::parameters() {
  std::vector<nn::Parameter*> out;
  for (auto& mlp : mlps_) {
    for (nn::Parameter* p : mlp->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<nn::Parameter*> SetAbstraction::buffers() {
  std::vector<nn::Parameter*> out;
  for (auto& mlp : mlps_) {
    for (nn::Parameter* p : mlp->buffers()) out.push_back(p);
  }
  return out;
}

// ---- GroupAll --------------------------------------------------------------

GroupAll::GroupAll(std::size_t in_channels, std::vector<std::size_t> mlp, Rng& rng,
                   const std::string& name)
    : in_channels_(in_channels) {
  check_arg(!mlp.empty(), "GroupAll needs an MLP");
  mlp_ = nn::make_mlp(3 + in_channels_, mlp, rng, /*batch_norm=*/true, name);
  out_channels_ = mlp.back();
}

nn::Tensor GroupAll::forward(const BatchedCloud& in, bool training) {
  check_arg(in.channels() == in_channels_, "GroupAll channel mismatch");
  batch_ = in.batch;
  num_points_ = in.num_points;

  nn::Tensor rows(in.batch * in.num_points, 3 + in_channels_);
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    float* dst = rows.row(r);
    const float* pp = in.positions.row(r);
    dst[0] = pp[0];
    dst[1] = pp[1];
    dst[2] = pp[2];
    const float* pf = in.features.row(r);
    for (std::size_t c = 0; c < in_channels_; ++c) dst[3 + c] = pf[c];
  }

  const nn::Tensor activated = mlp_->forward(rows, training);
  nn::Tensor out(batch_, out_channels_);
  argmax_.assign(batch_ * out_channels_, 0);
  for (std::size_t b = 0; b < batch_; ++b) {
    float* dst = out.row(b);
    for (std::size_t c = 0; c < out_channels_; ++c) {
      std::size_t best_row = b * num_points_;
      float best = activated.at(best_row, c);
      for (std::size_t i = 1; i < num_points_; ++i) {
        const float v = activated.at(b * num_points_ + i, c);
        if (v > best) {
          best = v;
          best_row = b * num_points_ + i;
        }
      }
      dst[c] = best;
      argmax_[b * out_channels_ + c] = best_row;
    }
  }
  return out;
}

nn::Tensor GroupAll::backward(const nn::Tensor& grad_output) {
  check_arg(grad_output.rows() == batch_ && grad_output.cols() == out_channels_,
            "GroupAll backward shape mismatch");
  nn::Tensor rows_grad(batch_ * num_points_, out_channels_);
  for (std::size_t b = 0; b < batch_; ++b) {
    const float* src = grad_output.row(b);
    for (std::size_t c = 0; c < out_channels_; ++c) {
      rows_grad.at(argmax_[b * out_channels_ + c], c) += src[c];
    }
  }
  const nn::Tensor rows_in_grad = mlp_->backward(rows_grad);
  nn::Tensor grad_in(batch_ * num_points_, in_channels_);
  for (std::size_t r = 0; r < grad_in.rows(); ++r) {
    const float* g = rows_in_grad.row(r);
    float* dst = grad_in.row(r);
    for (std::size_t c = 0; c < in_channels_; ++c) dst[c] = g[3 + c];
  }
  return grad_in;
}

std::vector<nn::Parameter*> GroupAll::parameters() { return mlp_->parameters(); }

std::vector<nn::Parameter*> GroupAll::buffers() { return mlp_->buffers(); }

}  // namespace gp
