// Generic minibatch trainer for PointCloudClassifier models.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "exec/exec.hpp"
#include "gesidnet/model_api.hpp"
#include "nn/optimizer.hpp"

namespace gp {

/// A featurized dataset slice with integer labels.
struct LabeledSamples {
  std::vector<FeaturizedSample> samples;
  std::vector<int> labels;

  std::size_t size() const { return samples.size(); }
  void push(FeaturizedSample sample, int label) {
    samples.push_back(std::move(sample));
    labels.push_back(label);
  }
};

struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  double lr = 1e-3;
  double lr_decay = 0.95;      ///< multiplicative, per epoch
  double weight_decay = 1e-4;
  std::uint64_t seed = 1;
  bool verbose = false;
  /// Optimise only head_parameters() via train_step_head_only (frozen-trunk
  /// fine-tune for gp::enroll); default trains the full model.
  bool head_only = false;
};

struct TrainStats {
  std::vector<double> epoch_loss;
  double train_accuracy = 0.0;
};

/// Trains in place with Adam; returns per-epoch losses. The minibatch
/// forward/backward runs data-parallel on `ctx`: batched activations are
/// sample-major (row b*N+i belongs to sample b), so the row-panel matmul
/// kernels split every layer across the minibatch, and weight-gradient
/// accumulation keeps the serial summation order — losses are
/// bitwise-identical for any thread count.
TrainStats train_classifier(PointCloudClassifier& model, const LabeledSamples& data,
                            const TrainConfig& config,
                            exec::ExecContext& ctx = exec::ExecContext::global());

/// Batched inference over a sample list; rows align with `samples`.
/// When the model supports clone(), batches are distributed across
/// per-thread replicas (batch slicing is fixed by `batch_size`, so logits
/// match the serial path exactly); otherwise inference runs serially with
/// the layer kernels parallelised on `ctx`.
nn::Tensor predict_logits(PointCloudClassifier& model,
                          const std::vector<FeaturizedSample>& samples,
                          std::size_t batch_size = 64,
                          exec::ExecContext& ctx = exec::ExecContext::global());

/// Span variant (contiguous storage from any container).
nn::Tensor predict_logits(PointCloudClassifier& model, std::span<const FeaturizedSample> samples,
                          std::size_t batch_size = 64,
                          exec::ExecContext& ctx = exec::ExecContext::global());

/// Buffer-reusing variant: identical logits written into `out` (resized to
/// samples × classes). The serving flush path calls this with a recycled
/// tensor so repeated batches stop reallocating the result.
void predict_logits_into(PointCloudClassifier& model, std::span<const FeaturizedSample> samples,
                         nn::Tensor& out, std::size_t batch_size = 64,
                         exec::ExecContext& ctx = exec::ExecContext::global());

/// Argmax labels from logits.
std::vector<int> argmax_labels(const nn::Tensor& logits);

}  // namespace gp
