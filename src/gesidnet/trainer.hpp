// Generic minibatch trainer for PointCloudClassifier models.
#pragma once

#include <cstdint>
#include <vector>

#include "gesidnet/model_api.hpp"
#include "nn/optimizer.hpp"

namespace gp {

/// A featurized dataset slice with integer labels.
struct LabeledSamples {
  std::vector<FeaturizedSample> samples;
  std::vector<int> labels;

  std::size_t size() const { return samples.size(); }
  void push(FeaturizedSample sample, int label) {
    samples.push_back(std::move(sample));
    labels.push_back(label);
  }
};

struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  double lr = 1e-3;
  double lr_decay = 0.95;      ///< multiplicative, per epoch
  double weight_decay = 1e-4;
  std::uint64_t seed = 1;
  bool verbose = false;
};

struct TrainStats {
  std::vector<double> epoch_loss;
  double train_accuracy = 0.0;
};

/// Trains in place with Adam; returns per-epoch losses.
TrainStats train_classifier(PointCloudClassifier& model, const LabeledSamples& data,
                            const TrainConfig& config);

/// Batched inference over a sample list; rows align with `samples`.
nn::Tensor predict_logits(PointCloudClassifier& model,
                          const std::vector<FeaturizedSample>& samples,
                          std::size_t batch_size = 64);

/// Argmax labels from logits.
std::vector<int> argmax_labels(const nn::Tensor& logits);

}  // namespace gp
