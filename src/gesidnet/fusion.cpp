#include "gesidnet/fusion.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gp {

AttentionFusion::AttentionFusion(std::size_t channels, Rng& rng, const std::string& name)
    : channels_(channels) {
  check_arg(channels > 0, "fusion channels must be positive");
  gate_weight_.name = name + ".gate.weight";
  gate_weight_.value = nn::Tensor(1, channels);
  gate_weight_.value.randn(rng, std::sqrt(1.0 / static_cast<double>(channels)));
  gate_weight_.grad = nn::Tensor(1, channels);
  gate_bias_.name = name + ".gate.bias";
  gate_bias_.value = nn::Tensor(1, 1);
  gate_bias_.grad = nn::Tensor(1, 1);
}

nn::Tensor AttentionFusion::forward(const nn::Tensor& resized, const nn::Tensor& native) {
  check_arg(resized.rows() == native.rows() && resized.cols() == channels_ &&
                native.cols() == channels_,
            "fusion input shape mismatch");
  resized_ = resized;
  native_ = native;
  s_resized_.assign(resized.rows(), 0.0);

  nn::Tensor out(resized.rows(), channels_);
  const float* w = gate_weight_.value.row(0);
  const double bias = gate_bias_.value.at(0, 0);
  for (std::size_t i = 0; i < resized.rows(); ++i) {
    double a1 = bias;
    double a2 = bias;
    const float* r = resized.row(i);
    const float* n = native.row(i);
    for (std::size_t c = 0; c < channels_; ++c) {
      a1 += w[c] * r[c];
      a2 += w[c] * n[c];
    }
    // Two-way softmax, computed stably.
    const double s1 = 1.0 / (1.0 + std::exp(a2 - a1));
    s_resized_[i] = s1;
    const double s2 = 1.0 - s1;
    float* o = out.row(i);
    for (std::size_t c = 0; c < channels_; ++c) {
      o[c] = static_cast<float>(s1 * r[c] + s2 * n[c]);
    }
  }
  return out;
}

AttentionFusion::Grads AttentionFusion::backward(const nn::Tensor& grad_output) {
  check_arg(grad_output.rows() == resized_.rows() && grad_output.cols() == channels_,
            "fusion backward shape mismatch");

  Grads grads;
  grads.resized = nn::Tensor(resized_.rows(), channels_);
  grads.native = nn::Tensor(resized_.rows(), channels_);
  const float* w = gate_weight_.value.row(0);

  for (std::size_t i = 0; i < grad_output.rows(); ++i) {
    const double s1 = s_resized_[i];
    const double s2 = 1.0 - s1;
    const float* g = grad_output.row(i);
    const float* r = resized_.row(i);
    const float* n = native_.row(i);

    // dL/da1 = s1*s2 * (F_resized - F_native) . g ; dL/da2 = -dL/da1.
    double dot = 0.0;
    for (std::size_t c = 0; c < channels_; ++c) dot += (r[c] - n[c]) * g[c];
    const double da1 = s1 * s2 * dot;

    float* gr = grads.resized.row(i);
    float* gn = grads.native.row(i);
    for (std::size_t c = 0; c < channels_; ++c) {
      // Direct paths plus the gate path (a1 depends on resized, a2 on native).
      gr[c] = static_cast<float>(s1 * g[c] + da1 * w[c]);
      gn[c] = static_cast<float>(s2 * g[c] - da1 * w[c]);
      gate_weight_.grad.at(0, c) += static_cast<float>(da1 * r[c] - da1 * n[c]);
    }
    // d(a1)/d(bias) = d(a2)/d(bias) = 1, and dL/da2 = -dL/da1, so the bias
    // gradient cancels exactly; kept explicit for clarity.
    gate_bias_.grad.at(0, 0) += static_cast<float>(da1 - da1);
  }
  return grads;
}

std::vector<nn::Parameter*> AttentionFusion::parameters() {
  return {&gate_weight_, &gate_bias_};
}

double AttentionFusion::mean_resized_weight() const {
  if (s_resized_.empty()) return 0.5;
  double acc = 0.0;
  for (double s : s_resized_) acc += s;
  return acc / static_cast<double>(s_resized_.size());
}

}  // namespace gp
