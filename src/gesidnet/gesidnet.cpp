#include "gesidnet/gesidnet.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp {

GesIDNet::GesIDNet(GesIDNetConfig config, Rng& rng) : config_(std::move(config)) {
  check_arg(config_.num_classes >= 2, "GesIDNet needs >= 2 classes");

  sa1_ = std::make_unique<SetAbstraction>(config_.sa1_centroids, config_.in_channels,
                                          config_.sa1_scales, rng, "sa1");
  sa2_ = std::make_unique<SetAbstraction>(config_.sa2_centroids, sa1_->out_channels(),
                                          config_.sa2_scales, rng, "sa2");
  level1_ = std::make_unique<GroupAll>(sa1_->out_channels(), config_.level1_mlp, rng, "level1");
  level2_ = std::make_unique<GroupAll>(sa2_->out_channels(), config_.level2_mlp, rng, "level2");

  const std::size_t c1 = level1_->out_channels();
  const std::size_t c2 = level2_->out_channels();

  // Resizing blocks and fusion gates only exist when the fusion module is
  // enabled (the Fig. 14 ablation removes them entirely).
  if (config_.enable_fusion) {
    resize_2to1_ = std::make_unique<nn::Sequential>();
    resize_2to1_->emplace<nn::Linear>(c2, c1, rng, "rb2to1");
    resize_2to1_->emplace<nn::ReLU>();
    resize_1to2_ = std::make_unique<nn::Sequential>();
    resize_1to2_->emplace<nn::Linear>(c1, c2, rng, "rb1to2");
    resize_1to2_->emplace<nn::ReLU>();
    fusion1_ = std::make_unique<AttentionFusion>(c1, rng, "fusion1");
    fusion2_ = std::make_unique<AttentionFusion>(c2, rng, "fusion2");
  }

  // Primary head (level 1): a couple of FC layers; auxiliary head (level 2):
  // one hidden FC, per "the number of FC layers depends on the level".
  head1_ = std::make_unique<nn::Sequential>();
  head1_->emplace<nn::Linear>(c1, config_.head1_hidden, rng, "head1.fc0");
  head1_->emplace<nn::ReLU>();
  head1_->emplace<nn::Dropout>(config_.dropout, rng);
  head1_->emplace<nn::Linear>(config_.head1_hidden, config_.num_classes, rng, "head1.fc1");

  head2_ = std::make_unique<nn::Sequential>();
  head2_->emplace<nn::Linear>(c2, config_.head2_hidden, rng, "head2.fc0");
  head2_->emplace<nn::ReLU>();
  head2_->emplace<nn::Linear>(config_.head2_hidden, config_.num_classes, rng, "head2.fc1");
}

GesIDNet::ForwardOut GesIDNet::forward_internal(const BatchedCloud& batch, bool training) {
  GP_SPAN("gesidnet.fwd");
  {
    GP_SPAN("gesidnet.sa.fwd");
    sa1_out_ = sa1_->forward(batch, training);
  }
  BatchedCloud sa2_out;
  {
    GP_SPAN("gesidnet.sa.fwd");
    sa2_out = sa2_->forward(sa1_out_, training);
  }

  {
    GP_SPAN("gesidnet.level.fwd");
    f1_ = level1_->forward(sa1_out_, training);
    f2_ = level2_->forward(sa2_out, training);
  }

  nn::Tensor y1;
  nn::Tensor y2;
  if (config_.enable_fusion) {
    GP_SPAN("gesidnet.fusion.fwd");
    const nn::Tensor r21 = resize_2to1_->forward(f2_, training);
    const nn::Tensor r12 = resize_1to2_->forward(f1_, training);
    y1 = fusion1_->forward(r21, f1_);
    y2 = fusion2_->forward(r12, f2_);
  } else {
    y1 = f1_;
    y2 = f2_;
  }

  ForwardOut out;
  {
    GP_SPAN("gesidnet.head.fwd");
    out.logits1 = head1_->forward(y1, training);
    out.logits2 = head2_->forward(y2, training);
  }
  return out;
}

void GesIDNet::backward_internal(const nn::Tensor& dlogits1, const nn::Tensor& dlogits2) {
  GP_SPAN("gesidnet.bwd");
  nn::Tensor dy1;
  nn::Tensor dy2;
  {
    GP_SPAN("gesidnet.head.bwd");
    dy1 = head1_->backward(dlogits1);
    dy2 = head2_->backward(dlogits2);
  }

  nn::Tensor df1;
  nn::Tensor df2;
  if (config_.enable_fusion) {
    GP_SPAN("gesidnet.fusion.bwd");
    auto g1 = fusion1_->backward(dy1);   // {d r21, d f1 (native)}
    auto g2 = fusion2_->backward(dy2);   // {d r12, d f2 (native)}
    const nn::Tensor df2_via_rb = resize_2to1_->backward(g1.resized);
    const nn::Tensor df1_via_rb = resize_1to2_->backward(g2.resized);
    df1 = g1.native;
    df1 += df1_via_rb;
    df2 = g2.native;
    df2 += df2_via_rb;
  } else {
    df1 = dy1;
    df2 = dy2;
  }

  // Level heads back into the set-abstraction stack. SA1's output feeds
  // both level1_ and sa2_, so its gradient is the sum of both paths.
  GP_SPAN("gesidnet.sa.bwd");
  const nn::Tensor d_sa2_features = level2_->backward(df2);
  nn::Tensor d_sa1_features = sa2_->backward(d_sa2_features);
  d_sa1_features += level1_->backward(df1);
  (void)sa1_->backward(d_sa1_features);  // input grads unused (leaf data)
}

nn::Tensor GesIDNet::infer(const BatchedCloud& batch) {
  GP_SPAN("gesidnet.infer");
  GP_COUNTER_ADD("gp.gesidnet.infer_batches", 1);
  GP_COUNTER_ADD("gp.gesidnet.infer_samples", batch.batch);
  return forward_internal(batch, /*training=*/false).logits1;
}

double GesIDNet::train_step(const BatchedCloud& batch, const std::vector<int>& labels) {
  check(!fused_, "train_step on a fused (inference-only) GesIDNet");
  const ForwardOut out = forward_internal(batch, /*training=*/true);
  const nn::LossResult primary = nn::softmax_cross_entropy(out.logits1, labels, 1.0);
  const nn::LossResult auxiliary =
      nn::softmax_cross_entropy(out.logits2, labels, config_.aux_loss_weight);
  backward_internal(primary.grad, auxiliary.grad);
  return primary.loss + auxiliary.loss;
}

double GesIDNet::train_step_head_only(const BatchedCloud& batch, const std::vector<int>& labels) {
  check(!fused_, "train_step_head_only on a fused (inference-only) GesIDNet");
  GP_SPAN("gesidnet.fwd");
  // Trunk in inference mode: set-abstraction/level batch-norms neither
  // normalise by batch statistics nor update their running stats, so a
  // fine-tuned model's trunk forward is bit-identical to the base model's.
  sa1_out_ = sa1_->forward(batch, /*training=*/false);
  const BatchedCloud sa2_out = sa2_->forward(sa1_out_, /*training=*/false);
  f1_ = level1_->forward(sa1_out_, /*training=*/false);
  f2_ = level2_->forward(sa2_out, /*training=*/false);

  nn::Tensor y1;
  nn::Tensor y2;
  if (config_.enable_fusion) {
    const nn::Tensor r21 = resize_2to1_->forward(f2_, /*training=*/false);
    const nn::Tensor r12 = resize_1to2_->forward(f1_, /*training=*/false);
    y1 = fusion1_->forward(r21, f1_);
    y2 = fusion2_->forward(r12, f2_);
  } else {
    y1 = f1_;
    y2 = f2_;
  }

  // Only the heads train: dropout stays active where learning happens.
  const nn::Tensor logits1 = head1_->forward(y1, /*training=*/true);
  const nn::Tensor logits2 = head2_->forward(y2, /*training=*/true);
  const nn::LossResult primary = nn::softmax_cross_entropy(logits1, labels, 1.0);
  const nn::LossResult auxiliary =
      nn::softmax_cross_entropy(logits2, labels, config_.aux_loss_weight);
  {
    GP_SPAN("gesidnet.head.bwd");
    (void)head1_->backward(primary.grad);    // trunk frozen: input grads unused
    (void)head2_->backward(auxiliary.grad);
  }
  return primary.loss + auxiliary.loss;
}

std::vector<nn::Parameter*> GesIDNet::head_parameters() {
  std::vector<nn::Parameter*> out = head1_->parameters();
  const auto extra = head2_->parameters();
  out.insert(out.end(), extra.begin(), extra.end());
  return out;
}

std::unique_ptr<GesIDNet> GesIDNet::widen_head(std::size_t new_classes, std::uint64_t seed) {
  check(!fused_, "widen_head on a fused (inference-only) GesIDNet");
  check_arg(new_classes > config_.num_classes, "widen_head must grow the class count");

  GesIDNetConfig config = config_;
  config.num_classes = new_classes;
  // Same ownership pattern as clone(): the widened model carries its own Rng
  // so its Dropout layers have a live stream when it is trained later. The
  // seed also determines the fresh init of the added class rows.
  auto rng = std::make_unique<Rng>(seed, 0xA02BDBF7BB3C0A7EULL);
  auto copy = std::make_unique<GesIDNet>(std::move(config), *rng);
  copy->owned_rng_ = std::move(rng);

  const auto src_params = parameters();
  const auto dst_params = copy->parameters();
  check(src_params.size() == dst_params.size(), "widen_head parameter list mismatch");
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    const nn::Parameter& src = *src_params[i];
    nn::Parameter& dst = *dst_params[i];
    if (src.value.rows() == dst.value.rows() && src.value.cols() == dst.value.cols()) {
      dst.value = src.value;
      continue;
    }
    // Only the final head Linears change shape: weight (classes x in) gains
    // rows, bias (1 x classes) gains columns. Copy the overlap — existing
    // users keep their exact decision boundaries — and leave the new class
    // rows at their fresh seeded init.
    check(dst.value.rows() >= src.value.rows() && dst.value.cols() >= src.value.cols(),
          "widen_head parameter shapes must grow");
    for (std::size_t r = 0; r < src.value.rows(); ++r) {
      for (std::size_t c = 0; c < src.value.cols(); ++c) {
        dst.value.at(r, c) = src.value.at(r, c);
      }
    }
  }

  const auto src_buffers = buffers();
  const auto dst_buffers = copy->buffers();
  check(src_buffers.size() == dst_buffers.size(), "widen_head buffer list mismatch");
  for (std::size_t i = 0; i < src_buffers.size(); ++i) {
    dst_buffers[i]->value = src_buffers[i]->value;  // trunk BN stats: identical shapes
  }
  return copy;
}

void GesIDNet::fuse_for_inference(nn::QuantMode mode) {
  if (fused_) return;
  // Preloaded tables (stashed by deserialization) are consumed in the same
  // fixed component order collect_quant_tables emits; a cursor left
  // part-consumed or over-consumed means the stream disagreed with this
  // architecture, which is corruption — fail loudly, not silently.
  nn::QuantTableCursor cursor;
  nn::QuantTableCursor* preload = nullptr;
  if (mode == nn::QuantMode::kInt8 && !pending_quant_.empty()) {
    cursor.tables = &pending_quant_;
    preload = &cursor;
  }
  sa1_->fuse_inference(mode, preload);
  sa2_->fuse_inference(mode, preload);
  level1_->fuse_inference(mode, preload);
  level2_->fuse_inference(mode, preload);
  if (config_.enable_fusion) {
    resize_2to1_->fuse_inference(mode, preload);
    resize_1to2_->fuse_inference(mode, preload);
    // AttentionFusion holds raw gate parameters (no Linear/BN stack): its
    // forward is already a single pass, nothing to fold.
  }
  head1_->fuse_inference(mode, preload);
  head2_->fuse_inference(mode, preload);
  if (preload != nullptr) {
    check(cursor.next == pending_quant_.size(),
          "GesIDNet: quant table count does not match architecture");
  }
  pending_quant_.clear();
  pending_quant_.shrink_to_fit();
  fused_ = true;
  quant_ = mode;
}

std::vector<nn::QuantLinearTables> GesIDNet::collect_quant_tables() {
  check(!fused_, "collect_quant_tables on a fused model");
  std::vector<nn::QuantLinearTables> tables;
  sa1_->collect_quant_tables(tables);
  sa2_->collect_quant_tables(tables);
  level1_->collect_quant_tables(tables);
  level2_->collect_quant_tables(tables);
  if (config_.enable_fusion) {
    resize_2to1_->collect_quant_tables(tables);
    resize_1to2_->collect_quant_tables(tables);
  }
  head1_->collect_quant_tables(tables);
  head2_->collect_quant_tables(tables);
  return tables;
}

std::unique_ptr<PointCloudClassifier> GesIDNet::clone() {
  // A fused model no longer exposes its training parameters, so a deep copy
  // cannot be reconstructed; predict_logits falls back to its serial path.
  if (fused_) return nullptr;
  // Fresh instance with the same architecture; the init draws are thrown
  // away immediately when the source weights are copied over. The clone
  // carries its own Rng so its Dropout layers never share a stream with the
  // original (only relevant if a caller trains the clone).
  auto rng = std::make_unique<Rng>(0xC10E5EEDBEEFCAFEULL, 0xA02BDBF7BB3C0A7EULL);
  auto copy = std::make_unique<GesIDNet>(config_, *rng);
  copy->owned_rng_ = std::move(rng);

  const auto copy_state = [](std::vector<nn::Parameter*> src, std::vector<nn::Parameter*> dst) {
    check(src.size() == dst.size(), "clone parameter list mismatch");
    for (std::size_t i = 0; i < src.size(); ++i) {
      dst[i]->value = src[i]->value;
      dst[i]->grad = src[i]->grad;
    }
  };
  copy_state(parameters(), copy->parameters());
  copy_state(buffers(), copy->buffers());
  return copy;
}

std::vector<nn::Parameter*> GesIDNet::parameters() {
  std::vector<nn::Parameter*> out;
  const auto append = [&out](std::vector<nn::Parameter*> params) {
    out.insert(out.end(), params.begin(), params.end());
  };
  append(sa1_->parameters());
  append(sa2_->parameters());
  append(level1_->parameters());
  append(level2_->parameters());
  if (config_.enable_fusion) {
    append(resize_2to1_->parameters());
    append(resize_1to2_->parameters());
    append(fusion1_->parameters());
    append(fusion2_->parameters());
  }
  append(head1_->parameters());
  append(head2_->parameters());
  return out;
}

std::vector<nn::Parameter*> GesIDNet::buffers() {
  std::vector<nn::Parameter*> out;
  const auto append = [&out](std::vector<nn::Parameter*> buffers) {
    out.insert(out.end(), buffers.begin(), buffers.end());
  };
  append(sa1_->buffers());
  append(sa2_->buffers());
  append(level1_->buffers());
  append(level2_->buffers());
  // Resizing blocks, fusion gates and heads hold no batch-norm layers.
  return out;
}

GesIDNet::Features GesIDNet::extract_features(const BatchedCloud& batch) {
  Features features;
  const BatchedCloud sa1_out = sa1_->forward(batch, /*training=*/false);
  const BatchedCloud sa2_out = sa2_->forward(sa1_out, /*training=*/false);
  features.low = level1_->forward(sa1_out, /*training=*/false);
  features.high = level2_->forward(sa2_out, /*training=*/false);
  if (config_.enable_fusion) {
    const nn::Tensor r21 = resize_2to1_->forward(features.high, /*training=*/false);
    const nn::Tensor r12 = resize_1to2_->forward(features.low, /*training=*/false);
    features.fused_low = fusion1_->forward(r21, features.low);
    features.fused_high = fusion2_->forward(r12, features.high);
  } else {
    features.fused_low = features.low;
    features.fused_high = features.high;
  }
  return features;
}

}  // namespace gp
