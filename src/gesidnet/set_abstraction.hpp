// PointNet++-style multi-scale set abstraction (§IV-C).
//
// One block: farthest-point-sample n centroids; for each scale, ball-query
// up to m neighbours within radius d around each centroid, run a shared MLP
// over [local_xyz, point_features] rows, and max-pool per group. Per-scale
// outputs are concatenated ("multi-scale grouping"), matching the paper's
// description of combining local features f_i of different scales into f_s.
//
// Backward is exact: max-pool routes gradients to argmax rows, the MLP
// backpropagates them, and the feature part scatter-adds into the input
// cloud's feature gradient (positions are leaf inputs and need no grad).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gesidnet/batch.hpp"
#include "nn/layers.hpp"

namespace gp {

/// One grouping scale of a set-abstraction block.
struct ScaleSpec {
  double radius = 0.2;            ///< d_i: ball-query radius
  std::size_t group_size = 8;     ///< m_i: points per group (padded cyclically)
  std::vector<std::size_t> mlp;   ///< hidden widths of the shared MLP
};

class SetAbstraction {
 public:
  SetAbstraction(std::size_t num_centroids, std::size_t in_channels,
                 std::vector<ScaleSpec> scales, Rng& rng, const std::string& name);

  /// in: (B*N) rows; out: (B*num_centroids) rows with concatenated scales.
  BatchedCloud forward(const BatchedCloud& in, bool training);

  /// grad wrt out.features -> grad wrt in.features (same shape as input).
  nn::Tensor backward(const nn::Tensor& grad_out_features);

  std::vector<nn::Parameter*> parameters();
  std::vector<nn::Parameter*> buffers();
  std::size_t out_channels() const { return out_channels_; }
  std::size_t num_centroids() const { return num_centroids_; }

  /// Fuses every per-scale shared MLP for inference (nn/fused.hpp);
  /// irreversible, forward-only afterwards. Mode/cursor per nn/quant.hpp.
  void fuse_inference(nn::QuantMode mode = nn::QuantMode::kOff,
                      nn::QuantTableCursor* preload = nullptr) {
    for (auto& mlp : mlps_) mlp->fuse_inference(mode, preload);
  }

  /// Appends int8 tables for every per-scale MLP, in fuse order.
  void collect_quant_tables(std::vector<nn::QuantLinearTables>& out) {
    for (auto& mlp : mlps_) mlp->collect_quant_tables(out);
  }

 private:
  std::size_t num_centroids_;
  std::size_t in_channels_;
  std::vector<ScaleSpec> scales_;
  std::vector<std::unique_ptr<nn::Sequential>> mlps_;
  std::vector<std::size_t> scale_out_channels_;
  std::size_t out_channels_ = 0;

  // Forward caches (per scale).
  struct ScaleCache {
    std::vector<std::size_t> member;   ///< (B*n*m) input row index per slot
    std::vector<std::size_t> argmax;   ///< (B*n*C_scale) winning slot row
    std::size_t rows = 0;
  };
  std::vector<ScaleCache> caches_;
  std::size_t in_rows_ = 0;
  std::size_t batch_ = 0;
};

/// Global "group all" stage: per sample, concatenates [xyz, features] of
/// every point, applies a shared MLP and max-pools over the sample,
/// producing one level-feature vector per sample (the F^k of Eq. 2).
class GroupAll {
 public:
  GroupAll(std::size_t in_channels, std::vector<std::size_t> mlp, Rng& rng,
           const std::string& name);

  /// in: (B*N x C) -> out: (B x C_out).
  nn::Tensor forward(const BatchedCloud& in, bool training);
  /// grad (B x C_out) -> grad wrt in.features (B*N x C).
  nn::Tensor backward(const nn::Tensor& grad_output);

  std::vector<nn::Parameter*> parameters();
  std::vector<nn::Parameter*> buffers();
  std::size_t out_channels() const { return out_channels_; }

  /// Fuses the shared MLP for inference (nn/fused.hpp); irreversible.
  /// Mode/cursor per nn/quant.hpp.
  void fuse_inference(nn::QuantMode mode = nn::QuantMode::kOff,
                      nn::QuantTableCursor* preload = nullptr) {
    mlp_->fuse_inference(mode, preload);
  }

  /// Appends int8 tables for the shared MLP, in fuse order.
  void collect_quant_tables(std::vector<nn::QuantLinearTables>& out) {
    mlp_->collect_quant_tables(out);
  }

 private:
  std::size_t in_channels_;
  std::unique_ptr<nn::Sequential> mlp_;
  std::size_t out_channels_ = 0;
  std::vector<std::size_t> argmax_;
  std::size_t batch_ = 0;
  std::size_t num_points_ = 0;
};

}  // namespace gp
