// Attention-based multilevel feature fusion (Eq. 2–3 of the paper).
//
// At level k the resized other-level feature F^{l->k} and the native level
// feature F^k are blended:
//     Y^k = S(F^{l->k}) * F^{l->k} + S(F^k) * F^k
// where S(.) is a two-way softmax over scalar gates g(.) (a learned linear
// map, the 1x1-convolution of the paper applied to vector features). The
// gate network g is shared between the two inputs at a level, exactly as in
// Eq. 3 where the same g(.) scores both features.
#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace gp {

class AttentionFusion {
 public:
  AttentionFusion(std::size_t channels, Rng& rng, const std::string& name);

  /// resized: F^{l->k} (B x C); native: F^k (B x C). Returns Y^k (B x C).
  nn::Tensor forward(const nn::Tensor& resized, const nn::Tensor& native);

  struct Grads {
    nn::Tensor resized;  ///< dL/dF^{l->k}
    nn::Tensor native;   ///< dL/dF^k
  };
  Grads backward(const nn::Tensor& grad_output);

  std::vector<nn::Parameter*> parameters();

  /// Mean attention weight assigned to the resized feature (diagnostics).
  double mean_resized_weight() const;

 private:
  std::size_t channels_;
  nn::Parameter gate_weight_;  ///< (1 x C): g(F) = w . F + b
  nn::Parameter gate_bias_;    ///< (1 x 1)
  // Forward caches.
  nn::Tensor resized_;
  nn::Tensor native_;
  std::vector<double> s_resized_;  ///< per-row attention on the resized input
};

}  // namespace gp
