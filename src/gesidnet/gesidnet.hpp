// GesIDNet (Fig. 5): multi-scale set abstraction, two level features,
// attention-based multilevel fusion, and dual classification heads with an
// auxiliary loss. The identical architecture is trained twice — once with
// gesture labels (recognition) and once with user labels (identification).
#pragma once

#include <memory>

#include "gesidnet/fusion.hpp"
#include "gesidnet/model_api.hpp"
#include "gesidnet/set_abstraction.hpp"
#include "nn/loss.hpp"

namespace gp {

struct GesIDNetConfig {
  std::size_t num_classes = 2;
  std::size_t in_channels = 7;

  std::size_t sa1_centroids = 24;
  std::vector<ScaleSpec> sa1_scales{{0.18, 8, {16, 24}}, {0.40, 12, {24, 32}}};
  std::size_t sa2_centroids = 8;
  std::vector<ScaleSpec> sa2_scales{{0.35, 4, {32, 48}}, {0.70, 8, {48, 64}}};

  std::vector<std::size_t> level1_mlp{64, 96};    ///< group-all at level 1
  std::vector<std::size_t> level2_mlp{96, 128};   ///< group-all at level 2
  std::size_t head1_hidden = 48;
  std::size_t head2_hidden = 64;

  double aux_loss_weight = 0.5;  ///< weight of the level-2 auxiliary loss
  double dropout = 0.3;
  bool enable_fusion = true;     ///< ablation switch (Fig. 14)
};

class GesIDNet : public PointCloudClassifier {
 public:
  GesIDNet(GesIDNetConfig config, Rng& rng);

  nn::Tensor infer(const BatchedCloud& batch) override;
  double train_step(const BatchedCloud& batch, const std::vector<int>& labels) override;
  std::vector<nn::Parameter*> parameters() override;
  std::vector<nn::Parameter*> buffers() override;
  std::string name() const override { return "GesIDNet"; }
  /// Deep copy (weights + batch-norm statistics); enables the parallel
  /// inference path in predict_logits.
  std::unique_ptr<PointCloudClassifier> clone() override;

  /// Just the dual-head parameters — the subset a head-only fine-tune
  /// optimises (the PointNet++ trunk stays frozen).
  std::vector<nn::Parameter*> head_parameters() override;
  /// Head-only training step: the trunk runs in inference mode (batch-norm
  /// running stats frozen — that is the point of a head-only fine-tune),
  /// only head1_/head2_ see training mode and accumulate gradients.
  double train_step_head_only(const BatchedCloud& batch, const std::vector<int>& labels) override;
  /// Architecture-preserving head widening: returns a fresh model with
  /// `new_classes` outputs whose trunk and existing class rows are copied
  /// from this one; the added class rows keep their seed-derived init. The
  /// copy owns its Rng (clone() pattern), so it can be trained later.
  std::unique_ptr<GesIDNet> widen_head(std::size_t new_classes, std::uint64_t seed);

  /// Intermediate representations for the t-SNE study (Fig. 6).
  struct Features {
    nn::Tensor low;         ///< F^l1 (B x C1)
    nn::Tensor high;        ///< F^l2 (B x C2)
    nn::Tensor fused_low;   ///< Y^l1
    nn::Tensor fused_high;  ///< Y^l2
  };
  Features extract_features(const BatchedCloud& batch);

  /// Mean attention weight the level-1 fusion puts on the resized
  /// high-level feature (diagnostic for the fusion study).
  double fusion_low_weight() const {
    return fusion1_ != nullptr ? fusion1_->mean_resized_weight() : 0.0;
  }

  const GesIDNetConfig& config() const { return config_; }

  /// Irreversibly rewrites every MLP stack into its fused inference form
  /// (nn/fused.hpp): batch-norms folded into the linears, ReLU epilogues,
  /// dropout removed, weights transposed for the outer-product kernel.
  /// Afterwards the model is forward-only — train_step() throws, clone()
  /// returns nullptr, and parameters()/buffers() must not be serialized.
  /// gp::serve calls this on its private ModelSnapshot copies (the 2×
  /// serving-throughput win, DESIGN.md §8); never fuse a model you still
  /// need to train, save, or clone.
  /// With QuantMode::kInt8 every fused layer runs the symmetric int8 kernel
  /// (nn/quant.hpp), using tables stashed by set_pending_quant_tables when
  /// present (the .gpsy path) and quantizing the fresh BN fold otherwise —
  /// both yield bit-identical tables.
  void fuse_for_inference(nn::QuantMode mode = nn::QuantMode::kOff);
  bool fused() const { return fused_; }
  /// Quant mode the model was fused with (kOff before fusing).
  nn::QuantMode quant() const { return quant_; }

  /// Int8 tables for every fusable layer run, in fuse_for_inference order.
  /// Only valid on an unfused (serializable) model.
  std::vector<nn::QuantLinearTables> collect_quant_tables();

  /// Stashes deserialized tables for the next fuse_for_inference(kInt8);
  /// consumed (and shape-validated) at fuse time, ignored by a kOff fuse.
  void set_pending_quant_tables(std::vector<nn::QuantLinearTables> tables) {
    pending_quant_ = std::move(tables);
  }

 private:
  struct ForwardOut {
    nn::Tensor logits1;
    nn::Tensor logits2;
  };
  ForwardOut forward_internal(const BatchedCloud& batch, bool training);
  void backward_internal(const nn::Tensor& dlogits1, const nn::Tensor& dlogits2);

  GesIDNetConfig config_;
  bool fused_ = false;  ///< fuse_for_inference() ran; forward-only now
  nn::QuantMode quant_ = nn::QuantMode::kOff;  ///< mode the fuse ran with
  /// Tables stashed by deserialization, consumed at fuse time.
  std::vector<nn::QuantLinearTables> pending_quant_;
  /// Clones own their Rng (the primary model borrows the caller's); declared
  /// before the layers so it outlives the Dropout that points into it.
  std::unique_ptr<Rng> owned_rng_;
  std::unique_ptr<SetAbstraction> sa1_;
  std::unique_ptr<SetAbstraction> sa2_;
  std::unique_ptr<GroupAll> level1_;
  std::unique_ptr<GroupAll> level2_;
  std::unique_ptr<nn::Sequential> resize_2to1_;  ///< RB: C2 -> C1
  std::unique_ptr<nn::Sequential> resize_1to2_;  ///< RB: C1 -> C2
  std::unique_ptr<AttentionFusion> fusion1_;
  std::unique_ptr<AttentionFusion> fusion2_;
  std::unique_ptr<nn::Sequential> head1_;
  std::unique_ptr<nn::Sequential> head2_;

  // Forward caches (shapes needed by backward_internal).
  nn::Tensor f1_;
  nn::Tensor f2_;
  BatchedCloud sa1_out_;
};

}  // namespace gp
