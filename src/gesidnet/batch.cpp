#include "gesidnet/batch.hpp"

#include "common/error.hpp"

namespace gp {

void make_batch(const std::vector<const FeaturizedSample*>& samples, BatchedCloud& out) {
  check_arg(!samples.empty(), "make_batch of empty sample list");
  const std::size_t n = samples.front()->num_points;
  const std::size_t dims = samples.front()->dims;

  out.batch = samples.size();
  out.num_points = n;
  out.positions.resize(out.batch * n, 3);
  out.features.resize(out.batch * n, dims);

  for (std::size_t b = 0; b < samples.size(); ++b) {
    const FeaturizedSample& s = *samples[b];
    check_arg(s.num_points == n && s.dims == dims, "inhomogeneous batch");
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < 3; ++c) {
        out.positions.at(b * n + i, c) = s.positions[i * 3 + c];
      }
      for (std::size_t c = 0; c < dims; ++c) {
        out.features.at(b * n + i, c) = s.features[i * dims + c];
      }
    }
  }
}

BatchedCloud make_batch(const std::vector<const FeaturizedSample*>& samples) {
  BatchedCloud out;
  make_batch(samples, out);
  return out;
}

void make_batch(const std::vector<FeaturizedSample>& samples, std::size_t begin,
                std::size_t count, BatchedCloud& out) {
  make_batch(std::span<const FeaturizedSample>(samples), begin, count, out);
}

void make_batch(std::span<const FeaturizedSample> samples, std::size_t begin, std::size_t count,
                BatchedCloud& out) {
  check_arg(begin + count <= samples.size(), "batch slice out of range");
  check_arg(count > 0, "make_batch of empty sample list");
  const std::size_t n = samples[begin].num_points;
  const std::size_t dims = samples[begin].dims;

  out.batch = count;
  out.num_points = n;
  out.positions.resize(count * n, 3);
  out.features.resize(count * n, dims);

  for (std::size_t b = 0; b < count; ++b) {
    const FeaturizedSample& s = samples[begin + b];
    check_arg(s.num_points == n && s.dims == dims, "inhomogeneous batch");
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < 3; ++c) {
        out.positions.at(b * n + i, c) = s.positions[i * 3 + c];
      }
      for (std::size_t c = 0; c < dims; ++c) {
        out.features.at(b * n + i, c) = s.features[i * dims + c];
      }
    }
  }
}

BatchedCloud make_batch(const std::vector<FeaturizedSample>& samples, std::size_t begin,
                        std::size_t count) {
  BatchedCloud out;
  make_batch(samples, begin, count, out);
  return out;
}

}  // namespace gp
