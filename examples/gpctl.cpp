// gpctl — command-line front end for the GesturePrint library.
//
//   gpctl generate <dataset> <out.gpds> [--users N] [--reps N]
//       regenerate one of the four catalogue datasets and cache it
//   gpctl train <in.gpds> <model.bin> [--epochs N] [--parallel]
//       train recognition + identification models on a cached dataset
//   gpctl eval <in.gpds> <model.bin> [--parallel]
//       evaluate a trained system on a cached dataset (held-out 20%)
//   gpctl crossval <in.gpds> [--folds K] [--epochs N]
//       k-fold cross-validation (the paper's 5-fold protocol)
//   gpctl info <in.gpds>
//       print dataset statistics
//   gpctl top [--rounds N] [--sessions N]
//       live health dashboard: drives a synthetic serve load in-process and
//       redraws verdict/SLIs/exemplar from Server::health_snapshot() each
//       round (honours GP_SLO, GP_FLIGHTREC, GP_SERVE_*, GP_FAULTS)
//   gpctl enroll [--rounds N] [--sessions N]
//       live enrollment view (gp::enroll, DESIGN.md §13): streams enrolled
//       performers plus one unknown newcomer through a serve stack with the
//       EnrollmentService armed, and redraws candidate buffers, fine-tunes
//       in flight and the last published model version each round (honours
//       GP_ENROLL_K, GP_ENROLL_MAX_CANDIDATES, GP_ENROLL_BACKGROUND)
//
// Dataset names: gestureprint-office, gestureprint-meeting, pantomime-office,
// pantomime-open, mhomeges, mtranssee.
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "common/table.hpp"
#include "datasets/cache.hpp"
#include "datasets/catalog.hpp"
#include "enroll/enroll.hpp"
#include "eval/splits.hpp"
#include "serve/server.hpp"
#include "system/cross_validate.hpp"
#include "system/gestureprint.hpp"

namespace {

using namespace gp;

int usage() {
  std::cerr << "usage: gpctl generate|train|eval|crossval|info|top|enroll ... "
               "(see header comment)\n";
  return 2;
}

// Minimal flag parsing: --key value pairs after the positional arguments.
std::map<std::string, std::string> parse_flags(int argc, char** argv, int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    flags[argv[i] + 2] = argv[i + 1];
  }
  // Boolean flags (no value).
  for (int i = first; i < argc; ++i) {
    if (std::string(argv[i]) == "--parallel") flags["parallel"] = "1";
  }
  return flags;
}

DatasetSpec spec_by_name(const std::string& name, const DatasetScale& scale) {
  if (name == "gestureprint-office") return gestureprint_spec(0, scale);
  if (name == "gestureprint-meeting") return gestureprint_spec(1, scale);
  if (name == "pantomime-office") return pantomime_spec(0, scale);
  if (name == "pantomime-open") return pantomime_spec(1, scale);
  if (name == "mhomeges") return mhomeges_spec({1.2}, scale);
  if (name == "mtranssee") return mtranssee_spec({1.2}, scale);
  throw InvalidArgument("unknown dataset name: " + name);
}

Split default_split(const Dataset& dataset) {
  Rng rng(20240704, 1);
  std::vector<int> strata;
  const int num_users = static_cast<int>(dataset.num_users());
  for (const auto& s : dataset.samples) strata.push_back(s.gesture * num_users + s.user);
  return stratified_split(strata, 0.2, rng);
}

GesturePrintConfig config_from_flags(const std::map<std::string, std::string>& flags) {
  GesturePrintConfig config;
  config.training.epochs = flags.count("epochs") ? std::stoul(flags.at("epochs")) : 8;
  config.prep.augmentation.copies = 2;
  if (flags.count("parallel")) config.mode = IdentificationMode::kParallel;
  return config;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto flags = parse_flags(argc, argv, 4);
  DatasetScale scale;
  scale.max_users = flags.count("users") ? std::stoul(flags.at("users")) : 8;
  scale.reps = flags.count("reps") ? std::stoul(flags.at("reps")) : 10;
  const DatasetSpec spec = spec_by_name(argv[2], scale);
  std::cout << "generating '" << spec.name << "' (" << spec.num_users << " users, "
            << spec.gestures.size() << " gestures, " << spec.reps_per_gesture << " reps)...\n";
  const Dataset dataset = generate_dataset(spec);
  save_dataset(argv[3], dataset);
  std::cout << dataset.samples.size() << " samples -> " << argv[3] << "\n";
  return 0;
}

int cmd_train(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto dataset = load_dataset(argv[2]);
  if (!dataset) {
    std::cerr << "cannot load dataset " << argv[2] << "\n";
    return 1;
  }
  const auto flags = parse_flags(argc, argv, 4);
  GesturePrintSystem system(config_from_flags(flags));
  const Split split = default_split(*dataset);
  std::cout << "training on " << split.train.size() << " samples ("
            << dataset->num_gestures() << " gestures, " << dataset->num_users()
            << " users)...\n";
  system.fit(*dataset, split.train);
  system.save(argv[3]);
  const SystemEvaluation eval = system.evaluate(*dataset, split.test);
  std::cout << "held-out: GRA=" << Table::pct(eval.gra) << " UIA=" << Table::pct(eval.uia)
            << "\nmodel -> " << argv[3] << "\n";
  return 0;
}

int cmd_eval(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto dataset = load_dataset(argv[2]);
  if (!dataset) {
    std::cerr << "cannot load dataset " << argv[2] << "\n";
    return 1;
  }
  const auto flags = parse_flags(argc, argv, 4);
  GesturePrintSystem system(config_from_flags(flags));
  system.load(argv[3]);
  const Split split = default_split(*dataset);
  const SystemEvaluation eval = system.evaluate(*dataset, split.test);
  Table table({"metric", "value"});
  table.add_row({"GRA", Table::pct(eval.gra)});
  table.add_row({"GRF1", Table::num(eval.grf1, 4)});
  table.add_row({"GRAUC", Table::num(eval.grauc, 4)});
  table.add_row({"UIA", Table::pct(eval.uia)});
  table.add_row({"UIF1", Table::num(eval.uif1, 4)});
  table.add_row({"UIAUC", Table::num(eval.uiauc, 4)});
  table.add_row({"EER", Table::pct(eval.user_roc.eer())});
  table.print();
  return 0;
}

int cmd_crossval(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto dataset = load_dataset(argv[2]);
  if (!dataset) {
    std::cerr << "cannot load dataset " << argv[2] << "\n";
    return 1;
  }
  const auto flags = parse_flags(argc, argv, 3);
  const std::size_t k = flags.count("folds") ? std::stoul(flags.at("folds")) : 5;
  std::cout << k << "-fold cross-validation...\n";
  const CrossValidationResult cv = cross_validate(*dataset, config_from_flags(flags), k);
  std::cout << "GRA " << Table::pct(cv.mean_gra) << " +/- " << Table::pct(cv.std_gra)
            << "\nUIA " << Table::pct(cv.mean_uia) << " +/- " << Table::pct(cv.std_uia)
            << "\nmean EER " << Table::pct(cv.mean_eer) << "\n";
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto dataset = load_dataset(argv[2]);
  if (!dataset) {
    std::cerr << "cannot load dataset " << argv[2] << "\n";
    return 1;
  }
  double total_points = 0.0;
  double total_frames = 0.0;
  for (const auto& s : dataset->samples) {
    total_points += static_cast<double>(s.cloud.points.size());
    total_frames += static_cast<double>(s.active_frames);
  }
  const double n = std::max<double>(1.0, static_cast<double>(dataset->samples.size()));
  Table table({"property", "value"});
  table.add_row({"name", dataset->spec.name});
  table.add_row({"samples", std::to_string(dataset->samples.size())});
  table.add_row({"gestures", std::to_string(dataset->num_gestures())});
  table.add_row({"users", std::to_string(dataset->num_users())});
  table.add_row({"mean points/sample", Table::num(total_points / n, 1)});
  table.add_row({"mean duration (s)", Table::num(0.1 * total_frames / n, 2)});
  table.print();
  return 0;
}

// ------------------------------------------------------------------- top

/// One dashboard frame rendered from a health snapshot. On a tty the screen
/// is cleared first so successive frames redraw in place.
void draw_dashboard(const health::HealthSnapshot& h, std::uint64_t model_version,
                    std::size_t sessions, std::size_t round, std::size_t rounds) {
  if (::isatty(1) != 0) std::cout << "\033[2J\033[H";
  std::cout << "gpctl top — round " << round << "/" << rounds << ", " << sessions
            << " sessions, model v" << model_version << ", tick " << h.ticks_closed << "\n";
  std::cout << "verdict: " << health::verdict_name(h.verdict);
  if (h.has_slo) {
    std::cout << "  (slo \"" << h.slo_spec << "\", breach streak " << h.breach_streak
              << ", ok streak " << h.ok_streak << ", flips " << h.verdict_flips << ")";
  } else {
    std::cout << "  (no GP_SLO configured)";
  }
  std::cout << "\n\n";

  Table table({"window", "ticks", "results", "p50 ms", "p99 ms", "shed", "abstain",
               "occupancy"});
  auto add_window = [&](const health::WindowStats& w) {
    table.add_row({w.label, std::to_string(w.ticks), std::to_string(w.results),
                   Table::num(w.p50_ms, 3), Table::num(w.p99_ms, 3),
                   Table::pct(w.shed_rate), Table::pct(w.abstain_rate),
                   Table::pct(w.batch_occupancy)});
  };
  add_window(h.slo_window);
  for (const health::WindowStats& w : h.wall_windows) add_window(w);
  table.print();

  if (h.has_exemplar) {
    const health::RequestSample& s = h.exemplar.sample;
    std::cout << "\nslowest request: session " << s.session_id << " seg " << s.ordinal
              << ", " << s.total_us << " us total, slowest stage "
              << health::stage_name(s.slowest_stage()) << " (tick " << h.exemplar.tick
              << ")\n";
  }
  std::cout << "flight recorder: " << h.flightrec_events << " events\n";
  std::cout.flush();
}

/// Live text dashboard over a synthetic serve load. Everything runs in this
/// process: train a small model, stream `--sessions` interleaved clients,
/// and redraw the health snapshot `--rounds` times over the stream.
int cmd_top(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv, 2);
  const std::size_t rounds = flags.count("rounds") ? std::stoul(flags.at("rounds")) : 6;
  const std::size_t sessions = flags.count("sessions") ? std::stoul(flags.at("sessions")) : 6;

  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 6;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(5);
  std::cout << "training a demo model (" << spec.num_users << " users x "
            << spec.gestures.size() << " gestures)...\n";
  const Dataset dataset = generate_dataset(spec);
  GesturePrintConfig config;
  config.training.epochs = 4;
  config.prep.augmentation.copies = 1;
  config.abstain_margin = 0.10;
  Rng split_rng(3, 1);

  serve::ModelRegistry registry(config);
  {
    auto system = std::make_unique<GesturePrintSystem>(config);
    system->fit(dataset, stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);
    registry.publish(std::move(system));
  }

  serve::ServeConfig serve_config = serve::ServeConfig::from_env();
  serve_config.system = config;
  serve::Server server(serve_config, registry);

  const std::vector<int> script{0, 3, 1, 4, 2, 0};
  std::vector<ContinuousRecording> streams;
  std::size_t max_frames = 0;
  for (std::size_t s = 0; s < sessions; ++s) {
    streams.push_back(generate_recording(spec, s % spec.num_users, script, 0x709 + s));
    max_frames = std::max(max_frames, streams.back().frames.size());
  }

  const std::size_t frames_per_round = std::max<std::size_t>(1, max_frames / rounds);
  std::size_t round = 0;
  for (std::size_t f = 0; f < max_frames; ++f) {
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (f >= streams[s].frames.size()) continue;
      (void)server.push_frame(s + 1, streams[s].frames[f]);
    }
    (void)server.pump();
    if ((f + 1) % frames_per_round == 0 && round < rounds) {
      ++round;
      draw_dashboard(server.health_snapshot(), registry.version(), streams.size(), round,
                     rounds);
    }
  }
  (void)server.drain();
  draw_dashboard(server.health_snapshot(), registry.version(), streams.size(), rounds,
                 rounds);
  return 0;
}

// ----------------------------------------------------------------- enroll

/// One enrollment-view frame: service stats, live candidate buffers, and the
/// publish audit trail. Redraws in place on a tty (like `top`).
void draw_enroll_view(const enroll::EnrollmentService& service, std::uint64_t model_version,
                      std::size_t round, std::size_t rounds) {
  if (::isatty(1) != 0) std::cout << "\033[2J\033[H";
  const enroll::EnrollmentService::Stats stats = service.stats();
  std::cout << "gpctl enroll — round " << round << "/" << rounds << ", serving model v"
            << model_version << " (last publish v" << stats.last_publish_version << ")\n";
  std::cout << "novelty rejections " << stats.novelty_rejections << ", fine-tunes "
            << stats.fine_tunes_started << " started / " << stats.fine_tunes_in_flight
            << " in flight / " << stats.fine_tunes_failed << " failed, users enrolled "
            << stats.users_enrolled << "\n";
  std::cout << "evicted: " << stats.evicted_segments << " segments, "
            << stats.evicted_candidates << " candidates\n\n";

  Table buffers({"candidate", "segments", "ever admitted", "need (K)"});
  for (const enroll::Candidate& c : service.buffer().candidates()) {
    buffers.add_row({std::to_string(c.id), std::to_string(c.segments.size()),
                     std::to_string(c.admitted),
                     std::to_string(service.config().admission.k_segments)});
  }
  if (service.buffer().candidates().empty()) {
    std::cout << "no live enrollment candidates\n";
  } else {
    buffers.print();
  }

  for (const enroll::EnrollmentService::EnrolledUser& u : service.enrolled()) {
    std::cout << "enrolled user " << u.user_id << " from candidate " << u.candidate_id
              << " at tick " << u.tick << " -> model v" << u.model_version << " ("
              << u.artifact << ")\n";
  }
  std::cout.flush();
}

/// Live enrollment dashboard over a synthetic open-set load: enrolled
/// performers plus one unknown newcomer stream in-process; the view redraws
/// as the newcomer's rejected segments buffer up, trigger the head-only
/// fine-tune, and hot-swap publish a widened model.
int cmd_enroll(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv, 2);
  const std::size_t rounds = flags.count("rounds") ? std::stoul(flags.at("rounds")) : 6;
  const std::size_t sessions = flags.count("sessions") ? std::stoul(flags.at("sessions")) : 3;

  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 8;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(3);
  std::cout << "training a demo model (" << spec.num_users << " users x "
            << spec.gestures.size() << " gestures)...\n";
  const Dataset dataset = generate_dataset(spec);
  GesturePrintConfig config;
  config.training.epochs = 6;
  config.training.batch_size = 16;
  config.prep.augmentation.copies = 2;
  Rng split_rng(3, 1);
  const Split split = stratified_split(dataset.gesture_labels(), 0.2, split_rng);

  const std::string model_path = output_dir() + "/gpctl_enroll_model.gpsy";
  {
    GesturePrintSystem system(config);
    system.fit(dataset, split.train);
    system.save(model_path);
  }
  serve::ModelRegistry registry(config);
  if (!registry.publish_file(model_path).has_value()) {
    std::cerr << "gpctl: could not publish " << model_path << "\n";
    return 1;
  }

  serve::ServeConfig base;
  base.system = config;
  base.enroll.enabled = true;
  base.enroll.k_segments = 4;
  base.enroll.candidate_radius = 1e6;  // one newcomer at a time in this demo
  const serve::ServeConfig serve_config = serve::ServeConfig::from_env(base);

  enroll::EnrollmentServiceConfig ec;
  ec.admission = serve_config.enroll;
  ec.base_model_path = model_path;
  ec.publish_dir = output_dir();
  ec.fine_tune_epochs = 2;
  enroll::EnrollmentService service(ec, registry);
  service.calibrate(dataset, split.train);

  serve::Server server(serve_config, registry);
  server.set_enrollment_hook(&service);

  // Enrolled performers on sessions 1..N-1; the newcomer (a different-seed
  // cohort's user 0) streams last and trips the novelty gate.
  const std::vector<int> script{0, 2, 1, 0, 1, 2, 0, 1};
  std::vector<ContinuousRecording> streams;
  std::size_t max_frames = 0;
  for (std::size_t s = 0; s + 1 < std::max<std::size_t>(sessions, 2); ++s) {
    streams.push_back(generate_recording(spec, s % spec.num_users, script, 0x709 + s));
    max_frames = std::max(max_frames, streams.back().frames.size());
  }
  DatasetSpec newcomer_spec = spec;
  newcomer_spec.user_seed = 987654;
  streams.push_back(generate_recording(newcomer_spec, 0, script, 0x57A6E));
  max_frames = std::max(max_frames, streams.back().frames.size());

  const std::size_t frames_per_round = std::max<std::size_t>(1, max_frames / rounds);
  std::size_t round = 0;
  for (std::size_t f = 0; f < max_frames; ++f) {
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (f >= streams[s].frames.size()) continue;
      (void)server.push_frame(s + 1, streams[s].frames[f]);
    }
    (void)server.pump();
    if ((f + 1) % frames_per_round == 0 && round < rounds) {
      ++round;
      draw_enroll_view(service, registry.version(), round, rounds);
    }
  }
  (void)server.drain();
  service.wait_for_fine_tune();
  draw_enroll_view(service, registry.version(), rounds, rounds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "train") return cmd_train(argc, argv);
    if (command == "eval") return cmd_eval(argc, argv);
    if (command == "crossval") return cmd_crossval(argc, argv);
    if (command == "info") return cmd_info(argc, argv);
    if (command == "top") return cmd_top(argc, argv);
    if (command == "enroll") return cmd_enroll(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "gpctl: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
