// Quickstart: the whole GesturePrint pipeline in one file.
//
// 1. Create two synthetic users and simulate them performing ASL gestures
//    in front of the FMCW radar model.
// 2. Preprocess the recordings (segmentation -> noise canceling).
// 3. Train GesIDNet recognition + identification models.
// 4. Classify fresh, unseen repetitions and print (gesture, user) guesses.
//
// Build & run:  ./build/examples/quickstart
//
// Observability: the run always writes <output_dir>/REPORT_quickstart.json
// (per-stage latency profile + metrics); with GP_TRACE=on it additionally
// writes TRACE_quickstart.json, loadable in chrome://tracing or Perfetto.
// GESTUREPRINT_SCALE=small shrinks the demo for smoke tests.
#include <iostream>

#include "common/config.hpp"
#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "system/gestureprint.hpp"

int main() {
  using namespace gp;

  // --- 1. a small dataset: 4 users x 5 ASL gestures x 8 repetitions ------
  DatasetScale scale;
  scale.max_users = scale_pick<std::size_t>(3, 4, 4);
  scale.reps = scale_pick<std::size_t>(5, 10, 10);
  DatasetSpec spec = gestureprint_spec(/*environment_id=*/1, scale);
  spec.gestures.resize(scale_pick<std::size_t>(3, 5, 5));  // demo subset of the 15 ASL signs
  std::cout << "Generating synthetic mmWave gesture data ("
            << spec.num_users << " users, " << spec.gestures.size() << " gestures)...\n";
  Dataset dataset;
  {
    GP_SPAN("quickstart.generate");
    dataset = generate_dataset(spec);
  }
  std::cout << "  " << dataset.samples.size() << " gesture samples captured.\n";

  // --- 2./3. train the system --------------------------------------------
  GesturePrintConfig config;
  config.training.epochs = scale_pick<std::size_t>(4, 8, 8);
  config.prep.augmentation.copies = 2;
  GesturePrintSystem system(config);

  Rng split_rng(7, 1);
  const Split split = stratified_split(dataset.gesture_labels(), 0.2, split_rng);
  std::cout << "Training GesIDNet models on " << split.train.size() << " samples...\n";
  {
    GP_SPAN("quickstart.train");
    system.fit(dataset, split.train);
  }

  // --- 4. classify unseen repetitions ------------------------------------
  std::cout << "\nClassifying " << std::min<std::size_t>(8, split.test.size())
            << " unseen samples:\n";
  int correct_gesture = 0;
  int correct_user = 0;
  int shown = 0;
  {
    GP_SPAN("quickstart.classify");
    for (std::size_t idx : split.test) {
      const GestureSample& sample = dataset.samples[idx];
      const InferenceResult result = system.classify(sample.cloud);
      if (shown < 8) {
        std::cout << "  truth: gesture=" << spec.gestures[sample.gesture].name << " user#"
                  << sample.user << "  ->  predicted: gesture="
                  << spec.gestures[result.gesture].name << " user#" << result.user
                  << (result.gesture == sample.gesture && result.user == sample.user ? "  [ok]"
                                                                                     : "  [x]")
                  << "\n";
        ++shown;
      }
      correct_gesture += result.gesture == sample.gesture ? 1 : 0;
      correct_user += result.user == sample.user ? 1 : 0;
    }
  }
  std::cout << "\nGesture recognition accuracy: "
            << 100.0 * correct_gesture / static_cast<double>(split.test.size()) << "%\n"
            << "User identification accuracy: "
            << 100.0 * correct_user / static_cast<double>(split.test.size()) << "%\n";

  obs::write_run_report("quickstart");
  return 0;
}
