// gp::serve demo: a synthetic multi-user load generator drives the full
// serving layer (DESIGN.md §8). Several client sessions — each a different
// user performing their own gesture script — stream interleaved frames into
// the sharded SessionManager; completed segments cross-batch through the
// MicroBatcher into fused GesIDNet forwards; and mid-stream the
// ModelRegistry hot-swaps a retrained model RCU-style without dropping a
// single in-flight segment (watch the model_version column flip).
//
// Build & run:  ./build/examples/serve_demo
//
// Environment knobs (see README): GP_SERVE_SHARDS, GP_SERVE_BATCH_MAX,
// GP_SERVE_BATCH_WAIT_US, GP_SERVE_QUEUE_CAP, GP_SERVE_STALE_TICKS,
// GP_THREADS, GP_FAULTS.
#include <iostream>
#include <memory>
#include <vector>

#include "common/mem.hpp"
#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "serve/server.hpp"
#include "system/gestureprint.hpp"

int main() {
  using namespace gp;

  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 10;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(5);

  std::cout << "Training generation v1 (" << spec.num_users << " users x "
            << spec.gestures.size() << " gestures)...\n";
  const Dataset dataset = generate_dataset(spec);
  GesturePrintConfig config;
  config.training.epochs = 8;
  config.prep.augmentation.copies = 2;
  config.abstain_margin = 0.10;

  Rng split_rng(3, 1);
  const auto split = stratified_split(dataset.gesture_labels(), 0.2, split_rng);

  serve::ModelRegistry registry(config);
  {
    auto v1 = std::make_unique<GesturePrintSystem>(config);
    v1->fit(dataset, split.train);
    registry.publish(std::move(v1));
  }

  serve::ServeConfig serve_config = serve::ServeConfig::from_env();
  serve_config.system = config;
  serve::Server server(serve_config, registry);
  std::cout << "Server up: " << server.sessions().shard_count() << " shards, batch_max="
            << serve_config.batch_max << ", queue_cap=" << serve_config.queue_cap << "\n";

  // --- the load generator: 6 clients, one per (user, script) pair --------
  const std::vector<std::vector<int>> scripts{
      {0, 3, 1, 4}, {2, 0, 2}, {4, 1, 3, 0}, {1, 2}, {3, 4, 0}, {0, 1, 2, 3}};
  std::vector<ContinuousRecording> streams;
  for (std::size_t s = 0; s < scripts.size(); ++s) {
    streams.push_back(
        generate_recording(spec, s % spec.num_users, scripts[s], 0xC11E57 + s));
  }
  std::cout << "Streaming " << streams.size() << " interleaved client sessions...\n\n";

  std::size_t rejected = 0;
  auto report = [&](const serve::ServeResult& r) {
    std::cout << "  [session " << r.session_id << " seg " << r.segment_ordinal << "] ";
    if (r.quality_rejected) {
      std::cout << "rejected (quality)";
    } else if (r.abstained) {
      std::cout << "abstained";
    } else {
      std::cout << "gesture='" << spec.gestures[r.gesture].name << "' user#" << r.user;
    }
    std::cout << "  (model v" << r.model_version << ")\n";
  };

  std::size_t max_frames = 0;
  for (const auto& s : streams) max_frames = std::max(max_frames, s.frames.size());
  bool swapped = false;
  for (std::size_t f = 0; f < max_frames; ++f) {
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (f >= streams[s].frames.size()) continue;
      if (server.push_frame(s + 1, streams[s].frames[f]) != serve::Admission::kAccepted) {
        ++rejected;
      }
    }
    for (const serve::ServeResult& r : server.pump()) report(r);

    if (!swapped && f >= max_frames / 2) {
      // Mid-stream hot-swap: retrain (different epoch budget → different
      // weights) and publish. In-flight batches keep answering from v1;
      // later flushes pick up v2 — no pause, no dropped segments.
      std::cout << "  --- hot-swapping model (training generation v2) ---\n";
      GesturePrintConfig config_v2 = config;
      config_v2.training.epochs = 10;
      auto v2 = std::make_unique<GesturePrintSystem>(config_v2);
      v2->fit(dataset, split.train);
      registry.publish(std::move(v2));
      swapped = true;
    }
  }
  for (const serve::ServeResult& r : server.drain()) report(r);

  // Steady-state memory check (DESIGN.md §9): with the server fully warm,
  // quiet ticks — frames admitted and shards drained, but no segment
  // completing — should not touch the heap at all.
  {
    constexpr std::size_t kQuietTicks = 8;
    mem::AllocCounter tick_allocs;
    for (std::size_t f = 0; f < kQuietTicks; ++f) {
      for (std::size_t s = 0; s < streams.size(); ++s) {
        (void)server.push_frame(s + 1, streams[s].frames[f]);
      }
      (void)server.pump();
    }
    std::cout << "\nsteady-state memory: "
              << (tick_allocs.allocations() / kQuietTicks)
              << " heap allocations per quiet serve tick ("
              << tick_allocs.allocations() << " over " << kQuietTicks << " ticks)\n";
  }

  // Final tallies come from the health monitor's SLO window (sized to the
  // whole run by default), not ad-hoc local counters: what the dashboard
  // and SLO evaluator see is what the demo reports.
  const serve::SessionManager::Stats s = server.session_stats();
  const serve::MicroBatcher::Stats b = server.batch_stats();
  const health::HealthSnapshot h = server.health_snapshot();
  const health::WindowStats& w = h.slo_window;
  std::cout << "\n" << s.frames_accepted << " frames accepted, "
            << s.frames_rejected_queue_full << " shed at admission, " << s.frames_shed_stale
            << " shed stale; " << b.segments << " segments in " << b.batches
            << " micro-batches; " << rejected << " pushes refused; final model v"
            << registry.version() << ".\n";
  std::cout << "health (" << w.ticks << " ticks): " << w.results << " answers, shed_rate="
            << w.shed_rate << ", abstain_rate=" << w.abstain_rate << ", quality_reject_rate="
            << w.quality_reject_rate << ", p99=" << w.p99_ms << " ms, verdict="
            << health::verdict_name(h.verdict) << ", flight-recorder events: "
            << h.flightrec_events << ".\n";
  return 0;
}
