// Continuous-stream runtime demo: the user performs several gestures in a
// row with natural 2-4 s pauses (the paper's collection protocol); the
// streaming segmenter detects each motion, the preprocessing stage cleans
// it, and the trained system labels gesture + user — the full Fig. 4
// pipeline in deployment order.
//
// Build & run:  ./build/examples/live_segmentation
#include <iostream>

#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "pipeline/preprocessor.hpp"
#include "system/gestureprint.hpp"

int main() {
  using namespace gp;

  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 10;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(5);

  std::cout << "Training on " << spec.num_users << " users x " << spec.gestures.size()
            << " ASL gestures...\n";
  const Dataset dataset = generate_dataset(spec);
  GesturePrintConfig config;
  config.training.epochs = 8;
  config.prep.augmentation.copies = 2;
  GesturePrintSystem system(config);
  Rng split_rng(3, 1);
  system.fit(dataset, stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);

  // --- a continuous radar recording: user 1 performs 6 gestures ----------
  const std::vector<int> script{0, 3, 1, 4, 2, 0};
  std::cout << "\nStreaming a continuous recording (user #1 performing "
            << script.size() << " gestures with natural pauses)...\n";
  const ContinuousRecording recording = generate_recording(spec, 1, script, 20260704);

  // Streaming segmentation, frame by frame, as a live system would run.
  GestureSegmenter segmenter;
  const Preprocessor preprocessor;
  std::size_t detected = 0;
  std::size_t correct_gesture = 0;
  std::size_t correct_user = 0;

  for (const auto& frame : recording.frames) {
    segmenter.push(frame);
    for (const GestureSegment& segment : segmenter.take_segments()) {
      const GestureCloud cloud = preprocessor.process_segment(segment.frames);
      if (cloud.points.size() < 8) continue;
      const InferenceResult result = system.classify(cloud);
      const int truth =
          detected < script.size() ? script[detected] : -1;
      std::cout << "  frames [" << segment.start_frame << ", " << segment.end_frame
                << "]: predicted gesture='" << spec.gestures[result.gesture].name << "' user#"
                << result.user;
      if (truth >= 0) {
        std::cout << "  (truth: '" << spec.gestures[truth].name << "' user#1)"
                  << (result.gesture == truth && result.user == 1 ? "  [ok]" : "  [x]");
        correct_gesture += result.gesture == truth ? 1 : 0;
        correct_user += result.user == 1 ? 1 : 0;
      }
      std::cout << "\n";
      ++detected;
    }
  }
  segmenter.finish();
  for (const GestureSegment& segment : segmenter.take_segments()) {
    std::cout << "  (flushed trailing segment [" << segment.start_frame << ", "
              << segment.end_frame << "])\n";
    ++detected;
  }

  std::cout << "\nDetected " << detected << "/" << script.size() << " gestures; "
            << correct_gesture << " correct gestures, " << correct_user
            << " correct user IDs.\n";
  return 0;
}
