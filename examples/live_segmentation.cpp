// Continuous-stream runtime demo: the user performs several gestures in a
// row with natural 2-4 s pauses (the paper's collection protocol); the
// stream now runs through gp::serve — a single StreamSession owns the
// streaming segmenter + preprocessing, completed segments flow through the
// micro-batcher, and a published (fused) model snapshot labels gesture +
// user — the full Fig. 4 pipeline in deployment order, on the same code
// path a multi-client server uses.
//
// Build & run:  ./build/examples/live_segmentation
//
// With --faulty the radar link degrades mid-stream: the serve session arms
// its per-session seed-deterministic FaultInjector (gp::faults, DESIGN.md
// §7) and the abstention gate, so ambiguous captures are refused instead of
// misclassified. GP_FAULTS overrides the default mixed fault mix (e.g.
// GP_FAULTS="drop=0.3,ghost=0.4").
#include <cstring>
#include <iostream>
#include <memory>

#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "faults/faults.hpp"
#include "serve/server.hpp"
#include "system/gestureprint.hpp"

int main(int argc, char** argv) {
  using namespace gp;

  bool faulty = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faulty") == 0) faulty = true;
  }

  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 10;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(5);

  std::cout << "Training on " << spec.num_users << " users x " << spec.gestures.size()
            << " ASL gestures...\n";
  const Dataset dataset = generate_dataset(spec);
  GesturePrintConfig config;
  config.training.epochs = 8;
  config.prep.augmentation.copies = 2;
  if (faulty) config.abstain_margin = 0.10;  // refuse degraded captures

  auto system = std::make_unique<GesturePrintSystem>(config);
  Rng split_rng(3, 1);
  system->fit(dataset, stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);

  // Publish into the serving registry (fuses + warms up the snapshot) and
  // open a one-session server: the same admission → sessions → micro-batch
  // path a multi-client deployment runs, with exactly one client attached.
  serve::ModelRegistry registry(config);
  registry.publish(std::move(system));

  serve::ServeConfig serve_config;
  serve_config.system = config;
  serve_config.shards = 1;
  serve_config.batch_wait_us = 0;  // single client: answer on every pump
  if (faulty) {
    serve_config.session_faults =
        faults::FaultConfig::from_env().value_or(faults::FaultConfig::mixed(0.5));
  }
  serve::Server server(serve_config, registry);

  // --- a continuous radar recording: user 1 performs 6 gestures ----------
  const std::vector<int> script{0, 3, 1, 4, 2, 0};
  std::cout << "\nStreaming a continuous recording (user #1 performing "
            << script.size() << " gestures with natural pauses"
            << (faulty ? ", radar link degraded" : "") << ") through gp::serve...\n";
  const ContinuousRecording recording = generate_recording(spec, 1, script, 20260704);

  std::size_t detected = 0;
  std::size_t abstained = 0;
  std::size_t correct_gesture = 0;
  std::size_t correct_user = 0;
  constexpr std::uint64_t kSessionId = 1;

  auto report = [&](const serve::ServeResult& result) {
    const int truth = detected < script.size() ? script[detected] : -1;
    ++detected;
    std::cout << "  segment #" << result.segment_ordinal << ": ";
    if (result.abstained) {
      ++abstained;
      std::cout << (result.quality_rejected ? "REJECTED (failed preprocessing guards)"
                                            : "ABSTAINED (margin gate)");
      if (truth >= 0) std::cout << "  (truth: '" << spec.gestures[truth].name << "')";
      std::cout << "\n";
      return;
    }
    std::cout << "predicted gesture='" << spec.gestures[result.gesture].name << "' user#"
              << result.user << " (margin " << result.gesture_margin << ", model v"
              << result.model_version << ")";
    if (truth >= 0) {
      std::cout << "  (truth: '" << spec.gestures[truth].name << "' user#1)"
                << (result.gesture == truth && result.user == 1 ? "  [ok]" : "  [x]");
      correct_gesture += result.gesture == truth ? 1 : 0;
      correct_user += result.user == 1 ? 1 : 0;
    }
    std::cout << "\n";
  };

  for (const auto& frame : recording.frames) {
    (void)server.push_frame(kSessionId, frame);
    for (const serve::ServeResult& result : server.pump()) report(result);
  }
  for (const serve::ServeResult& result : server.drain()) report(result);

  const serve::SessionManager::Stats admitted = server.session_stats();
  std::cout << "\nServed " << admitted.frames_accepted << " frames over "
            << server.ticks() << " ticks; " << server.batch_stats().batches
            << " micro-batches.\n";
  std::cout << "Detected " << detected << "/" << script.size() << " gestures; "
            << abstained << " abstained; " << correct_gesture << " correct gestures, "
            << correct_user << " correct user IDs.\n";
  return 0;
}
