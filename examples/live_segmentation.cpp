// Continuous-stream runtime demo: the user performs several gestures in a
// row with natural 2-4 s pauses (the paper's collection protocol); the
// streaming segmenter detects each motion, the preprocessing stage cleans
// it, and the trained system labels gesture + user — the full Fig. 4
// pipeline in deployment order.
//
// Build & run:  ./build/examples/live_segmentation
//
// With --faulty the radar link degrades mid-stream: a seed-deterministic
// FaultInjector (gp::faults, DESIGN.md §7) drops, truncates and pollutes
// frames, and the abstention gate is armed so ambiguous captures are
// refused instead of misclassified. GP_FAULTS overrides the default mixed
// fault mix (e.g. GP_FAULTS="drop=0.3,ghost=0.4").
#include <cstring>
#include <iostream>
#include <optional>

#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "faults/faults.hpp"
#include "pipeline/preprocessor.hpp"
#include "system/gestureprint.hpp"

int main(int argc, char** argv) {
  using namespace gp;

  bool faulty = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faulty") == 0) faulty = true;
  }

  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 10;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(5);

  std::cout << "Training on " << spec.num_users << " users x " << spec.gestures.size()
            << " ASL gestures...\n";
  const Dataset dataset = generate_dataset(spec);
  GesturePrintConfig config;
  config.training.epochs = 8;
  config.prep.augmentation.copies = 2;
  if (faulty) config.abstain_margin = 0.10;  // refuse degraded captures
  GesturePrintSystem system(config);
  Rng split_rng(3, 1);
  system.fit(dataset, stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);

  // --- a continuous radar recording: user 1 performs 6 gestures ----------
  const std::vector<int> script{0, 3, 1, 4, 2, 0};
  std::cout << "\nStreaming a continuous recording (user #1 performing "
            << script.size() << " gestures with natural pauses"
            << (faulty ? ", radar link degraded" : "") << ")...\n";
  const ContinuousRecording recording = generate_recording(spec, 1, script, 20260704);

  faults::FaultConfig fault_config;  // zeroed = identity
  if (faulty) {
    fault_config = faults::FaultConfig::from_env().value_or(faults::FaultConfig::mixed(0.5));
  }
  faults::FaultInjector injector(fault_config);

  // Streaming segmentation, frame by frame, as a live system would run.
  GestureSegmenter segmenter;
  const Preprocessor preprocessor;
  std::size_t detected = 0;
  std::size_t abstained = 0;
  std::size_t correct_gesture = 0;
  std::size_t correct_user = 0;

  auto classify_segment = [&](const GestureSegment& segment) {
    const GestureCloud cloud = preprocessor.process_segment(segment.frames);
    if (!faulty && cloud.points.size() < 8) return;  // legacy clean-mode guard
    const InferenceResult result = system.classify(cloud);
    const int truth = detected < script.size() ? script[detected] : -1;
    ++detected;
    std::cout << "  frames [" << segment.start_frame << ", " << segment.end_frame << "]: ";
    if (result.abstained) {
      ++abstained;
      std::cout << "ABSTAINED (quality=" << segment_quality_name(cloud.quality)
                << ", margin=" << result.gesture_margin << ")";
      if (truth >= 0) std::cout << "  (truth: '" << spec.gestures[truth].name << "')";
      std::cout << "\n";
      return;
    }
    std::cout << "predicted gesture='" << spec.gestures[result.gesture].name << "' user#"
              << result.user;
    if (truth >= 0) {
      std::cout << "  (truth: '" << spec.gestures[truth].name << "' user#1)"
                << (result.gesture == truth && result.user == 1 ? "  [ok]" : "  [x]");
      correct_gesture += result.gesture == truth ? 1 : 0;
      correct_user += result.user == 1 ? 1 : 0;
    }
    std::cout << "\n";
  };

  for (const auto& frame : recording.frames) {
    const std::optional<FrameCloud> delivered = injector.apply(frame);
    if (!delivered) continue;
    segmenter.push(*delivered);
    for (const GestureSegment& segment : segmenter.take_segments()) classify_segment(segment);
  }
  segmenter.finish();
  for (const GestureSegment& segment : segmenter.take_segments()) {
    std::cout << "  (flushed trailing segment [" << segment.start_frame << ", "
              << segment.end_frame << "])\n";
    classify_segment(segment);
  }

  if (faulty) {
    const auto& c = injector.counts();
    std::cout << "\nFaults injected: " << c.frames_dropped << "/" << c.frames_seen
              << " frames dropped, " << c.frames_truncated << " truncated ("
              << c.points_removed << " points removed), " << c.ghost_points
              << " ghost points, " << c.frames_jittered << " jittered.\n";
  }
  std::cout << "\nDetected " << detected << "/" << script.size() << " gestures; "
            << abstained << " abstained; " << correct_gesture << " correct gestures, "
            << correct_user << " correct user IDs.\n";
  return 0;
}
