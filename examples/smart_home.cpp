// Smart-home personalisation demo (the paper's Fig. 1 motivation):
// the same physical gesture triggers a *different* action per user, because
// GesturePrint identifies who performed it.
//
//   wave 'away'  -> Alice: open the curtain     Bob: lower the AC
//   sign 'push'  -> Alice: play her jazz list   Bob: play his rock list
//   sign 'front' -> Alice: dim the lights       Bob: brighten the lights
//
// Build & run:  ./build/examples/smart_home
#include <array>
#include <iostream>
#include <map>

#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "system/gestureprint.hpp"

int main() {
  using namespace gp;

  // --- the household: two registered users ------------------------------
  DatasetScale scale;
  scale.max_users = 2;
  scale.reps = 12;
  DatasetSpec spec = gestureprint_spec(/*environment_id=*/1, scale);
  // Keep the three gestures the demo personalises.
  std::vector<GestureSpec> chosen;
  for (const auto& name : {"away", "push", "front"}) {
    chosen.push_back(find_gesture(spec.gestures, name));
  }
  spec.gestures = chosen;

  std::cout << "Enrolling Alice and Bob (12 repetitions x 3 gestures each)...\n";
  const Dataset dataset = generate_dataset(spec);

  GesturePrintConfig config;
  config.training.epochs = 8;
  config.prep.augmentation.copies = 2;
  GesturePrintSystem system(config);

  Rng split_rng(11, 1);
  const Split split = stratified_split(dataset.gesture_labels(), 0.25, split_rng);
  system.fit(dataset, split.train);

  // --- personalised command table ----------------------------------------
  const std::array<std::string, 2> users{"Alice", "Bob"};
  const std::map<std::string, std::array<std::string, 2>> commands{
      {"away", {"opening the curtain", "lowering the AC temperature"}},
      {"push", {"playing Alice's jazz playlist", "playing Bob's rock playlist"}},
      {"front", {"dimming the lights", "brightening the lights"}},
  };

  // --- runtime: unseen repetitions arrive, actions fire ------------------
  std::cout << "\nGestures observed by the living-room radar:\n";
  int correct = 0;
  int shown = 0;
  for (std::size_t idx : split.test) {
    const GestureSample& sample = dataset.samples[idx];
    const InferenceResult result = system.classify(sample.cloud);
    const std::string gesture_name = spec.gestures[result.gesture].name;
    const std::string& user_name = users[static_cast<std::size_t>(result.user) % 2];
    const bool ok = result.gesture == sample.gesture && result.user == sample.user;
    correct += ok ? 1 : 0;
    if (shown++ < 10) {
      std::cout << "  radar saw '" << gesture_name << "' by " << user_name << "  ->  "
                << commands.at(gesture_name)[static_cast<std::size_t>(result.user) % 2]
                << (ok ? "" : "   [misidentified: truly " + users[sample.user % 2] + "'s '" +
                                  spec.gestures[sample.gesture].name + "']")
                << "\n";
    }
  }
  std::cout << "\n" << correct << "/" << split.test.size()
            << " gesture+user decisions fully correct.\n";
  return 0;
}
