// Multi-person robustness demo (§VII-1 / Fig. 15): while the registered
// user gestures at the radar, a colleague walks past behind them and a
// second person gestures off to the side. The preprocessing stage isolates
// the user's point cluster before classification.
//
// Build & run:  ./build/examples/multi_person_demo
#include <iomanip>
#include <iostream>

#include "kinematics/performer.hpp"
#include "pipeline/noise_cancel.hpp"
#include "radar/sensor.hpp"
#include "system/multi_person.hpp"

namespace {

void print_cluster(const char* label, const gp::PointCloud& cloud) {
  if (cloud.empty()) {
    std::cout << "  " << label << ": empty\n";
    return;
  }
  const gp::Vec3 c = gp::centroid(cloud);
  std::cout << "  " << label << ": " << cloud.size() << " points, centroid ("
            << std::fixed << std::setprecision(2) << c.x << ", " << c.y << ", " << c.z
            << ")\n";
}

}  // namespace

int main() {
  using namespace gp;

  Rng rng(42, 7);
  Rng user_rng(1001, 0x5bd1e995ULL);
  const UserProfile alice = UserProfile::sample(0, user_rng);
  const UserProfile mallory = UserProfile::sample(1, user_rng);
  const auto gestures = asl_gesture_set();
  const RadarSensor sensor;
  const Vec3 work_zone(0.0, 1.2, 0.0);

  std::cout << "Scene: Alice signs 'push' at 1.2 m; a colleague walks past ~3.3 m behind;\n"
               "another person signs 'away' about 2.4 m to the side.\n\n";

  // Alice's gesture.
  PerformanceConfig alice_perf;
  const GesturePerformer alice_performer(alice, alice_perf);
  SceneSequence scene = alice_performer.perform(find_gesture(gestures, "push"), rng);

  // The walker.
  WalkerConfig walker;
  walker.start = Vec3(2.4, 3.3, 0.0);
  walker.velocity = Vec3(-0.65, 0.0, 0.0);
  walker.num_frames = static_cast<int>(scene.size());
  scene = merge_scenes(scene, make_walker_scene(walker, rng));

  // The second gesturer.
  PerformanceConfig other_perf;
  other_perf.lateral = 2.4;
  other_perf.distance = 1.5;
  const GesturePerformer other_performer(mallory, other_perf);
  scene = merge_scenes(scene, other_performer.perform(find_gesture(gestures, "away"), rng));

  // Radar capture + noise canceling.
  const FrameSequence frames = sensor.observe(scene, rng);
  const PointCloud aggregated = aggregate(frames);
  std::cout << "Radar captured " << aggregated.size() << " points over " << frames.size()
            << " frames.\n\nDBSCAN clusters (D_max = 1 m, N_min = 4):\n";

  const NoiseCancelResult clusters = cancel_noise(aggregated);
  print_cluster("largest cluster", clusters.main_cluster);
  for (std::size_t i = 0; i < clusters.other_clusters.size(); ++i) {
    print_cluster(("other cluster " + std::to_string(i)).c_str(), clusters.other_clusters[i]);
  }
  std::cout << "  outliers dropped: " << clusters.noise_points << "\n";

  const SeparationResult separation = analyze_separation(aggregated, work_zone);
  std::cout << "\nSeparation analysis:\n  clusters found: " << separation.num_clusters
            << "\n  centroid gap to nearest bystander: " << std::setprecision(2)
            << separation.centroid_gap << " m\n  work-zone policy picked a cluster "
            << separation.zone_cluster_distance << " m from Alice's position ("
            << separation.zone_cluster_size << " points)\n  => "
            << (separation.zone_cluster_distance < 0.8
                    ? "Alice's gesture cloud isolated; bystanders discarded."
                    : "separation failed this time — bystander too close.")
            << "\n";
  return 0;
}
