// Dataset inspection tool: regenerates (a slice of) the self-collected
// GesturePrint ASL dataset and exports per-gesture statistics plus raw
// point clouds as CSV for external plotting (the Fig. 2-style view).
//
// Usage:  ./build/examples/asl_dataset_tool [users] [reps] [out_dir]
#include <filesystem>
#include <iostream>
#include <map>

#include "common/csv.hpp"
#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "datasets/catalog.hpp"

int main(int argc, char** argv) {
  using namespace gp;

  const std::size_t users = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const std::size_t reps = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 6;
  const std::string out_dir = argc > 3 ? argv[3] : "asl_dataset_out";
  std::filesystem::create_directories(out_dir);

  DatasetScale scale;
  scale.max_users = users;
  scale.reps = reps;
  const DatasetSpec spec = gestureprint_spec(/*environment_id=*/1, scale);
  std::cout << "Generating GesturePrint ASL dataset slice: " << users << " users x 15 gestures x "
            << reps << " reps (meeting room)...\n";
  const Dataset dataset = generate_dataset(spec);
  std::cout << dataset.samples.size() << " samples generated.\n\n";

  // --- per-gesture statistics --------------------------------------------
  struct Stats {
    std::vector<double> points;
    std::vector<double> frames;
  };
  std::map<int, Stats> per_gesture;
  for (const auto& s : dataset.samples) {
    per_gesture[s.gesture].points.push_back(static_cast<double>(s.cloud.points.size()));
    per_gesture[s.gesture].frames.push_back(static_cast<double>(s.active_frames));
  }

  Table table({"gesture", "samples", "mean points", "mean frames", "mean duration (s)"});
  CsvWriter stats_csv(out_dir + "/gesture_stats.csv",
                      {"gesture", "samples", "mean_points", "mean_frames"});
  for (const auto& [gesture, stats] : per_gesture) {
    const std::string name = spec.gestures[static_cast<std::size_t>(gesture)].name;
    table.add_row({name, std::to_string(stats.points.size()), Table::num(mean(stats.points), 1),
                   Table::num(mean(stats.frames), 1), Table::num(mean(stats.frames) * 0.1, 2)});
    stats_csv.write_row({name, std::to_string(stats.points.size()),
                         Table::num(mean(stats.points), 1), Table::num(mean(stats.frames), 1)});
  }
  table.print();

  // --- export raw clouds for the first two users (Fig. 2-style) ----------
  CsvWriter cloud_csv(out_dir + "/gesture_clouds.csv",
                      {"user", "gesture", "x", "y", "z", "velocity", "snr_db", "frame"});
  std::size_t exported = 0;
  std::map<std::pair<int, int>, bool> done;
  for (const auto& s : dataset.samples) {
    if (s.user > 1) continue;
    const auto key = std::make_pair(s.user, s.gesture);
    if (done[key]) continue;
    done[key] = true;
    for (const auto& p : s.cloud.points) {
      cloud_csv.write_row({std::to_string(s.user),
                           spec.gestures[static_cast<std::size_t>(s.gesture)].name,
                           Table::num(p.position.x, 4), Table::num(p.position.y, 4),
                           Table::num(p.position.z, 4), Table::num(p.velocity, 3),
                           Table::num(p.snr_db, 1), std::to_string(p.frame)});
      ++exported;
    }
  }
  std::cout << "\nExported " << exported << " points (users 0-1, one cloud per gesture) to "
            << cloud_csv.path() << "\nStats: " << stats_csv.path() << "\n";
  return 0;
}
