// int8 quantized inference tests (DESIGN.md §11).
//
//  * quantize_folded round-trip properties: per-channel scale = maxabs/127,
//    round-to-nearest with saturation clamp to [-127, 127], zero-point-free
//    symmetry (quantize(-W) == -quantize(W)), dead-channel handling;
//  * GP_QUANT env parsing (operator boundary: never throws);
//  * FusedLinear kInt8 vs the f32 fused kernel on a single layer — error
//    bounded by the per-element quantization band;
//  * trained GesIDNet: int8 logits within the pinned parity tolerance of
//    the f32 fused logits AND argmax equality on every evaluation sample;
//  * .gpsy save/load parity: tables preloaded from the quant section fuse
//    to bitwise-identical logits vs tables quantized fresh at fuse time;
//  * quantized model save/load rejection: fused systems refuse to save.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "datasets/catalog.hpp"
#include "datasets/dataset.hpp"
#include "datasets/prep.hpp"
#include "exec/exec.hpp"
#include "gesidnet/trainer.hpp"
#include "nn/fused.hpp"
#include "nn/layers.hpp"
#include "nn/quant.hpp"
#include "system/gestureprint.hpp"

namespace gp {
namespace {

using nn::QuantLinearTables;
using nn::QuantMode;

// Pinned logit-parity tolerance for the trained-model test below: the int8
// path quantizes activations per row (sx = amax/127) and weights per channel
// (sw = maxabs/127), so each layer contributes relative error on the order
// of 1/254 per operand; across GesIDNet's fused MLP stacks the empirical
// worst-case logit deviation on this config is well under 0.1. 0.25 gives
// ~3x headroom while still catching a broken kernel (logits span several
// units apart at trained margins).
constexpr double kLogitParityTol = 0.25;

DatasetSpec small_spec(const std::string& name) {
  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 3;
  DatasetSpec spec = gestureprint_spec(0, scale);
  spec.gestures.resize(3);
  spec.name = name;
  return spec;
}

// ---- quantizer properties --------------------------------------------------

TEST(QuantizeFolded, ScaleIsMaxAbsOver127PerChannel) {
  // weight_t layout: (in x out) row-major — column c is channel c.
  const std::size_t in = 3, out = 2;
  std::vector<float> w(in * out, 0.0f);
  w[0 * out + 0] = 0.5f;
  w[1 * out + 0] = -2.54f;  // channel 0 maxabs
  w[2 * out + 0] = 1.0f;
  w[0 * out + 1] = 0.127f;  // channel 1 maxabs
  w[1 * out + 1] = -0.1f;
  const QuantLinearTables t = nn::quantize_folded(w, in, out);
  ASSERT_EQ(t.in, in);
  ASSERT_EQ(t.out, out);
  ASSERT_EQ(t.scales.size(), out);
  ASSERT_EQ(t.qweight.size(), in * out);
  EXPECT_FLOAT_EQ(t.scales[0], 2.54f / 127.0f);
  EXPECT_FLOAT_EQ(t.scales[1], 0.127f / 127.0f);
  // The maxabs element always lands exactly on ±127.
  EXPECT_EQ(t.qweight[0 * in + 1], -127);  // out-major: channel 0, k=1
  EXPECT_EQ(t.qweight[1 * in + 0], 127);   // channel 1, k=0
}

TEST(QuantizeFolded, RoundTripErrorWithinHalfScaleAndClamped) {
  Rng rng(0x0A81, 1);
  const std::size_t in = 37, out = 11;
  std::vector<float> w(in * out);
  for (float& v : w) v = static_cast<float>(rng.uniform(-3.0, 3.0));
  const QuantLinearTables t = nn::quantize_folded(w, in, out);
  for (std::size_t c = 0; c < out; ++c) {
    ASSERT_GT(t.scales[c], 0.0f);
    for (std::size_t k = 0; k < in; ++k) {
      const std::int8_t q = t.qweight[c * in + k];
      EXPECT_GE(q, -127);  // -128 never produced (symmetric range)
      EXPECT_LE(q, 127);
      const double recon = static_cast<double>(q) * static_cast<double>(t.scales[c]);
      const double orig = static_cast<double>(w[k * out + c]);
      // Round-to-nearest: reconstruction error <= scale/2 (+1 ulp slack).
      EXPECT_LE(std::fabs(recon - orig),
                0.5 * static_cast<double>(t.scales[c]) * (1.0 + 1e-5))
          << "c=" << c << " k=" << k;
    }
  }
}

TEST(QuantizeFolded, ZeroPointFreeSymmetry) {
  Rng rng(0x0A81, 2);
  const std::size_t in = 16, out = 8;
  std::vector<float> w(in * out), neg(in * out);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
    neg[i] = -w[i];
  }
  const QuantLinearTables tp = nn::quantize_folded(w, in, out);
  const QuantLinearTables tn = nn::quantize_folded(neg, in, out);
  ASSERT_EQ(tp.qweight.size(), tn.qweight.size());
  for (std::size_t c = 0; c < out; ++c) EXPECT_FLOAT_EQ(tp.scales[c], tn.scales[c]);
  for (std::size_t i = 0; i < tp.qweight.size(); ++i) {
    EXPECT_EQ(static_cast<int>(tp.qweight[i]), -static_cast<int>(tn.qweight[i]))
        << "negation must mirror exactly (no zero point)";
  }
}

TEST(QuantizeFolded, DeadChannelStoresZeroScaleAndZeroWeights) {
  const std::size_t in = 4, out = 3;
  std::vector<float> w(in * out, 0.0f);
  for (std::size_t k = 0; k < in; ++k) w[k * out + 1] = 1.0f;  // only channel 1 alive
  const QuantLinearTables t = nn::quantize_folded(w, in, out);
  EXPECT_FLOAT_EQ(t.scales[0], 0.0f);
  EXPECT_FLOAT_EQ(t.scales[2], 0.0f);
  for (std::size_t k = 0; k < in; ++k) {
    EXPECT_EQ(t.qweight[0 * in + k], 0);
    EXPECT_EQ(t.qweight[2 * in + k], 0);
    EXPECT_EQ(t.qweight[1 * in + k], 127);
  }
}

// ---- GP_QUANT env boundary -------------------------------------------------

TEST(QuantEnv, ParsesInt8OffAndGarbage) {
  ::setenv("GP_QUANT", "int8", 1);
  EXPECT_EQ(nn::quant_mode_from_env(QuantMode::kOff), QuantMode::kInt8);
  ::setenv("GP_QUANT", "off", 1);
  EXPECT_EQ(nn::quant_mode_from_env(QuantMode::kInt8), QuantMode::kOff);
  ::setenv("GP_QUANT", "bf16", 1);  // unknown → warn, keep fallback
  EXPECT_EQ(nn::quant_mode_from_env(QuantMode::kOff), QuantMode::kOff);
  ::unsetenv("GP_QUANT");
  EXPECT_EQ(nn::quant_mode_from_env(QuantMode::kInt8), QuantMode::kInt8);
  EXPECT_STREQ(nn::quant_mode_name(QuantMode::kOff), "off");
  EXPECT_STREQ(nn::quant_mode_name(QuantMode::kInt8), "int8");
}

// ---- single-layer kernel band ----------------------------------------------

TEST(FusedInt8, SingleLayerMatchesF32WithinQuantizationBand) {
  Rng rng(0x0A81, 3);
  const std::size_t in = 48, out = 33, batch = 9;  // odd out: remainder lanes
  nn::Linear lin(in, out, rng);
  nn::Tensor x(batch, in);
  for (float& v : x.vec()) {
    v = rng.uniform(0.0, 1.0) < 0.4 ? 0.0f : static_cast<float>(rng.uniform(-1.5, 1.5));
  }
  nn::FusedLinear f32(lin, nullptr, true);
  nn::FusedLinear i8(lin, nullptr, true, QuantMode::kInt8);
  EXPECT_FALSE(f32.quantized());
  EXPECT_TRUE(i8.quantized());
  const nn::Tensor y32 = f32.forward(x, false);
  const nn::Tensor y8 = i8.forward(x, false);
  ASSERT_EQ(y32.rows(), y8.rows());
  ASSERT_EQ(y32.cols(), y8.cols());
  // Per-element band: |err| <= sum over k of quantization error of each
  // operand product; bound loosely by in * (sx*sw) with sx, sw <= maxabs/127.
  for (std::size_t r = 0; r < batch; ++r) {
    float amax = 0.0f;
    for (std::size_t k = 0; k < in; ++k) amax = std::max(amax, std::fabs(x.at(r, k)));
    const double band = static_cast<double>(in) * (amax / 127.0) * 0.1 + 1e-4;
    for (std::size_t c = 0; c < out; ++c) {
      EXPECT_NEAR(y32.at(r, c), y8.at(r, c), band) << "r=" << r << " c=" << c;
    }
  }
}

TEST(FusedInt8, ForwardIsBitwiseRepeatable) {
  Rng rng(0x0A81, 4);
  const std::size_t in = 30, out = 17;  // odd in: zero-padded k pair
  nn::Linear lin(in, out, rng);
  nn::Tensor x(5, in);
  for (float& v : x.vec()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  nn::FusedLinear i8(lin, nullptr, false, QuantMode::kInt8);
  const nn::Tensor a = i8.forward(x, false);
  const nn::Tensor b = i8.forward(x, false);
  EXPECT_TRUE(a.vec() == b.vec()) << "int8 kernel must be bitwise repeatable";
}

// ---- trained GesIDNet parity -----------------------------------------------

struct TrainedPair {
  GesturePrintConfig config;
  Dataset dataset;
  std::filesystem::path dir;
  std::string model_path;
};

TrainedPair train_and_save(const std::string& tag) {
  TrainedPair p;
  p.config.training.epochs = 8;
  p.config.training.batch_size = 8;
  p.config.eval_rounds = 1;
  exec::ExecContext ctx(2);
  p.dataset = generate_dataset(small_spec(tag), ctx);
  GesturePrintSystem system(p.config);
  system.fit(p.dataset, all_indices(p.dataset));
  p.dir = std::filesystem::temp_directory_path() / ("gp_quant_" + tag);
  std::filesystem::remove_all(p.dir);
  std::filesystem::create_directories(p.dir);
  p.model_path = (p.dir / "system.gpsy").string();
  system.save(p.model_path);
  return p;
}

TEST(QuantParity, TrainedGesIDNetArgmaxEqualAndLogitsWithinTolerance) {
  const TrainedPair p = train_and_save("parity");

  GesturePrintSystem f32(p.config), i8(p.config);
  f32.load(p.model_path);
  i8.load(p.model_path);
  f32.fuse_for_inference(QuantMode::kOff);
  i8.fuse_for_inference(QuantMode::kInt8);

  Rng prep_rng(31);
  const LabeledSamples labeled =
      prepare_subset(p.dataset, all_indices(p.dataset), LabelKind::kGesture,
                     PrepConfig{}, prep_rng);
  const nn::Tensor l32 = predict_logits(f32.gesture_model(), labeled.samples, 8);
  const nn::Tensor l8 = predict_logits(i8.gesture_model(), labeled.samples, 8);
  ASSERT_EQ(l32.rows(), l8.rows());
  ASSERT_EQ(l32.cols(), l8.cols());
  ASSERT_GT(l32.rows(), 0u);

  double max_abs_diff = 0.0;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < l32.rows(); ++i) {
    std::size_t a32 = 0, a8 = 0;
    for (std::size_t c = 0; c < l32.cols(); ++c) {
      max_abs_diff = std::max(
          max_abs_diff, std::fabs(static_cast<double>(l32.at(i, c)) - l8.at(i, c)));
      if (l32.at(i, c) > l32.at(i, a32)) a32 = c;
      if (l8.at(i, c) > l8.at(i, a8)) a8 = c;
    }
    if (a32 != a8) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u)
      << "argmax must agree on every evaluation sample (" << l32.rows() << " samples)";
  EXPECT_LE(max_abs_diff, kLogitParityTol)
      << "int8 logits drifted beyond the pinned parity tolerance";
  std::filesystem::remove_all(p.dir);
}

TEST(QuantParity, PreloadedTablesMatchFreshQuantizationBitwise) {
  const TrainedPair p = train_and_save("tables");

  // Path A: load from .gpsy → fuse consumes the serialized GPQ8 tables.
  GesturePrintSystem loaded(p.config);
  loaded.load(p.model_path);
  loaded.fuse_for_inference(QuantMode::kInt8);

  // Path B: train an identical system in-process (same seeds end-to-end)
  // and fuse it without ever serializing — this exercises the
  // quantize-at-fuse route on the same folded weights.
  GesturePrintSystem fresh(p.config);
  fresh.fit(p.dataset, all_indices(p.dataset));
  fresh.fuse_for_inference(QuantMode::kInt8);

  Rng prep_rng(31);
  const LabeledSamples labeled =
      prepare_subset(p.dataset, all_indices(p.dataset), LabelKind::kGesture,
                     PrepConfig{}, prep_rng);
  const nn::Tensor a = predict_logits(loaded.gesture_model(), labeled.samples, 8);
  const nn::Tensor b = predict_logits(fresh.gesture_model(), labeled.samples, 8);
  ASSERT_EQ(a.rows(), b.rows());
  EXPECT_TRUE(a.vec() == b.vec())
      << "preloaded .gpsy tables must fuse to bitwise-identical logits";
  std::filesystem::remove_all(p.dir);
}

// ---- quant table stream round-trip ----------------------------------------

TEST(QuantTables, StreamRoundTripIsLossless) {
  Rng rng(0x0A81, 5);
  std::vector<QuantLinearTables> tables;
  for (const auto& [in, out] : {std::pair<std::size_t, std::size_t>{24, 32},
                                {32, 48}, {48, 5}}) {
    std::vector<float> w(in * out);
    for (float& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    tables.push_back(nn::quantize_folded(w, in, out));
  }
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  nn::save_quant_tables(buf, tables);
  const std::vector<QuantLinearTables> back = nn::load_quant_tables(buf);
  ASSERT_EQ(back.size(), tables.size());
  for (std::size_t i = 0; i < tables.size(); ++i) {
    EXPECT_EQ(back[i].in, tables[i].in);
    EXPECT_EQ(back[i].out, tables[i].out);
    EXPECT_TRUE(back[i].scales == tables[i].scales);
    EXPECT_TRUE(back[i].qweight == tables[i].qweight);
  }
}

}  // namespace
}  // namespace gp
