// Unit tests for the open-set biometric-statistics descriptor (the novelty
// space used for unauthorized-user rejection). Kept separate from the
// system-level open-set tests because these need no trained models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "system/open_set.hpp"

namespace gp {
namespace {

GestureCloud make_cloud(std::size_t points, double extent, double speed,
                        std::size_t frames = 20, double z_offset = 0.0) {
  GestureCloud cloud;
  cloud.num_frames = frames;
  Rng rng(points * 131 + static_cast<std::size_t>(extent * 1000));
  for (std::size_t i = 0; i < points; ++i) {
    RadarPoint p;
    p.position = Vec3(rng.uniform(-extent / 2, extent / 2), 1.2 + rng.uniform(-0.1, 0.1),
                      z_offset + rng.uniform(-extent / 2, extent / 2));
    p.velocity = (rng.bernoulli(0.5) ? 1.0 : -1.0) * speed;
    p.frame = static_cast<int>(i % frames);
    cloud.points.push_back(p);
  }
  return cloud;
}

TEST(BiometricStats, EncodesDurationExtentAndSpeed) {
  const BiometricStats s = biometric_stats(make_cloud(100, 0.4, 0.8, 24));
  EXPECT_NEAR(s[0], 24.0 / 30.0, 1e-9);        // duration channel
  EXPECT_NEAR(s[1], 0.4, 0.08);                // x extent
  EXPECT_NEAR(s[4], 0.8, 1e-6);                // mean |v|
  EXPECT_NEAR(s[5], 0.0, 1e-6);                // constant-speed cloud
  EXPECT_NEAR(s[6], 100.0 / 300.0, 1e-9);      // density channel
}

TEST(BiometricStats, SeparatesDifferentMotionStyles) {
  // Larger/faster motion -> measurably different descriptor.
  const BiometricStats small_slow = biometric_stats(make_cloud(80, 0.3, 0.5));
  const BiometricStats big_fast = biometric_stats(make_cloud(80, 0.7, 1.4));
  EXPECT_GT(big_fast[1], small_slow[1]);
  EXPECT_GT(big_fast[4], small_slow[4]);
}

TEST(BiometricStats, HeightProfileTracksTrajectory) {
  // A rising trajectory: later time bins sit higher.
  GestureCloud cloud;
  cloud.num_frames = 20;
  for (int f = 0; f < 20; ++f) {
    for (int i = 0; i < 5; ++i) {
      RadarPoint p;
      p.position = Vec3(0.0, 1.2, -0.3 + 0.03 * f);
      p.velocity = 0.5;
      p.frame = f;
      cloud.points.push_back(p);
    }
  }
  const BiometricStats s = biometric_stats(cloud);
  EXPECT_LT(s[8], s[9]);
  EXPECT_LT(s[9], s[10]);
  EXPECT_LT(s[10], s[11]);
}

TEST(BiometricStats, EmptyCloudThrows) {
  GestureCloud empty;
  EXPECT_THROW(biometric_stats(empty), InvalidArgument);
}

TEST(BiometricStats, DeterministicForSameCloud) {
  const GestureCloud cloud = make_cloud(60, 0.5, 0.9);
  const BiometricStats a = biometric_stats(cloud);
  const BiometricStats b = biometric_stats(cloud);
  for (std::size_t d = 0; d < kBiometricDims; ++d) EXPECT_DOUBLE_EQ(a[d], b[d]);
}

}  // namespace
}  // namespace gp
