// Thread-count determinism: the contract of gp::exec is that every result
// produced through it is bitwise-identical whether the work runs on 1
// thread or 8. These tests exercise the parallelised layers — NN kernels,
// dataset synthesis, training, and replica inference — with explicit
// ExecContext(1) vs ExecContext(8) (the GP_THREADS=1 vs GP_THREADS=8
// configurations, pinned in-process so one binary checks both).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "datasets/catalog.hpp"
#include "datasets/dataset.hpp"
#include "gesidnet/gesidnet.hpp"
#include "gesidnet/trainer.hpp"
#include "health/slo.hpp"
#include "nn/tensor.hpp"
#include "serve/server.hpp"

namespace gp {
namespace {

DatasetSpec small_spec() {
  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 2;
  DatasetSpec spec = gestureprint_spec(0, scale);
  spec.gestures.resize(3);
  return spec;
}

// Field-wise exact comparison (EXPECT_EQ on doubles is bitwise-equivalent
// for non-NaN values; memcmp would also compare struct padding).
void expect_identical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t s = 0; s < a.samples.size(); ++s) {
    const GestureSample& sa = a.samples[s];
    const GestureSample& sb = b.samples[s];
    EXPECT_EQ(sa.user, sb.user) << "sample " << s;
    EXPECT_EQ(sa.gesture, sb.gesture) << "sample " << s;
    EXPECT_EQ(sa.distance, sb.distance) << "sample " << s;
    EXPECT_EQ(sa.speed, sb.speed) << "sample " << s;
    EXPECT_EQ(sa.active_frames, sb.active_frames) << "sample " << s;
    EXPECT_EQ(sa.cloud.num_frames, sb.cloud.num_frames) << "sample " << s;
    EXPECT_EQ(sa.cloud.first_frame, sb.cloud.first_frame) << "sample " << s;
    EXPECT_EQ(sa.cloud.duration_s, sb.cloud.duration_s) << "sample " << s;
    ASSERT_EQ(sa.cloud.points.size(), sb.cloud.points.size()) << "sample " << s;
    for (std::size_t p = 0; p < sa.cloud.points.size(); ++p) {
      const RadarPoint& pa = sa.cloud.points[p];
      const RadarPoint& pb = sb.cloud.points[p];
      EXPECT_EQ(pa.position.x, pb.position.x) << "sample " << s << " point " << p;
      EXPECT_EQ(pa.position.y, pb.position.y) << "sample " << s << " point " << p;
      EXPECT_EQ(pa.position.z, pb.position.z) << "sample " << s << " point " << p;
      EXPECT_EQ(pa.velocity, pb.velocity) << "sample " << s << " point " << p;
      EXPECT_EQ(pa.snr_db, pb.snr_db) << "sample " << s << " point " << p;
      EXPECT_EQ(pa.frame, pb.frame) << "sample " << s << " point " << p;
    }
  }
}

TEST(Determinism, DatasetSynthesisIsThreadCountInvariant) {
  exec::ExecContext serial(1);
  exec::ExecContext wide(8);
  const DatasetSpec spec = small_spec();
  const Dataset a = generate_dataset(spec, serial);
  const Dataset b = generate_dataset(spec, wide);
  ASSERT_GT(a.samples.size(), 0u);
  expect_identical(a, b);
}

TEST(Determinism, DatasetSynthesisIsRepeatable) {
  exec::ExecContext wide(8);
  const DatasetSpec spec = small_spec();
  expect_identical(generate_dataset(spec, wide), generate_dataset(spec, wide));
}

TEST(Determinism, MatmulKernelsAreThreadCountInvariant) {
  exec::ExecContext serial(1);
  exec::ExecContext wide(8);
  Rng rng(99);
  // Big enough to clear the inline-below-threshold heuristic.
  nn::Tensor a(96, 160);
  a.randn(rng, 1.0);
  nn::Tensor b(160, 64);
  b.randn(rng, 1.0);
  nn::Tensor out_s, out_w;
  nn::matmul(a, b, out_s, serial);
  nn::matmul(a, b, out_w, wide);
  EXPECT_TRUE(out_s.vec() == out_w.vec());

  nn::Tensor bt(64, 160);
  bt.randn(rng, 1.0);
  nn::matmul_bt(a, bt, out_s, serial);
  nn::matmul_bt(a, bt, out_w, wide);
  EXPECT_TRUE(out_s.vec() == out_w.vec());

  nn::Tensor at(160, 96);
  at.randn(rng, 1.0);
  nn::matmul_at(at, b, out_s, serial);
  nn::matmul_at(at, b, out_w, wide);
  EXPECT_TRUE(out_s.vec() == out_w.vec());
}

// --- training determinism on a tiny synthetic task -------------------------

FeaturizedSample synth_sample(int label, Rng& rng, std::size_t points = 24) {
  FeaturizedSample s;
  s.num_points = points;
  s.dims = 7;
  const double offset = label == 0 ? -0.25 : 0.25;
  const double velocity = label == 0 ? 0.1 : 0.8;
  for (std::size_t i = 0; i < points; ++i) {
    const double x = offset + rng.gaussian(0.0, 0.08);
    const double y = rng.gaussian(0.0, 0.08);
    const double z = rng.gaussian(0.0, 0.08);
    s.positions.insert(s.positions.end(),
                       {static_cast<float>(x), static_cast<float>(y), static_cast<float>(z)});
    s.features.insert(
        s.features.end(),
        {static_cast<float>(x), static_cast<float>(y), static_cast<float>(z),
         static_cast<float>(velocity + rng.gaussian(0.0, 0.05)), 0.5f,
         static_cast<float>(rng.uniform()), 0.6f});
  }
  return s;
}

GesIDNetConfig tiny_config() {
  GesIDNetConfig config;
  config.num_classes = 2;
  config.sa1_centroids = 8;
  config.sa1_scales = {{0.3, 4, {8, 12}}, {0.6, 6, {12, 16}}};
  config.sa2_centroids = 4;
  config.sa2_scales = {{0.5, 3, {16, 20}}};
  config.level1_mlp = {24, 32};
  config.level2_mlp = {32, 40};
  config.head1_hidden = 16;
  config.head2_hidden = 16;
  return config;
}

// Full training run with 1 vs 8 threads: every epoch loss must match
// bitwise and the trained models must emit bitwise-identical logits.
TEST(Determinism, TrainingLossIsThreadCountInvariant) {
  LabeledSamples data;
  {
    Rng rng(5);
    for (std::size_t i = 0; i < 12; ++i) {
      data.push(synth_sample(0, rng), 0);
      data.push(synth_sample(1, rng), 1);
    }
  }
  TrainConfig train_config;
  train_config.epochs = 2;
  train_config.batch_size = 6;
  train_config.seed = 7;

  const auto run = [&](exec::ExecContext& ctx) {
    Rng rng(31);
    GesIDNet model(tiny_config(), rng);
    TrainStats stats = train_classifier(model, data, train_config, ctx);
    nn::Tensor logits = predict_logits(model, data.samples, train_config.batch_size, ctx);
    return std::make_pair(std::move(stats), std::move(logits));
  };

  exec::ExecContext serial(1);
  exec::ExecContext wide(8);
  auto [stats_s, logits_s] = run(serial);
  auto [stats_w, logits_w] = run(wide);

  ASSERT_EQ(stats_s.epoch_loss.size(), stats_w.epoch_loss.size());
  for (std::size_t e = 0; e < stats_s.epoch_loss.size(); ++e) {
    EXPECT_EQ(stats_s.epoch_loss[e], stats_w.epoch_loss[e]) << "epoch " << e;  // exact
  }
  EXPECT_EQ(stats_s.train_accuracy, stats_w.train_accuracy);
  EXPECT_TRUE(logits_s.vec() == logits_w.vec());
}

// --- int8 quantized inference must be bitwise repeatable -------------------

// GP_QUANT=int8 keeps the determinism contract: the integer kernel's int32
// accumulation is exact, so two identically-trained models fused with
// QuantMode::kInt8 emit bitwise-identical logits, independent of thread
// count (the serial fused-inference fallback notwithstanding, predict_logits
// is exercised at both 1 and 8 threads).
TEST(Determinism, QuantizedInferenceIsBitwiseRepeatable) {
  LabeledSamples data;
  {
    Rng rng(5);
    for (std::size_t i = 0; i < 12; ++i) {
      data.push(synth_sample(0, rng), 0);
      data.push(synth_sample(1, rng), 1);
    }
  }
  TrainConfig train_config;
  train_config.epochs = 2;
  train_config.batch_size = 6;
  train_config.seed = 7;

  const auto train_fused = [&] {
    exec::ExecContext ctx(2);
    Rng rng(31);
    auto model = std::make_unique<GesIDNet>(tiny_config(), rng);
    train_classifier(*model, data, train_config, ctx);
    model->fuse_for_inference(nn::QuantMode::kInt8);
    return model;
  };

  const auto a = train_fused();
  const auto b = train_fused();
  exec::ExecContext serial(1);
  exec::ExecContext wide(8);
  const nn::Tensor la = predict_logits(*a, data.samples, 6, serial);
  const nn::Tensor lb = predict_logits(*b, data.samples, 6, wide);
  ASSERT_EQ(la.rows(), lb.rows());
  ASSERT_EQ(la.cols(), lb.cols());
  EXPECT_TRUE(la.vec() == lb.vec())
      << "int8 fused inference must be bitwise repeatable across runs/threads";

  // And repeatable on the same model instance (the member scratch rows must
  // not leak state between forward calls).
  const nn::Tensor lc = predict_logits(*a, data.samples, 6, serial);
  EXPECT_TRUE(la.vec() == lc.vec());
}

// --- serve: health observation must be invisible to results ----------------

// gp::health observes the serve stack but never feeds it: the same streams
// pushed through servers with health fully off vs fully on (SLO evaluator +
// flight recorder armed) must produce bitwise-identical ServeResults for 1
// and 8 threads. Runs registry-less — every segment gets the typed no-model
// abstention — so the whole admission → segmentation → featurization →
// micro-batch path is exercised without paying for a training run.
TEST(Determinism, ServeResultsInvariantToHealthMonitoring) {
  const DatasetSpec spec = small_spec();
  std::vector<ContinuousRecording> streams;
  for (std::size_t s = 0; s < 2; ++s) {
    streams.push_back(generate_recording(spec, s, {0, 1}, 0xD7 + s));
  }

  GesturePrintConfig system_config;
  serve::ModelRegistry registry(system_config);  // nothing published, on purpose

  const auto run = [&](bool health_on, std::size_t threads) {
    serve::ServeConfig sc;
    sc.system = system_config;
    sc.shards = 2;
    sc.batch_wait_us = 0;
    sc.health.enabled = health_on;
    sc.health.flightrec = health_on;
    if (health_on) {
      sc.health.slo = health::SloSpec::parse("no_model_rate<2,window=16t");
    }
    exec::ExecContext ctx(threads);
    serve::Server server(sc, registry, ctx);
    std::vector<serve::ServeResult> results;
    std::size_t max_frames = 0;
    for (const ContinuousRecording& r : streams) {
      max_frames = std::max(max_frames, r.frames.size());
    }
    for (std::size_t f = 0; f < max_frames; ++f) {
      for (std::size_t i = 0; i < streams.size(); ++i) {
        if (f >= streams[i].frames.size()) continue;
        (void)server.push_frame(static_cast<std::uint64_t>(i + 1), streams[i].frames[f]);
      }
      for (serve::ServeResult& r : server.pump()) results.push_back(std::move(r));
    }
    for (serve::ServeResult& r : server.drain()) results.push_back(std::move(r));
    std::sort(results.begin(), results.end(), [](const auto& a, const auto& b) {
      return a.session_id != b.session_id ? a.session_id < b.session_id
                                          : a.segment_ordinal < b.segment_ordinal;
    });
    return results;
  };

  std::vector<serve::ServeResult> reference;
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    for (bool health_on : {false, true}) {
      auto results = run(health_on, threads);
      ASSERT_GT(results.size(), 0u);
      if (reference.empty()) {
        reference = std::move(results);
        continue;
      }
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " health=" + (health_on ? "on" : "off"));
      ASSERT_EQ(reference.size(), results.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(reference[i].session_id, results[i].session_id);
        EXPECT_EQ(reference[i].segment_ordinal, results[i].segment_ordinal);
        EXPECT_EQ(reference[i].request_id, results[i].request_id);
        EXPECT_EQ(reference[i].gesture, results[i].gesture);
        EXPECT_EQ(reference[i].user, results[i].user);
        EXPECT_EQ(reference[i].abstained, results[i].abstained);
        EXPECT_EQ(reference[i].quality_rejected, results[i].quality_rejected);
        EXPECT_EQ(reference[i].gesture_margin, results[i].gesture_margin);  // bitwise
        EXPECT_EQ(reference[i].user_margin, results[i].user_margin);
        EXPECT_EQ(reference[i].model_version, results[i].model_version);
      }
    }
  }
}

// Replica-based parallel inference must agree bitwise with the serial path.
TEST(Determinism, PredictLogitsReplicasMatchSerial) {
  std::vector<FeaturizedSample> samples;
  {
    Rng rng(17);
    for (std::size_t i = 0; i < 22; ++i) samples.push_back(synth_sample(static_cast<int>(i % 2), rng));
  }
  Rng rng(41);
  GesIDNet model(tiny_config(), rng);  // infer() runs in eval mode

  exec::ExecContext serial(1);
  exec::ExecContext wide(8);
  // Small batches so the parallel path actually uses several lanes.
  const nn::Tensor a = predict_logits(model, samples, /*batch_size=*/4, serial);
  const nn::Tensor b = predict_logits(model, samples, /*batch_size=*/4, wide);
  ASSERT_EQ(a.rows(), samples.size());
  EXPECT_TRUE(a.vec() == b.vec());
}

}  // namespace
}  // namespace gp
