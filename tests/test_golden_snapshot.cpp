// Golden-snapshot regression over the radar→pipeline→GesIDNet stack.
//
// One deterministic mini-pipeline is pushed end to end — radar config,
// kinematic scene, full FMCW chain, fast geometric backend, segmentation,
// featurization, dataset synthesis, trained-net logits — and each stage's
// quantised digest + summary stats are compared against the committed
// goldens under tests/golden/. On drift the diff names the FIRST divergent
// stage (the stage where a refactor started bending the physics) and shows
// per-stat old→new deltas.
//
// Update workflow: run this binary with --update-golden (or
// GP_UPDATE_GOLDEN=1), review the printed diff, commit the regenerated
// files. GP_GOLDEN_DIR overrides the golden directory (defaults to the
// source-tree tests/golden via the GP_GOLDEN_DEFAULT_DIR compile def).
//
// Also pinned here: the *schemas* of the machine-readable artifacts
// (REPORT_*.json from obs, BENCH_latency_stages.json / BENCH_parallel.json
// from the bench harness) — value drift is invisible, added/removed/retyped
// fields are not.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "datasets/catalog.hpp"
#include "datasets/dataset.hpp"
#include "datasets/prep.hpp"
#include "exec/exec.hpp"
#include "gesidnet/gesidnet.hpp"
#include "gesidnet/trainer.hpp"
#include "health/health.hpp"
#include "health/slo.hpp"
#include "kinematics/gesture_spec.hpp"
#include "kinematics/performer.hpp"
#include "obs/bench_json.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "pipeline/preprocessor.hpp"
#include "radar/fast_backend.hpp"
#include "radar/frontend.hpp"
#include "testkit/golden.hpp"
#include "testkit/snapshot.hpp"

namespace gp {
namespace {

testkit::GoldenConfig g_golden;  // initialised in main()

// ---- the pinned mini-pipeline ---------------------------------------------

DatasetSpec small_spec() {
  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 2;
  DatasetSpec spec = gestureprint_spec(0, scale);
  spec.gestures.resize(3);
  return spec;
}

GesIDNetConfig tiny_config(int num_classes) {
  GesIDNetConfig config;
  config.num_classes = num_classes;
  config.sa1_centroids = 8;
  config.sa1_scales = {{0.3, 4, {8, 12}}, {0.6, 6, {12, 16}}};
  config.sa2_centroids = 4;
  config.sa2_scales = {{0.5, 3, {16, 20}}};
  config.level1_mlp = {24, 32};
  config.level2_mlp = {32, 40};
  config.head1_hidden = 16;
  config.head2_hidden = 16;
  return config;
}

/// Builds the full pipeline snapshot. All randomness comes from fixed
/// (seed, stream) Rngs; `ctx` carries the thread count, which must not
/// change a single bit (asserted by SnapshotIsThreadCountInvariant).
/// `fast_config` is a parameter so the first-divergent-stage test can
/// perturb one radar constant and watch exactly one stage drift.
testkit::Snapshot build_pipeline_snapshot(exec::ExecContext& ctx,
                                          const FastBackendConfig& fast_config = {}) {
  testkit::Snapshot snap;

  const RadarConfig radar;  // paper §VI-A IWR1443 defaults
  snap.add(testkit::summarize_radar_config("radar.config", radar));

  Rng user_rng(2024, 1);
  const UserProfile user = UserProfile::sample(0, user_rng);
  const GesturePerformer performer(user, PerformanceConfig{});
  const std::vector<GestureSpec> gestures = asl_gesture_set();
  Rng scene_rng(2024, 2);
  const SceneSequence scene = performer.perform(gestures.front(), scene_rng);
  snap.add(testkit::summarize_scene("kinematics.scene", scene));

  Rng full_rng(2024, 3);
  const FrameSequence full_frames = process_scene(radar, scene, full_rng);
  snap.add(testkit::summarize_frames("radar.full_chain", full_frames));

  Rng fast_rng(2024, 4);
  const FrameSequence fast_frames = fast_process_scene(radar, fast_config, scene, fast_rng);
  snap.add(testkit::summarize_frames("radar.fast_backend", fast_frames));

  const Preprocessor preprocessor;
  const GestureCloud cloud = preprocessor.process_segment(full_frames);
  snap.add(testkit::summarize_gesture_cloud("pipeline.segment", cloud));

  Rng feat_rng(2024, 5);
  const FeaturizedSample features = featurize(cloud, FeatureConfig{}, feat_rng);
  snap.add(testkit::summarize_features("pipeline.featurize", features));

  const Dataset dataset = generate_dataset(small_spec(), ctx);
  snap.add(testkit::summarize_dataset("datasets.synthesis", dataset));

  Rng prep_rng(2024, 6);
  const LabeledSamples labeled = prepare_subset(dataset, all_indices(dataset),
                                                LabelKind::kGesture, PrepConfig{}, prep_rng);
  TrainConfig train_config;
  train_config.epochs = 1;
  train_config.batch_size = 8;
  train_config.seed = 7;
  Rng net_rng(2024, 7);
  GesIDNet model(tiny_config(static_cast<int>(dataset.num_gestures())), net_rng);
  train_classifier(model, labeled, train_config, ctx);
  const nn::Tensor logits = predict_logits(model, labeled.samples, train_config.batch_size, ctx);
  snap.add(testkit::summarize_tensor("gesidnet.logits", logits));

  return snap;
}

TEST(GoldenSnapshot, PipelineMatchesGolden) {
  exec::ExecContext ctx(4);
  const testkit::Snapshot snap = build_pipeline_snapshot(ctx);
  const testkit::GoldenOutcome outcome = testkit::check_golden(g_golden, "pipeline", snap);
  if (outcome.updated) std::cout << outcome.message;
  EXPECT_TRUE(outcome.ok) << outcome.message;
}

// The acceptance bar from the gp::exec contract: the snapshot — including
// parallel dataset synthesis and parallel training — is bitwise identical
// for GP_THREADS in {1, 4, 8}.
TEST(GoldenSnapshot, SnapshotIsThreadCountInvariant) {
  exec::ExecContext t1(1), t4(4), t8(8);
  const std::string s1 = testkit::to_text(build_pipeline_snapshot(t1));
  const std::string s4 = testkit::to_text(build_pipeline_snapshot(t4));
  const std::string s8 = testkit::to_text(build_pipeline_snapshot(t8));
  EXPECT_EQ(s1, s4);
  EXPECT_EQ(s1, s8);
}

// Perturb one radar constant (the fast backend's reference SNR) and verify
// the diff machinery pins the drift on exactly that stage: everything
// upstream matches, radar.fast_backend is named as first divergent, and the
// report carries usable stat deltas.
TEST(GoldenSnapshot, PerturbedRadarConstantNamesFirstDivergentStage) {
  exec::ExecContext ctx(2);
  const testkit::Snapshot baseline = build_pipeline_snapshot(ctx);
  FastBackendConfig perturbed;
  perturbed.snr_ref_db += 3.0;
  const testkit::Snapshot drifted = build_pipeline_snapshot(ctx, perturbed);

  const testkit::SnapshotDiff diff = testkit::diff_snapshots(baseline, drifted);
  ASSERT_FALSE(diff.identical());
  EXPECT_EQ(diff.first_divergent_stage, "radar.fast_backend");
  ASSERT_EQ(diff.drifted.size(), 1u);  // only the perturbed stage moves
  EXPECT_NE(diff.report().find("radar.fast_backend"), std::string::npos);
  EXPECT_NE(diff.report().find("mean_snr_db"), std::string::npos);
}

TEST(GoldenSnapshot, TextRoundTripIsLossless) {
  exec::ExecContext ctx(2);
  const testkit::Snapshot snap = build_pipeline_snapshot(ctx);
  const testkit::Snapshot reparsed = testkit::parse_text(testkit::to_text(snap));
  EXPECT_TRUE(testkit::diff_snapshots(snap, reparsed).identical());
  EXPECT_EQ(testkit::to_text(snap), testkit::to_text(reparsed));
}

// ---- machine-readable artifact schemas ------------------------------------

TEST(GoldenSnapshot, RunReportSchemaMatchesGolden) {
  obs::set_metrics_enabled(true);
  // Touch one counter, one histogram and one stage so every report section
  // has at least one exemplar row for the schema walk to descend into.
  GP_COUNTER_ADD("gp.golden.exemplar", 1);
  obs::histogram("gp.golden.exemplar_ms").observe(1.0);
  // Serve-layer exemplars: counter/gauge/histogram names are JSON object
  // keys in the report, so touching every gp.serve.* metric the serving
  // stack emits pins those key paths in the schema golden.
  GP_COUNTER_ADD("gp.serve.frames", 1);
  GP_COUNTER_ADD("gp.serve.segments", 1);
  GP_COUNTER_ADD("gp.serve.batches", 1);
  GP_COUNTER_ADD("gp.serve.batches.quant", 1);
  GP_COUNTER_ADD("gp.serve.rejected.queue_full", 1);
  GP_COUNTER_ADD("gp.serve.rejected.quality", 1);
  GP_COUNTER_ADD("gp.serve.shed.stale", 1);
  GP_COUNTER_ADD("gp.serve.no_model", 1);
  GP_COUNTER_ADD("gp.serve.model.swaps", 1);
  GP_COUNTER_ADD("gp.serve.model.load_failures", 1);
  obs::gauge("gp.serve.model.version").set(1.0);
  obs::gauge("gp.serve.model.quant").set(0.0);
  obs::gauge("gp.serve.sessions").set(1.0);
  obs::gauge("gp.serve.pending_segments").set(0.0);
  obs::histogram("gp.serve.batch.size").observe(1.0);
  obs::histogram("gp.serve.batch.latency_us").observe(100.0);
  // Health-section exemplars (gp::health, DESIGN.md §10): the monitor's
  // close_tick publishes these; touching them by name pins the health
  // metric key paths in the report schema.
  GP_COUNTER_ADD("gp.health.ticks", 1);
  GP_COUNTER_ADD("gp.health.requests", 1);
  GP_COUNTER_ADD("gp.health.slo.breaches", 1);
  GP_COUNTER_ADD("gp.health.verdict.flips", 1);
  GP_COUNTER_ADD("gp.health.flightrec.events", 1);
  obs::gauge("gp.health.verdict").set(0.0);
  obs::gauge("gp.health.p99_us").set(100.0);
  obs::gauge("gp.health.shed_rate").set(0.0);
  // gp.mem.* needs no touching here: write_run_report_json calls
  // obs::publish_mem_metrics(), which registers every bridged counter and
  // gauge (pool hit/miss, arena blocks/recycled/high-water) by name — their
  // key paths are pinned below like any other metric.
  std::ostringstream out;
  obs::write_run_report_json(out, "golden");
  const obs::json::Value doc = obs::json::parse(out.str());

  testkit::Snapshot snap;
  snap.add(testkit::summarize_json_schema("obs.report_schema", doc));
  const testkit::GoldenOutcome outcome =
      testkit::check_golden(g_golden, "report_schema", snap);
  if (outcome.updated) std::cout << outcome.message;
  EXPECT_TRUE(outcome.ok) << outcome.message;
}

TEST(GoldenSnapshot, BenchJsonSchemasMatchGolden) {
  obs::set_metrics_enabled(true);
  obs::Histogram& h = obs::histogram("gp.golden.bench_ms");
  for (int i = 1; i <= 8; ++i) h.observe(0.5 * i);
  obs::StageSnapshot stage;
  stage.name = "golden.stage";
  stage.histogram = h.snapshot();
  stage.min_depth = 0;

  // Serve-tick exemplar rows (bench/sec6b5_latency.cpp): the cold/steady
  // memory profile of the zero-copy frame path, values arbitrary.
  obs::ServeTickProfile cold;
  cold.phase = "cold";
  cold.ticks = 142;
  cold.p50_ms = 0.01;
  cold.p95_ms = 0.5;
  cold.p99_ms = 9.0;
  cold.allocs_per_tick = 180.0;
  obs::ServeTickProfile steady = cold;
  steady.phase = "steady";
  steady.allocs_per_tick = 0.0;

  const std::string latency = obs::latency_stages_json(
      8, {{"preprocessing", h.snapshot()}, {"end_to_end", h.snapshot()}}, {stage},
      {cold, steady});
  const std::string parallel = obs::parallel_sweep_json(
      8, {1, 2, 4}, {{"gemm_kernel", {10.0, 6.0, 4.0}}, {"train_epoch", {20.0, 12.0, 8.0}}});

  testkit::Snapshot snap;
  snap.add(testkit::summarize_json_schema("bench.latency_stages_schema",
                                          obs::json::parse(latency)));
  snap.add(testkit::summarize_json_schema("bench.parallel_schema",
                                          obs::json::parse(parallel)));
  const testkit::GoldenOutcome outcome =
      testkit::check_golden(g_golden, "bench_schemas", snap);
  if (outcome.updated) std::cout << outcome.message;
  EXPECT_TRUE(outcome.ok) << outcome.message;
}

TEST(GoldenSnapshot, FaultSweepSchemaMatchesGolden) {
  // Exemplar BENCH_faults.json (bench/fault_sweep.cpp): two families, two
  // severities, values arbitrary — only the key-path set is pinned.
  obs::FaultSweepRow row;
  row.severity = 0.5;
  row.frames_in = 100;
  row.frames_delivered = 80;
  row.frames_dropped = 20;
  row.ghost_points = 7;
  row.points_removed = 13;
  row.segments = 5;
  row.classified = 4;
  row.abstained = 1;
  row.correct = 3;
  const std::string faults = obs::fault_sweep_json(
      0.1, {0.0, 0.5},
      {{"frame_drop", {obs::FaultSweepRow{}, row}}, {"mixed", {row}}});

  testkit::Snapshot snap;
  snap.add(testkit::summarize_json_schema("bench.faults_schema",
                                          obs::json::parse(faults)));
  const testkit::GoldenOutcome outcome =
      testkit::check_golden(g_golden, "bench_faults_schema", snap);
  if (outcome.updated) std::cout << outcome.message;
  EXPECT_TRUE(outcome.ok) << outcome.message;
}

TEST(GoldenSnapshot, ServeBenchSchemaMatchesGolden) {
  // Exemplar BENCH_serve.json (bench/serve_bench.cpp): the key-path set of
  // the serving-throughput artifact, values arbitrary.
  obs::ServeBaselineRow baseline;
  baseline.sessions = 8;
  baseline.segments = 45;
  baseline.ms = 330.0;
  obs::ServeSweepCell cell;
  cell.sessions = 8;
  cell.batch_max = 8;
  cell.quant = "int8";
  cell.segments = 45;
  cell.results = 45;
  cell.batches = 41;
  cell.abstained = 2;
  cell.ms = 104.0;
  cell.speedup = 3.17;
  obs::ServeQuantSummary quant;
  quant.measured = true;
  quant.f32_forward_ms = 12.0;
  quant.int8_forward_ms = 10.0;
  quant.forward_speedup = 1.2;
  quant.serve_speedup = 1.1;
  quant.argmax_mismatches = 0;
  const std::string serve = obs::serve_bench_json(
      {1, 8}, {1, 8}, {baseline}, {obs::ServeSweepCell{}, cell}, quant);

  testkit::Snapshot snap;
  snap.add(testkit::summarize_json_schema("bench.serve_schema",
                                          obs::json::parse(serve)));
  const testkit::GoldenOutcome outcome =
      testkit::check_golden(g_golden, "bench_serve_schema", snap);
  if (outcome.updated) std::cout << outcome.message;
  EXPECT_TRUE(outcome.ok) << outcome.message;
}

TEST(GoldenSnapshot, GemmBenchSchemaMatchesGolden) {
  // Exemplar BENCH_gemm.json (bench/gemm_bench.cpp): blocked-kernel vs
  // naive-reference rows plus the int8 fused-layer row, values arbitrary.
  obs::GemmBenchRow mm;
  mm.kernel = "matmul";
  mm.m = 64;
  mm.k = 96;
  mm.n = 128;
  mm.ref_ms = 4.0;
  mm.opt_ms = 1.0;
  mm.speedup = 4.0;
  mm.gflops = 1.5;
  mm.check = "bitwise";
  obs::GemmBenchRow bt = mm;
  bt.kernel = "matmul_bt";
  bt.check = "band";
  const std::string gemm = obs::gemm_bench_json(1, {mm, bt});

  testkit::Snapshot snap;
  snap.add(testkit::summarize_json_schema("bench.gemm_schema",
                                          obs::json::parse(gemm)));
  const testkit::GoldenOutcome outcome =
      testkit::check_golden(g_golden, "bench_gemm_schema", snap);
  if (outcome.updated) std::cout << outcome.message;
  EXPECT_TRUE(outcome.ok) << outcome.message;
}

TEST(GoldenSnapshot, HealthJsonSchemasMatchGolden) {
  obs::set_metrics_enabled(true);
  // Exemplar health snapshot: a HealthMonitor driven through one loaded
  // tick so every optional section (slo verdict, exemplar, version mix) is
  // populated and its key paths land in the schema.
  health::HealthConfig config;
  config.flightrec = false;
  config.slo = health::SloSpec::parse("p99_ms<5,shed_rate<0.05,window=4t");
  health::HealthMonitor monitor(config, /*batch_max=*/8);
  monitor.on_frame_admitted();
  monitor.on_frame_admitted();
  monitor.on_frame_rejected();
  health::RequestSample sample;
  sample.request_id = 42;
  sample.session_id = 1;
  sample.ordinal = 0;
  sample.total_us = 900;
  sample.stage_us[static_cast<std::size_t>(health::Stage::kForward)] = 900;
  monitor.record_request(sample, /*abstained=*/true, /*quality_rejected=*/false,
                         /*no_model=*/false, /*model_version=*/3);
  monitor.record_batch(1, 3);
  monitor.close_tick(1);
  const std::string snapshot_json = monitor.snapshot().to_json();

  // Exemplar BENCH_health.json (bench/health_bench.cpp): values arbitrary,
  // only the key-path set is pinned.
  obs::HealthBenchRow off;
  off.mode = "off";
  off.ticks = 40;
  off.results = 36;
  off.p50_us = 52.0;
  off.p95_us = 410.0;
  off.p99_us = 2200.0;
  obs::HealthBenchRow on = off;
  on.mode = "on";
  on.p50_us = 52.5;
  const std::string bench = obs::health_bench_json(5, 40, {off, on}, 0.9, true,
                                                   "healthy", 0, 17);

  testkit::Snapshot snap;
  snap.add(testkit::summarize_json_schema("health.snapshot_schema",
                                          obs::json::parse(snapshot_json)));
  snap.add(testkit::summarize_json_schema("bench.health_schema",
                                          obs::json::parse(bench)));
  const testkit::GoldenOutcome outcome =
      testkit::check_golden(g_golden, "bench_health_schema", snap);
  if (outcome.updated) std::cout << outcome.message;
  EXPECT_TRUE(outcome.ok) << outcome.message;
}

TEST(GoldenSnapshot, ClusterBenchSchemaMatchesGolden) {
  // Exemplar BENCH_cluster.json (bench/cluster_bench.cpp): the key-path set
  // of the crash-tolerance artifact, values arbitrary.
  obs::ClusterSweepCell cell;
  cell.workers = 2;
  cell.frames = 540;
  cell.results = 9;
  cell.rpc_calls = 730;
  cell.rpc_attempts = 730;
  cell.checkpoints = 22;
  cell.ms = 880.0;
  cell.bitwise_vs_single = true;
  obs::ClusterFailoverSummary failover;
  failover.measured = true;
  failover.workers = 2;
  failover.evictions = 1;
  failover.migrations = 2;
  failover.respawns = 1;
  failover.results = 9;
  failover.shed = 0;
  failover.ms = 950.0;
  failover.bitwise_identical = true;
  const std::string bench =
      obs::cluster_bench_json(3, {1, 2, 3}, {obs::ClusterSweepCell{}, cell}, failover);

  testkit::Snapshot snap;
  snap.add(testkit::summarize_json_schema("bench.cluster_schema",
                                          obs::json::parse(bench)));
  const testkit::GoldenOutcome outcome =
      testkit::check_golden(g_golden, "bench_cluster_schema", snap);
  if (outcome.updated) std::cout << outcome.message;
  EXPECT_TRUE(outcome.ok) << outcome.message;
}

TEST(GoldenSnapshot, EnrollBenchSchemaMatchesGolden) {
  // Exemplar BENCH_enroll.json (bench/enroll_bench.cpp): the key-path set of
  // the enrollment-as-a-service artifact, values arbitrary.
  obs::EnrollOpenSetRow before;
  before.phase = "before";
  before.eer = 0.21;
  before.threshold = 2.4;
  before.genuine_accept = 0.95;
  before.newcomer_reject = 0.88;
  obs::EnrollOpenSetRow after = before;
  after.phase = "after";
  after.eer = 0.04;
  after.newcomer_reject = 0.1;
  obs::EnrollServeSummary serve;
  serve.ticks = 160;
  serve.results = 9;
  serve.expected_results = 9;
  serve.novelty_rejections = 6;
  serve.candidates_founded = 1;
  serve.fine_tunes = 1;
  serve.users_enrolled = 1;
  serve.published_version = 2;
  obs::EnrollLatencySummary to_live;
  to_live.count = 1;
  to_live.p50_ms = 850.0;
  to_live.p95_ms = 850.0;
  to_live.p99_ms = 850.0;
  const std::string bench = obs::enroll_bench_json(4, 4, {before, after}, serve, to_live);

  testkit::Snapshot snap;
  snap.add(testkit::summarize_json_schema("bench.enroll_schema",
                                          obs::json::parse(bench)));
  const testkit::GoldenOutcome outcome =
      testkit::check_golden(g_golden, "bench_enroll_schema", snap);
  if (outcome.updated) std::cout << outcome.message;
  EXPECT_TRUE(outcome.ok) << outcome.message;
}

}  // namespace
}  // namespace gp

#ifndef GP_GOLDEN_DEFAULT_DIR
#define GP_GOLDEN_DEFAULT_DIR ""
#endif

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  gp::g_golden = gp::testkit::golden_config_from_env(argc, argv, GP_GOLDEN_DEFAULT_DIR);
  if (gp::g_golden.update) {
    std::cout << "golden update mode: regenerating " << gp::g_golden.dir << "/*.golden\n";
  }
  return RUN_ALL_TESTS();
}
