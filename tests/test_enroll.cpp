// gp::enroll tests (DESIGN.md §13): candidate clustering bitwise invariant
// to GP_THREADS × shard count, typed buffer eviction, fingerprint-bound GPEB
// round-trips, the K-threshold → head-only fine-tune → zero-drop hot-swap
// publish path, disabled-path identity, and a GP_FAULTS mixed soak with zero
// uncaught exceptions.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "datasets/catalog.hpp"
#include "enroll/enroll.hpp"
#include "eval/splits.hpp"
#include "exec/exec.hpp"
#include "faults/faults.hpp"
#include "gesidnet/trainer.hpp"
#include "serve/server.hpp"
#include "system/gestureprint.hpp"
#include "system/open_set.hpp"

namespace gp {
namespace {

/// Shared world: one small trained + saved system, its training split (the
/// enrollment calibration set), genuine client streams, and a *newcomer*
/// stream from a disjoint cohort (different user_seed → different body and
/// habits) the open-set gate should reject.
struct EnrollWorld {
  GesturePrintConfig config;
  std::string model_path;
  DatasetSpec spec;
  Dataset dataset;
  std::vector<std::size_t> train;
  std::vector<ContinuousRecording> genuine;   ///< enrolled performers
  ContinuousRecording newcomer;               ///< unseen performer
};

const EnrollWorld& world() {
  static const EnrollWorld* w = [] {
    auto* out = new EnrollWorld();
    DatasetScale scale;
    scale.max_users = 3;
    scale.reps = 8;
    out->spec = gestureprint_spec(1, scale);
    out->spec.gestures.resize(3);
    out->dataset = generate_dataset(out->spec);

    out->config.training.epochs = 6;
    out->config.training.batch_size = 16;
    out->config.prep.augmentation.copies = 2;
    out->config.abstain_margin = 0.0;  // identity answered for every segment

    GesturePrintSystem system(out->config);
    Rng split_rng(3, 1);
    out->train = stratified_split(out->dataset.gesture_labels(), 0.2, split_rng).train;
    system.fit(out->dataset, out->train);
    out->model_path = testing::TempDir() + "gp_enroll_model.gpsy";
    system.save(out->model_path);

    const std::vector<std::vector<int>> scripts{{0, 2, 1}, {1, 0, 2}};
    for (std::size_t s = 0; s < scripts.size(); ++s) {
      out->genuine.push_back(
          generate_recording(out->spec, s % out->spec.num_users, scripts[s], 0xE9E11 + s));
    }
    DatasetSpec stranger = out->spec;
    stranger.user_seed = 987654;  // a body the system never saw
    out->newcomer =
        generate_recording(stranger, 0, {0, 1, 2, 0, 2, 1, 0, 1}, 0x57A6E);
    return out;
  }();
  return *w;
}

serve::ServeConfig base_config(std::size_t shards, bool enroll_enabled) {
  serve::ServeConfig sc;
  sc.system = world().config;
  sc.shards = shards;
  sc.batch_wait_us = 0;  // flush every pump: deterministic batching for tests
  sc.enroll.enabled = enroll_enabled;
  sc.enroll.k_segments = 3;
  return sc;
}

enroll::EnrollmentServiceConfig service_config(const serve::ServeConfig& sc,
                                               const std::string& publish_dir) {
  enroll::EnrollmentServiceConfig ec;
  ec.admission = sc.enroll;
  ec.base_model_path = world().model_path;
  ec.publish_dir = publish_dir;
  ec.fine_tune_epochs = 2;
  return ec;
}

/// Streams sessions {1..genuine} plus the newcomer as the last session id,
/// interleaved frame-by-frame, with `hook` armed. Returns results in flush
/// order (the hot-swap audit needs it); sort at the call site if needed.
std::vector<serve::ServeResult> run_enroll_stream(const serve::ServeConfig& sc,
                                                  serve::ModelRegistry& registry,
                                                  serve::EnrollmentHook* hook,
                                                  exec::ExecContext& ctx,
                                                  std::uint64_t* ticks = nullptr) {
  serve::Server server(sc, registry, ctx);
  if (hook != nullptr) server.set_enrollment_hook(hook);
  std::vector<const FrameSequence*> streams;
  for (const ContinuousRecording& r : world().genuine) streams.push_back(&r.frames);
  streams.push_back(&world().newcomer.frames);
  std::size_t max_frames = 0;
  for (const FrameSequence* f : streams) max_frames = std::max(max_frames, f->size());

  std::vector<serve::ServeResult> results;
  for (std::size_t f = 0; f < max_frames; ++f) {
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (f >= streams[i]->size()) continue;
      EXPECT_EQ(server.push_frame(i + 1, (*streams[i])[f]), serve::Admission::kAccepted);
    }
    for (serve::ServeResult& r : server.pump()) results.push_back(std::move(r));
  }
  for (serve::ServeResult& r : server.drain()) results.push_back(std::move(r));
  if (ticks != nullptr) *ticks = server.ticks();
  return results;
}

std::vector<serve::ServeResult> sorted_by_stream(std::vector<serve::ServeResult> results) {
  std::sort(results.begin(), results.end(), [](const auto& a, const auto& b) {
    return a.session_id != b.session_id ? a.session_id < b.session_id
                                        : a.segment_ordinal < b.segment_ordinal;
  });
  return results;
}

enroll::EnrollObservation make_obs(std::uint64_t session, std::uint64_t ordinal,
                                   double x, int gesture = 0) {
  enroll::EnrollObservation obs;
  obs.session_id = session;
  obs.ordinal = ordinal;
  obs.gesture = gesture;
  obs.normalized.fill(x);
  obs.raw.fill(x);
  return obs;
}

// ---- EnrollmentBuffer unit battery ----------------------------------------

// A full candidate buffer evicts its *oldest* segment, typed; the table at
// cap evicts the *weakest* candidate (fewest live segments), typed. Nothing
// grows unbounded under an adversarial stream.
TEST(EnrollBuffer, TypedEvictionAtBothBounds) {
  enroll::EnrollmentBuffer::Config config;
  config.max_candidates = 2;
  config.buffer_cap = 3;
  config.candidate_radius = 1.0;
  enroll::EnrollmentBuffer buffer(config);

  // Fill candidate A past its cap: oldest segment out, typed.
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto outcome = buffer.admit(make_obs(1, i, 0.0));
    EXPECT_EQ(outcome.eviction, enroll::Eviction::kNone);
  }
  const auto overflow = buffer.admit(make_obs(1, 3, 0.0));
  EXPECT_EQ(overflow.eviction, enroll::Eviction::kSegmentOldest);
  ASSERT_EQ(buffer.candidates().size(), 1u);
  EXPECT_EQ(buffer.candidates()[0].segments.size(), 3u);
  EXPECT_EQ(buffer.candidates()[0].segments.front().ordinal, 1u);  // oldest gone

  // Two more candidates: the third founding evicts the weakest (B, 1 live
  // segment vs A's 3).
  const auto b = buffer.admit(make_obs(2, 0, 10.0));
  EXPECT_TRUE(b.founded);
  const auto c = buffer.admit(make_obs(3, 0, 20.0));
  EXPECT_TRUE(c.founded);
  EXPECT_EQ(c.eviction, enroll::Eviction::kCandidateWeakest);
  ASSERT_EQ(buffer.candidates().size(), 2u);
  EXPECT_EQ(buffer.candidates()[0].id, 1u);  // A survived
  EXPECT_EQ(buffer.candidates()[1].id, c.candidate_id);

  const auto& stats = buffer.stats();
  EXPECT_EQ(stats.admitted, 6u);
  EXPECT_EQ(stats.founded, 3u);
  EXPECT_EQ(stats.evicted_segments, 2u);  // 1 oldest + B's only segment
  EXPECT_EQ(stats.evicted_candidates, 1u);
}

// Nearby observations join the same candidate (running-mean centroid);
// distant ones found a new one.
TEST(EnrollBuffer, NearestCentroidAssignmentWithinRadius) {
  enroll::EnrollmentBuffer::Config config;
  config.candidate_radius = 2.0;
  enroll::EnrollmentBuffer buffer(config);
  const auto a0 = buffer.admit(make_obs(1, 0, 0.0));
  const auto a1 = buffer.admit(make_obs(1, 1, 0.1));
  const auto b0 = buffer.admit(make_obs(2, 0, 5.0));
  EXPECT_TRUE(a0.founded);
  EXPECT_FALSE(a1.founded);
  EXPECT_EQ(a1.candidate_id, a0.candidate_id);
  EXPECT_TRUE(b0.founded);
  ASSERT_EQ(buffer.candidates().size(), 2u);
  // Running mean: centroid tracks the admitted observations.
  EXPECT_DOUBLE_EQ(buffer.candidates()[0].centroid[0], 0.05);
}

// GPEB round-trip: byte-identical re-save, and a blob bound to a different
// calibration fingerprint is typed corruption.
TEST(EnrollBuffer, RoundTripIsFingerprintBound) {
  enroll::EnrollmentBuffer::Config config;
  config.candidate_radius = 2.0;
  enroll::EnrollmentBuffer buffer(config);
  Rng rng(0xB10B, 3);
  for (std::uint64_t i = 0; i < 6; ++i) {
    auto obs = make_obs(1 + i % 2, i, i % 2 == 0 ? 0.0 : 7.0, static_cast<int>(i % 3));
    obs.cloud.num_frames = 3;
    obs.cloud.duration_s = 0.3;
    for (int p = 0; p < 4; ++p) {
      RadarPoint point;
      point.position = {rng.uniform(-1, 1), rng.uniform(0.5, 1.5), rng.uniform(-1, 1)};
      point.velocity = rng.uniform(-2, 2);
      point.snr_db = rng.uniform(5, 25);
      point.frame = p;
      obs.cloud.points.push_back(point);
    }
    (void)buffer.admit(std::move(obs));
  }

  std::ostringstream out(std::ios::binary);
  buffer.save(out, /*params_fingerprint=*/0xFEEDu);
  std::istringstream in(out.str(), std::ios::binary);
  const enroll::EnrollmentBuffer restored = enroll::EnrollmentBuffer::load(in, 0xFEEDu);
  std::ostringstream again(std::ios::binary);
  restored.save(again, 0xFEEDu);
  EXPECT_EQ(out.str(), again.str());  // lossless round-trip
  EXPECT_EQ(restored.candidates().size(), buffer.candidates().size());
  EXPECT_EQ(restored.stats().admitted, buffer.stats().admitted);

  std::istringstream wrong(out.str(), std::ios::binary);
  EXPECT_THROW((void)enroll::EnrollmentBuffer::load(wrong, 0xBEEFu), SerializationError);
}

// ---- BiometricGallery -------------------------------------------------------

// Incremental enrollment under the frozen calibration: a descriptor that was
// novel stops being novel once enrolled; the threshold and the z-statistics
// (and with them every other sample's novelty) never move.
TEST(BiometricGallery, EnrollSampleShrinksNoveltyWithoutMovingCalibration) {
  Rng rng(0x6A11E24, 9);
  std::vector<BiometricStats> raw;
  std::vector<int> gestures;
  for (int i = 0; i < 16; ++i) {
    BiometricStats s{};
    for (std::size_t d = 0; d < kBiometricDims; ++d) s[d] = rng.uniform(1.0, 2.0);
    raw.push_back(s);
    gestures.push_back(i % 2);
  }
  BiometricGallery gallery;
  gallery.calibrate(raw, gestures);
  ASSERT_TRUE(gallery.calibrated());

  BiometricStats outsider{};
  for (std::size_t d = 0; d < kBiometricDims; ++d) outsider[d] = 5.0;
  const double before = gallery.novelty(0, outsider);
  EXPECT_FALSE(gallery.accepts(before));

  const double threshold = gallery.threshold();
  const double peer = gallery.novelty(0, raw[0]);
  // Enrollment lands K segments, not one: the k-NN novelty average needs a
  // small cluster of the newcomer's own samples before it can anchor them.
  for (int k = 0; k < 3; ++k) {
    BiometricStats jittered = outsider;
    for (std::size_t d = 0; d < kBiometricDims; ++d) jittered[d] += 0.01 * k;
    gallery.enroll_sample(0, jittered);
  }
  EXPECT_EQ(gallery.threshold(), threshold);       // calibration frozen
  EXPECT_EQ(gallery.novelty(0, raw[0]), peer);     // existing geometry intact
  const double after = gallery.novelty(0, outsider);
  EXPECT_LT(after, before);
  EXPECT_TRUE(gallery.accepts(after));  // their own samples now anchor them

  // GPBG round-trip: byte-identical re-save.
  std::ostringstream out(std::ios::binary);
  gallery.save(out);
  std::istringstream in(out.str(), std::ios::binary);
  const BiometricGallery restored = BiometricGallery::load(in);
  std::ostringstream again(std::ios::binary);
  restored.save(again);
  EXPECT_EQ(out.str(), again.str());
  EXPECT_EQ(restored.threshold(), gallery.threshold());
  EXPECT_EQ(restored.novelty(0, outsider), after);
}

// ---- the serve-integrated battery ------------------------------------------

void expect_results_bitwise_equal(const std::vector<serve::ServeResult>& a,
                                  const std::vector<serve::ServeResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].session_id, b[i].session_id);
    EXPECT_EQ(a[i].segment_ordinal, b[i].segment_ordinal);
    EXPECT_EQ(a[i].gesture, b[i].gesture);
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].abstained, b[i].abstained);
    EXPECT_EQ(a[i].quality_rejected, b[i].quality_rejected);
    EXPECT_EQ(a[i].novelty_rejected, b[i].novelty_rejected);
    EXPECT_EQ(a[i].gesture_margin, b[i].gesture_margin);  // bitwise doubles
    EXPECT_EQ(a[i].user_margin, b[i].user_margin);
  }
}

/// Digest of the candidate-buffer state for cross-run comparison: ids,
/// centroids (bitwise), and the exact (session, ordinal) evidence lists.
std::string buffer_digest(const enroll::EnrollmentBuffer& buffer) {
  std::ostringstream out;
  out.precision(17);
  for (const enroll::Candidate& c : buffer.candidates()) {
    out << "candidate " << c.id << " admitted=" << c.admitted << " centroid=[";
    for (double v : c.centroid) out << v << ",";
    out << "] segments=";
    for (const enroll::EnrollObservation& obs : c.segments) {
      out << "(" << obs.session_id << "," << obs.ordinal << "," << obs.gesture << ")";
    }
    out << "\n";
  }
  const auto& stats = buffer.stats();
  out << "admitted=" << stats.admitted << " founded=" << stats.founded
      << " evicted_seg=" << stats.evicted_segments
      << " evicted_cand=" << stats.evicted_candidates << "\n";
  return out.str();
}

// Candidate clustering is a pure function of the per-session streams: the
// buffered candidate state (and the gated results) must be bitwise identical
// for GP_THREADS in {1,4} × shards in {1,4}. K is set above the stream's
// rejection count so no fine-tune fires — this pins the admission layer
// alone.
TEST(Enroll, CandidateClusteringDeterministicAcrossThreadsAndShards) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());

  std::vector<serve::ServeResult> ref_results;
  std::string ref_digest;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      exec::ExecContext ctx(threads);
      serve::ServeConfig sc = base_config(shards, /*enroll_enabled=*/true);
      sc.enroll.k_segments = 1000;  // admission only, never trigger
      enroll::EnrollmentService service(service_config(sc, testing::TempDir()), registry);
      service.calibrate(world().dataset, world().train);
      auto results = sorted_by_stream(run_enroll_stream(sc, registry, &service, ctx));
      const std::string digest = buffer_digest(service.buffer());
      ASSERT_GT(service.stats().novelty_rejections, 0u)
          << "the newcomer stream never tripped the gate — the battery is inert";
      if (ref_digest.empty()) {
        ref_results = std::move(results);
        ref_digest = digest;
      } else {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " shards=" + std::to_string(shards));
        expect_results_bitwise_equal(ref_results, results);
        EXPECT_EQ(ref_digest, digest);
      }
    }
  }
}

// With enrollment disabled (GP_ENROLL=0 semantics: default EnrollConfig),
// results are bitwise identical whether or not a hook is armed, and segments
// carry no biometric payload — the pre-enrollment serve path is untouched.
TEST(Enroll, DisabledPathIsBitwiseIdentical) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());
  exec::ExecContext ctx(2);

  const serve::ServeConfig off = base_config(2, /*enroll_enabled=*/false);
  const auto plain = sorted_by_stream(run_enroll_stream(off, registry, nullptr, ctx));

  // Armed hook, disabled config: gate() must never be consulted (the
  // sessions layer populated no biometrics), so the results cannot move.
  enroll::EnrollmentService service(service_config(off, testing::TempDir()), registry);
  service.calibrate(world().dataset, world().train);
  const auto armed = sorted_by_stream(run_enroll_stream(off, registry, &service, ctx));
  expect_results_bitwise_equal(plain, armed);
  EXPECT_EQ(service.stats().novelty_rejections, 0u);
  EXPECT_EQ(service.buffer().total_segments(), 0u);
  for (const serve::ServeResult& r : plain) EXPECT_FALSE(r.novelty_rejected);

  // Enabled enrollment gates only the *user* decision: the recognition half
  // (gesture + margin) of every result is bitwise unchanged.
  serve::ServeConfig on = base_config(2, /*enroll_enabled=*/true);
  on.enroll.k_segments = 1000;
  enroll::EnrollmentService gated(service_config(on, testing::TempDir()), registry);
  gated.calibrate(world().dataset, world().train);
  const auto with = sorted_by_stream(run_enroll_stream(on, registry, &gated, ctx));
  ASSERT_EQ(plain.size(), with.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].gesture, with[i].gesture);
    EXPECT_EQ(plain[i].gesture_margin, with[i].gesture_margin);
    if (!with[i].novelty_rejected) {
      EXPECT_EQ(plain[i].user, with[i].user);
      EXPECT_EQ(plain[i].user_margin, with[i].user_margin);
    } else {
      EXPECT_EQ(with[i].user, kAbstain);
      EXPECT_TRUE(with[i].abstained);
    }
  }
}

// The tentpole end to end: the newcomer's rejected segments accumulate to K,
// a head-only fine-tune widens the user head, and the new .gpsy goes live
// through the registry hot-swap — with zero dropped ticks (result count
// matches the enrollment-free run), a monotonic audited model_version flip,
// and an EnrolledUser audit record.
TEST(Enroll, KThresholdFineTunesAndHotSwapsLosslessly) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());
  ASSERT_EQ(registry.version(), 1u);
  exec::ExecContext ctx(2);

  // Reference: same streams, no enrollment — pins the expected result count.
  const serve::ServeConfig off = base_config(2, /*enroll_enabled=*/false);
  const std::size_t expected = run_enroll_stream(off, registry, nullptr, ctx).size();

  serve::ServeConfig sc = base_config(2, /*enroll_enabled=*/true);
  // One unknown person is streaming; biometric descriptors are gesture-
  // dependent, so a wide radius folds all their segments into one candidate.
  sc.enroll.candidate_radius = 1e6;
  const std::string publish_dir = testing::TempDir() + "gp_enroll_pub";
  std::filesystem::create_directories(publish_dir);
  enroll::EnrollmentService service(service_config(sc, publish_dir), registry);
  service.calibrate(world().dataset, world().train);

  std::uint64_t ticks = 0;
  const auto results = run_enroll_stream(sc, registry, &service, ctx, &ticks);
  EXPECT_EQ(results.size(), expected) << "enrollment dropped results mid-swap";

  const enroll::EnrollmentService::Stats stats = service.stats();
  ASSERT_GE(stats.novelty_rejections, sc.enroll.k_segments)
      << "the newcomer stream never accumulated K rejections";
  ASSERT_GE(stats.fine_tunes_started, 1u);
  ASSERT_GE(stats.users_enrolled, 1u);
  EXPECT_EQ(stats.fine_tunes_failed, 0u);
  EXPECT_GT(registry.version(), 1u);  // the widened head went live
  EXPECT_EQ(stats.last_publish_version, registry.version());

  // Audit trail: the record names the published version and consumed
  // candidate; the served snapshot grew by the enrolled users.
  const auto enrolled = service.enrolled();
  ASSERT_EQ(enrolled.size(), stats.users_enrolled);
  EXPECT_EQ(enrolled.front().user_id, static_cast<int>(world().spec.num_users));
  EXPECT_GE(enrolled.front().model_version, 2u);
  EXPECT_GT(enrolled.front().tick, 0u);
  ASSERT_NE(registry.current(), nullptr);
  EXPECT_EQ(registry.current()->num_users(),
            world().spec.num_users + stats.users_enrolled);

  // Version flip audited in flush order: monotonic, both generations served.
  std::uint64_t last = 0;
  bool saw_base = false, saw_enrolled_version = false;
  for (const serve::ServeResult& r : results) {
    EXPECT_GE(r.model_version, last);
    last = r.model_version;
    saw_base = saw_base || r.model_version == 1;
    saw_enrolled_version = saw_enrolled_version || r.model_version > 1;
  }
  EXPECT_TRUE(saw_base);
  EXPECT_TRUE(saw_enrolled_version) << "no segment was answered by the widened head";

  // The enrolled person's biometrics joined the gallery: replaying their
  // stream now passes the gate (their own samples anchor the novelty score).
  serve::Server replay_server(sc, registry, ctx);
  replay_server.set_enrollment_hook(&service);
  const std::uint64_t rejections_before_replay = service.stats().novelty_rejections;
  for (const FrameCloud& frame : world().newcomer.frames) {
    (void)replay_server.push_frame(99, frame);
    (void)replay_server.pump();
  }
  (void)replay_server.drain();
  EXPECT_LT(service.stats().novelty_rejections - rejections_before_replay,
            sc.enroll.k_segments)
      << "the enrolled person still trips the gate often enough to re-enroll";
}

// GP_FAULTS mixed soak with enrollment armed: severely degraded links feed
// the gate garbage-adjacent segments; the contract is typed answers and
// deterministic candidate state — zero uncaught exceptions.
TEST(Enroll, FaultStormSoakZeroUncaughtExceptions) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());
  exec::ExecContext ctx(2);

  serve::ServeConfig sc = base_config(2, /*enroll_enabled=*/true);
  sc.enroll.k_segments = 1000;  // admission-layer soak
  sc.session_faults = faults::FaultConfig::mixed(1.0);

  enroll::EnrollmentService service(service_config(sc, testing::TempDir()), registry);
  service.calibrate(world().dataset, world().train);
  std::vector<serve::ServeResult> results;
  ASSERT_NO_THROW(results = sorted_by_stream(run_enroll_stream(sc, registry, &service, ctx)));
  for (const serve::ServeResult& r : results) {
    EXPECT_TRUE(r.gesture >= 0 || r.gesture == kAbstain);
    EXPECT_TRUE(r.user >= 0 || r.user == kAbstain);
  }
  const std::string digest = buffer_digest(service.buffer());

  enroll::EnrollmentService again_service(service_config(sc, testing::TempDir()), registry);
  again_service.calibrate(world().dataset, world().train);
  std::vector<serve::ServeResult> again;
  ASSERT_NO_THROW(again =
                      sorted_by_stream(run_enroll_stream(sc, registry, &again_service, ctx)));
  expect_results_bitwise_equal(results, again);
  EXPECT_EQ(digest, buffer_digest(again_service.buffer()));
}

// widen_users + fine_tune_user_heads primitives: the widened system
// round-trips through .gpsy (num_users is read from the file), keeps
// existing users' decision boundaries bitwise, and trains head-only.
TEST(Enroll, WidenedHeadRoundTripsAndPreservesKnownUsers) {
  GesturePrintSystem system(world().config);
  ASSERT_TRUE(system.try_load(world().model_path));
  const std::size_t base_users = system.num_users();

  // Pre-widen answers on a few held-out clouds.
  std::vector<InferenceResult> before;
  for (std::size_t i = 0; i < 4; ++i) {
    before.push_back(system.classify(world().dataset.samples[i * 5].cloud));
  }

  const int new_user = system.widen_users(/*seed=*/0x51DE);
  EXPECT_EQ(new_user, static_cast<int>(base_users));
  EXPECT_EQ(system.num_users(), base_users + 1);
  for (std::size_t i = 0; i < before.size(); ++i) {
    const InferenceResult after = system.classify(world().dataset.samples[i * 5].cloud);
    EXPECT_EQ(after.gesture, before[i].gesture);  // gesture model untouched
    EXPECT_EQ(after.user, before[i].user) << "widening moved a known user's answer";
  }

  const std::string path = testing::TempDir() + "gp_enroll_widened.gpsy";
  system.save(path);
  GesturePrintSystem restored(world().config);
  ASSERT_TRUE(restored.try_load(path));
  EXPECT_EQ(restored.num_users(), base_users + 1);
  for (std::size_t i = 0; i < before.size(); ++i) {
    const InferenceResult a = system.classify(world().dataset.samples[i * 5].cloud);
    const InferenceResult b = restored.classify(world().dataset.samples[i * 5].cloud);
    EXPECT_EQ(a.gesture, b.gesture);
    EXPECT_EQ(a.user, b.user);
  }
}

}  // namespace
}  // namespace gp
