// Exact-vs-numeric gradient checks for every layer and for the composite
// blocks GesIDNet is assembled from (set abstraction, group-all, attention
// fusion). These are the strongest correctness guarantees in the NN stack:
// a wrong backward pass silently degrades every experiment, so each is
// verified against central finite differences.
#include <gtest/gtest.h>

#include "gesidnet/fusion.hpp"
#include "gesidnet/set_abstraction.hpp"
#include "nn/grad_check.hpp"
#include "nn/loss.hpp"

namespace gp {
namespace {

using nn::GradCheckResult;
using nn::Tensor;

Tensor random_input(std::size_t rows, std::size_t cols, Rng& rng, double scale = 1.0) {
  Tensor x(rows, cols);
  x.randn(rng, scale);
  return x;
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  nn::Linear layer(5, 7, rng);
  const GradCheckResult result = nn::grad_check(layer, random_input(4, 5, rng), true);
  EXPECT_TRUE(result.passed()) << "input err " << result.max_input_error << " param err "
                               << result.max_param_error;
}

TEST(GradCheck, ReLUAwayFromKink) {
  Rng rng(2);
  nn::ReLU layer;
  // Keep inputs away from zero where ReLU is non-differentiable.
  Tensor x = random_input(4, 6, rng, 1.0);
  for (auto& v : x.vec()) {
    if (std::fabs(v) < 0.05f) v = 0.2f;
  }
  const GradCheckResult result = nn::grad_check(layer, x, true);
  EXPECT_TRUE(result.passed()) << result.max_input_error;
}

TEST(GradCheck, BatchNormTraining) {
  Rng rng(3);
  nn::BatchNorm1d layer(4, rng);
  const GradCheckResult result =
      nn::grad_check(layer, random_input(8, 4, rng), true, 1e-3, 5e-2);
  EXPECT_TRUE(result.passed()) << "input err " << result.max_input_error << " param err "
                               << result.max_param_error;
}

TEST(GradCheck, BatchNormInference) {
  Rng rng(4);
  nn::BatchNorm1d layer(3, rng);
  // Populate running stats first.
  for (int i = 0; i < 10; ++i) layer.forward(random_input(16, 3, rng), true);
  const GradCheckResult result = nn::grad_check(layer, random_input(5, 3, rng), false);
  EXPECT_TRUE(result.passed()) << result.max_input_error;
}

TEST(GradCheck, SequentialMlp) {
  Rng rng(5);
  auto mlp = nn::make_mlp(4, {6, 5}, rng, /*batch_norm=*/false);
  const GradCheckResult result = nn::grad_check(*mlp, random_input(6, 4, rng), true);
  EXPECT_TRUE(result.passed()) << "input err " << result.max_input_error << " param err "
                               << result.max_param_error;
}

TEST(GradCheck, SequentialMlpWithBatchNorm) {
  Rng rng(6);
  auto mlp = nn::make_mlp(3, {5}, rng, /*batch_norm=*/true);
  const GradCheckResult result =
      nn::grad_check(*mlp, random_input(8, 3, rng), true, 1e-3, 5e-2);
  EXPECT_TRUE(result.passed(0.01)) << "input err " << result.max_input_error << " param err "
                                   << result.max_param_error;
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  // Direct check of dL/dlogits against finite differences of the scalar loss.
  Rng rng(7);
  Tensor logits = random_input(5, 4, rng, 2.0);
  const std::vector<int> labels{0, 3, 1, 2, 2};
  const nn::LossResult analytic = nn::softmax_cross_entropy(logits, labels);

  const auto loss_fn = [&labels](const Tensor& l) {
    return nn::softmax_cross_entropy(l, labels).loss;
  };
  const double err = nn::scalar_grad_check(loss_fn, logits, analytic.grad, 1e-3);
  EXPECT_LT(err, 2e-3);
}

// ---- composite GesIDNet blocks -------------------------------------------

// Wraps SetAbstraction as a Layer over its feature input (positions fixed)
// so the generic checker can drive it.
class SetAbstractionAdapter : public nn::Layer {
 public:
  SetAbstractionAdapter(SetAbstraction& sa, const Tensor& positions, std::size_t batch,
                        std::size_t num_points)
      : sa_(sa), positions_(positions), batch_(batch), num_points_(num_points) {}

  Tensor forward(const Tensor& input, bool training) override {
    BatchedCloud cloud;
    cloud.batch = batch_;
    cloud.num_points = num_points_;
    cloud.positions = positions_;
    cloud.features = input;
    return sa_.forward(cloud, training).features;
  }
  Tensor backward(const Tensor& grad_output) override { return sa_.backward(grad_output); }
  std::vector<nn::Parameter*> parameters() override { return sa_.parameters(); }

 private:
  SetAbstraction& sa_;
  Tensor positions_;
  std::size_t batch_;
  std::size_t num_points_;
};

TEST(GradCheck, SetAbstraction) {
  Rng rng(8);
  constexpr std::size_t batch = 2;
  constexpr std::size_t points = 12;
  constexpr std::size_t channels = 4;

  SetAbstraction sa(4, channels, {{0.6, 4, {5}}, {1.2, 6, {6}}}, rng, "sa_test");
  const Tensor positions = random_input(batch * points, 3, rng, 0.3);
  SetAbstractionAdapter adapter(sa, positions, batch, points);

  const GradCheckResult result =
      nn::grad_check(adapter, random_input(batch * points, channels, rng), true, 1e-4, 2e-2);
  EXPECT_TRUE(result.passed(0.02)) << "input err " << result.max_input_error << " param err "
                                   << result.max_param_error << " bad "
                                   << result.input_bad + result.param_bad << "/"
                                   << result.input_checked + result.param_checked;
}

class GroupAllAdapter : public nn::Layer {
 public:
  GroupAllAdapter(GroupAll& ga, const Tensor& positions, std::size_t batch,
                  std::size_t num_points)
      : ga_(ga), positions_(positions), batch_(batch), num_points_(num_points) {}

  Tensor forward(const Tensor& input, bool training) override {
    BatchedCloud cloud;
    cloud.batch = batch_;
    cloud.num_points = num_points_;
    cloud.positions = positions_;
    cloud.features = input;
    return ga_.forward(cloud, training);
  }
  Tensor backward(const Tensor& grad_output) override { return ga_.backward(grad_output); }
  std::vector<nn::Parameter*> parameters() override { return ga_.parameters(); }

 private:
  GroupAll& ga_;
  Tensor positions_;
  std::size_t batch_;
  std::size_t num_points_;
};

TEST(GradCheck, GroupAll) {
  Rng rng(9);
  constexpr std::size_t batch = 3;
  constexpr std::size_t points = 8;
  GroupAll ga(5, {6}, rng, "ga_test");
  const Tensor positions = random_input(batch * points, 3, rng, 0.4);
  GroupAllAdapter adapter(ga, positions, batch, points);
  const GradCheckResult result =
      nn::grad_check(adapter, random_input(batch * points, 5, rng), true, 1e-4, 2e-2);
  EXPECT_TRUE(result.passed(0.02)) << "input err " << result.max_input_error << " param err "
                                   << result.max_param_error << " bad "
                                   << result.input_bad + result.param_bad << "/"
                                   << result.input_checked + result.param_checked;
}

// Fusion has two inputs; check each by holding the other fixed.
class FusionAdapter : public nn::Layer {
 public:
  FusionAdapter(AttentionFusion& fusion, Tensor fixed, bool vary_resized)
      : fusion_(fusion), fixed_(std::move(fixed)), vary_resized_(vary_resized) {}

  Tensor forward(const Tensor& input, bool /*training*/) override {
    return vary_resized_ ? fusion_.forward(input, fixed_) : fusion_.forward(fixed_, input);
  }
  Tensor backward(const Tensor& grad_output) override {
    auto grads = fusion_.backward(grad_output);
    return vary_resized_ ? grads.resized : grads.native;
  }
  std::vector<nn::Parameter*> parameters() override { return fusion_.parameters(); }

 private:
  AttentionFusion& fusion_;
  Tensor fixed_;
  bool vary_resized_;
};

TEST(GradCheck, AttentionFusionResizedInput) {
  Rng rng(10);
  AttentionFusion fusion(6, rng, "fusion_test");
  FusionAdapter adapter(fusion, random_input(4, 6, rng), /*vary_resized=*/true);
  const GradCheckResult result = nn::grad_check(adapter, random_input(4, 6, rng), true, 1e-3);
  EXPECT_TRUE(result.passed()) << "input err " << result.max_input_error << " param err "
                               << result.max_param_error;
}

TEST(GradCheck, AttentionFusionNativeInput) {
  Rng rng(11);
  AttentionFusion fusion(5, rng, "fusion_test2");
  FusionAdapter adapter(fusion, random_input(3, 5, rng), /*vary_resized=*/false);
  const GradCheckResult result = nn::grad_check(adapter, random_input(3, 5, rng), true, 1e-3);
  EXPECT_TRUE(result.passed()) << "input err " << result.max_input_error << " param err "
                               << result.max_param_error;
}

TEST(Fusion, WeightsSumToOne) {
  Rng rng(12);
  AttentionFusion fusion(4, rng, "fw");
  Tensor a = random_input(6, 4, rng);
  Tensor b = random_input(6, 4, rng);
  const Tensor y = fusion.forward(a, b);
  EXPECT_EQ(y.rows(), 6u);
  const double w = fusion.mean_resized_weight();
  EXPECT_GT(w, 0.0);
  EXPECT_LT(w, 1.0);
}

TEST(Fusion, DegenerateEqualInputsPassThrough) {
  // If both inputs are identical, Y = s1 F + s2 F = F regardless of gates.
  Rng rng(13);
  AttentionFusion fusion(4, rng, "fd");
  Tensor f = random_input(3, 4, rng);
  const Tensor y = fusion.forward(f, f);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y.vec()[i], f.vec()[i], 1e-6);
}

}  // namespace
}  // namespace gp
