// Error-path coverage: every rejection the public API promises must be a
// *typed* gp::Error (or subclass), raised before any partial state or
// unbounded allocation. Covers RadarConfig validation, the pointcloud/io
// and serialize decoders (including regressions for the hardened
// length-prefix checks), the dataset cache (including the DESIGN.md §7
// quarantine-and-regenerate recovery), and eval/roc degenerate inputs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/serialize.hpp"
#include "datasets/cache.hpp"
#include "datasets/catalog.hpp"
#include "eval/roc.hpp"
#include "pointcloud/io.hpp"
#include "radar/config.hpp"
#include "system/gestureprint.hpp"
#include "testkit/oracle.hpp"
#include "testkit/seeds.hpp"

namespace gp {
namespace {

// ---- RadarConfig::validate: one test per guard ----------------------------

TEST(RadarConfigErrors, RejectsNonPositivePhysics) {
  RadarConfig config;
  config.carrier_hz = 0.0;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = RadarConfig{};
  config.range_resolution = -0.04;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = RadarConfig{};
  config.max_velocity = 0.0;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = RadarConfig{};
  config.frame_rate = -10.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(RadarConfigErrors, RejectsNonPowerOfTwoFftSizes) {
  RadarConfig config;
  config.num_samples = 300;  // not a power of two
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = RadarConfig{};
  config.num_chirps = 12;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = RadarConfig{};
  config.angle_fft_size = 48;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(RadarConfigErrors, RejectsDegenerateAntennaArrays) {
  RadarConfig config;
  config.num_azimuth_antennas = 1;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = RadarConfig{};
  config.num_elevation_antennas = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(RadarConfigErrors, DefaultConfigIsValid) {
  EXPECT_NO_THROW(RadarConfig{}.validate());
}

// ---- pointcloud/io: malformed recordings ----------------------------------

TEST(RecordingErrors, RejectsWrongTag) {
  std::istringstream in(std::string("XXXX\x01", 5), std::ios::binary);
  EXPECT_THROW(load_recording(in), SerializationError);
}

TEST(RecordingErrors, RejectsTruncatedStream) {
  std::string payload = testkit::recording_seed();
  payload.resize(payload.size() / 2);
  std::istringstream in(payload, std::ios::binary);
  EXPECT_THROW(load_recording(in), SerializationError);
}

// Regression for the hardened count validation: a huge frame count with no
// backing bytes must be rejected up front (before the reserve), not die in
// the allocator after.
TEST(RecordingErrors, RejectsHugeFrameCountBeforeAllocating) {
  std::string payload = testkit::recording_seed();
  const std::uint64_t huge = 1ULL << 62;
  for (int i = 0; i < 8; ++i) payload[5 + i] = static_cast<char>(huge >> (8 * i));
  std::istringstream in(payload, std::ios::binary);
  EXPECT_THROW(load_recording(in), SerializationError);
}

TEST(RecordingErrors, MissingFileIsNulloptNotError) {
  EXPECT_FALSE(load_recording_file("/nonexistent/gp_recording.gprc").has_value());
}

// ---- common/serialize: hardened reader regressions ------------------------

TEST(SerializeErrors, StringLengthBeyondStreamIsTyped) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out, "GPTT");
  writer.write_u32(0xFFFFFFFFu);  // string length prefix with no payload
  std::istringstream in(out.str(), std::ios::binary);
  BinaryReader reader(in, "GPTT");
  EXPECT_THROW(reader.read_string(), SerializationError);
}

TEST(SerializeErrors, VectorCountBeyondStreamIsTyped) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out, "GPTT");
  writer.write_u64(1ULL << 40);  // 1T floats "announced", zero present
  std::istringstream in(out.str(), std::ios::binary);
  BinaryReader reader(in, "GPTT");
  EXPECT_THROW(reader.read_f32_vector(), SerializationError);
}

TEST(SerializeErrors, ImplausibleCountFailsEvenIfCapFits) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out, "GPTT");
  writer.write_u64(std::numeric_limits<std::uint64_t>::max());
  std::istringstream in(out.str(), std::ios::binary);
  BinaryReader reader(in, "GPTT");
  EXPECT_THROW(reader.read_count(0, "thing"), SerializationError);
}

TEST(SerializeErrors, ValidVectorStillRoundTrips) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out, "GPTT");
  writer.write_f32_vector({1.0f, -2.5f, 3.25f});
  std::istringstream in(out.str(), std::ios::binary);
  BinaryReader reader(in, "GPTT");
  const auto v = reader.read_f32_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], -2.5f);
}

// ---- datasets/cache: corrupt and truncated payloads -----------------------

TEST(DatasetCacheErrors, TruncatedSampleBlockIsTyped) {
  std::string payload = testkit::dataset_seed();
  payload.resize(payload.size() - 24);
  std::istringstream in(payload, std::ios::binary);
  EXPECT_THROW(read_dataset(in, "<test>"), SerializationError);
}

TEST(DatasetCacheErrors, HugePointCountIsRejectedBeforeAllocating) {
  // Seed layout: tag(4) + version byte + schema u64 + name(u32 len + bytes)
  // + users u64 + gestures u64 + samples u64 + first cloud's point count.
  const std::string seed = testkit::dataset_seed();
  const std::size_t name_len = 9;  // "fuzz_seed"
  const std::size_t point_count_at = 4 + 1 + 8 + (4 + name_len) + 8 + 8 + 8;
  std::string payload = seed;
  ASSERT_GT(payload.size(), point_count_at + 8);
  const std::uint64_t huge = 1ULL << 61;
  for (int i = 0; i < 8; ++i) {
    payload[point_count_at + i] = static_cast<char>(huge >> (8 * i));
  }
  std::istringstream in(payload, std::ios::binary);
  EXPECT_THROW(read_dataset(in, "<test>"), SerializationError);
}

TEST(DatasetCacheErrors, ImplausiblePopulationIsTyped) {
  const std::string seed = testkit::dataset_seed();
  const std::size_t users_at = 4 + 1 + 8 + (4 + 9);  // u64 user count offset
  std::string payload = seed;
  const std::uint64_t huge = 500'000'000;
  for (int i = 0; i < 8; ++i) payload[users_at + i] = static_cast<char>(huge >> (8 * i));
  std::istringstream in(payload, std::ios::binary);
  EXPECT_THROW(read_dataset(in, "<test>"), SerializationError);
}

TEST(DatasetCacheErrors, SeedStillParsesCleanly) {
  std::istringstream in(testkit::dataset_seed(), std::ios::binary);
  const auto dataset = read_dataset(in, "<test>");
  ASSERT_TRUE(dataset.has_value());
  EXPECT_EQ(dataset->samples.size(), 4u);
  EXPECT_EQ(dataset->users.size(), 2u);
}

// ---- datasets/cache: quarantine-and-regenerate (DESIGN.md §7) -------------

/// Fresh per-test cache directory under the system temp dir.
std::string fresh_cache_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("gp_quarantine_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

DatasetSpec tiny_spec() {
  DatasetScale scale;
  scale.max_users = 2;
  scale.reps = 1;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(2);
  return spec;
}

TEST(DatasetCacheQuarantine, CorruptEntryIsQuarantinedAndRegenerated) {
  const std::string dir = fresh_cache_dir("regen");
  const DatasetSpec spec = tiny_spec();
  const std::string path = dir + "/" + dataset_cache_key(spec) + ".gpds";

  const Dataset original = generate_dataset_cached(spec, dir);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Truncate the entry to half its size: a guaranteed typed decode failure
  // (bit flips in the point payload could parse cleanly; truncation cannot).
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);

  const std::uint64_t warnings_before = log_emit_count(LogLevel::kWarn);
  const Dataset regenerated = generate_dataset_cached(spec, dir);

  // Exactly one warning: the quarantine notice, nothing else.
  EXPECT_EQ(log_emit_count(LogLevel::kWarn) - warnings_before, 1u);
  // The corrupt bytes survive aside for a post-mortem...
  const std::string quarantine = path + ".quarantine";
  ASSERT_TRUE(std::filesystem::exists(quarantine));
  EXPECT_EQ(std::filesystem::file_size(quarantine), full_size / 2);
  // ...while the cache entry is rebuilt in place and loads cleanly.
  ASSERT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(std::filesystem::file_size(path), full_size);
  ASSERT_TRUE(load_dataset(path).has_value());
  // Regeneration is deterministic: same spec, same dataset.
  EXPECT_EQ(testkit::exact_digest(regenerated), testkit::exact_digest(original));

  // A third call is a clean cache hit; the quarantine file is preserved
  // (evidence is never garbage-collected behind the operator's back).
  const std::uint64_t warnings_mid = log_emit_count(LogLevel::kWarn);
  (void)generate_dataset_cached(spec, dir);
  EXPECT_EQ(log_emit_count(LogLevel::kWarn), warnings_mid);
  EXPECT_TRUE(std::filesystem::exists(quarantine));

  std::filesystem::remove_all(dir);
}

TEST(DatasetCacheQuarantine, RepeatCorruptionReplacesOldQuarantine) {
  const std::string dir = fresh_cache_dir("repeat");
  const DatasetSpec spec = tiny_spec();
  const std::string path = dir + "/" + dataset_cache_key(spec) + ".gpds";

  (void)generate_dataset_cached(spec, dir);
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  (void)generate_dataset_cached(spec, dir);
  // Corrupt again, differently: the newest corruption wins the .quarantine
  // name instead of the rename failing against the existing file.
  std::filesystem::resize_file(path, full_size / 3);
  (void)generate_dataset_cached(spec, dir);
  ASSERT_TRUE(std::filesystem::exists(path + ".quarantine"));
  EXPECT_EQ(std::filesystem::file_size(path + ".quarantine"), full_size / 3);

  std::filesystem::remove_all(dir);
}

// ---- system/gestureprint: self-healing model load -------------------------

TEST(SystemModelQuarantine, TryLoadQuarantinesGarbageAndLeavesSystemUnfitted) {
  const std::string dir = fresh_cache_dir("model");
  const std::string path = dir + "/model.gpsy";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a GPSY model file, but it is long enough to carry "
           "something that looks like a checksum trailer";
  }

  GesturePrintSystem system;
  const std::uint64_t warnings_before = log_emit_count(LogLevel::kWarn);
  EXPECT_FALSE(system.try_load(path));
  EXPECT_FALSE(system.fitted());
  EXPECT_EQ(log_emit_count(LogLevel::kWarn) - warnings_before, 1u);
  // Corrupt file moved aside, not destroyed and not left in place.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));

  std::filesystem::remove_all(dir);
}

TEST(SystemModelQuarantine, TryLoadOnMissingFileIsSilentlyFalse) {
  GesturePrintSystem system;
  const std::uint64_t warnings_before = log_emit_count(LogLevel::kWarn);
  EXPECT_FALSE(system.try_load("/nonexistent/path/model.gpsy"));
  EXPECT_FALSE(system.fitted());
  // Cold start is not an anomaly: no warning.
  EXPECT_EQ(log_emit_count(LogLevel::kWarn), warnings_before);
}

// ---- eval/roc: degenerate inputs ------------------------------------------

TEST(RocErrors, EmptyScoreSetsAreRejected) {
  EXPECT_THROW(roc_from_scores({}, {0.1, 0.2}), InvalidArgument);
  EXPECT_THROW(roc_from_scores({0.9}, {}), InvalidArgument);
  EXPECT_THROW(roc_from_scores({}, {}), InvalidArgument);
}

TEST(RocErrors, EmptyCurveHasNoEer) {
  const RocCurve empty;
  EXPECT_THROW(empty.eer(), Error);
}

TEST(RocErrors, SingleClassProbabilitiesAreRejected) {
  // One user only: no impostor scores can exist, so the curve is undefined.
  nn::Tensor probabilities(3, 1, 1.0f);
  const std::vector<int> truth{0, 0, 0};
  EXPECT_THROW(roc_from_probabilities(probabilities, truth), InvalidArgument);
}

TEST(RocErrors, DegenerateButLegalScoresStillProduceACurve) {
  // All scores identical: legal input, must yield a finite curve, not UB.
  const RocCurve curve = roc_from_scores({0.5, 0.5}, {0.5, 0.5});
  EXPECT_FALSE(curve.points.empty());
  EXPECT_GE(curve.auc, 0.0);
  EXPECT_LE(curve.auc, 1.0);
}

}  // namespace
}  // namespace gp
