// Error-path coverage: every rejection the public API promises must be a
// *typed* gp::Error (or subclass), raised before any partial state or
// unbounded allocation. Covers RadarConfig validation, the pointcloud/io
// and serialize decoders (including regressions for the hardened
// length-prefix checks), the dataset cache, and eval/roc degenerate inputs.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "datasets/cache.hpp"
#include "eval/roc.hpp"
#include "pointcloud/io.hpp"
#include "radar/config.hpp"
#include "testkit/seeds.hpp"

namespace gp {
namespace {

// ---- RadarConfig::validate: one test per guard ----------------------------

TEST(RadarConfigErrors, RejectsNonPositivePhysics) {
  RadarConfig config;
  config.carrier_hz = 0.0;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = RadarConfig{};
  config.range_resolution = -0.04;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = RadarConfig{};
  config.max_velocity = 0.0;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = RadarConfig{};
  config.frame_rate = -10.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(RadarConfigErrors, RejectsNonPowerOfTwoFftSizes) {
  RadarConfig config;
  config.num_samples = 300;  // not a power of two
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = RadarConfig{};
  config.num_chirps = 12;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = RadarConfig{};
  config.angle_fft_size = 48;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(RadarConfigErrors, RejectsDegenerateAntennaArrays) {
  RadarConfig config;
  config.num_azimuth_antennas = 1;
  EXPECT_THROW(config.validate(), InvalidArgument);

  config = RadarConfig{};
  config.num_elevation_antennas = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(RadarConfigErrors, DefaultConfigIsValid) {
  EXPECT_NO_THROW(RadarConfig{}.validate());
}

// ---- pointcloud/io: malformed recordings ----------------------------------

TEST(RecordingErrors, RejectsWrongTag) {
  std::istringstream in(std::string("XXXX\x01", 5), std::ios::binary);
  EXPECT_THROW(load_recording(in), SerializationError);
}

TEST(RecordingErrors, RejectsTruncatedStream) {
  std::string payload = testkit::recording_seed();
  payload.resize(payload.size() / 2);
  std::istringstream in(payload, std::ios::binary);
  EXPECT_THROW(load_recording(in), SerializationError);
}

// Regression for the hardened count validation: a huge frame count with no
// backing bytes must be rejected up front (before the reserve), not die in
// the allocator after.
TEST(RecordingErrors, RejectsHugeFrameCountBeforeAllocating) {
  std::string payload = testkit::recording_seed();
  const std::uint64_t huge = 1ULL << 62;
  for (int i = 0; i < 8; ++i) payload[5 + i] = static_cast<char>(huge >> (8 * i));
  std::istringstream in(payload, std::ios::binary);
  EXPECT_THROW(load_recording(in), SerializationError);
}

TEST(RecordingErrors, MissingFileIsNulloptNotError) {
  EXPECT_FALSE(load_recording_file("/nonexistent/gp_recording.gprc").has_value());
}

// ---- common/serialize: hardened reader regressions ------------------------

TEST(SerializeErrors, StringLengthBeyondStreamIsTyped) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out, "GPTT");
  writer.write_u32(0xFFFFFFFFu);  // string length prefix with no payload
  std::istringstream in(out.str(), std::ios::binary);
  BinaryReader reader(in, "GPTT");
  EXPECT_THROW(reader.read_string(), SerializationError);
}

TEST(SerializeErrors, VectorCountBeyondStreamIsTyped) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out, "GPTT");
  writer.write_u64(1ULL << 40);  // 1T floats "announced", zero present
  std::istringstream in(out.str(), std::ios::binary);
  BinaryReader reader(in, "GPTT");
  EXPECT_THROW(reader.read_f32_vector(), SerializationError);
}

TEST(SerializeErrors, ImplausibleCountFailsEvenIfCapFits) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out, "GPTT");
  writer.write_u64(std::numeric_limits<std::uint64_t>::max());
  std::istringstream in(out.str(), std::ios::binary);
  BinaryReader reader(in, "GPTT");
  EXPECT_THROW(reader.read_count(0, "thing"), SerializationError);
}

TEST(SerializeErrors, ValidVectorStillRoundTrips) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out, "GPTT");
  writer.write_f32_vector({1.0f, -2.5f, 3.25f});
  std::istringstream in(out.str(), std::ios::binary);
  BinaryReader reader(in, "GPTT");
  const auto v = reader.read_f32_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], -2.5f);
}

// ---- datasets/cache: corrupt and truncated payloads -----------------------

TEST(DatasetCacheErrors, TruncatedSampleBlockIsTyped) {
  std::string payload = testkit::dataset_seed();
  payload.resize(payload.size() - 24);
  std::istringstream in(payload, std::ios::binary);
  EXPECT_THROW(read_dataset(in, "<test>"), SerializationError);
}

TEST(DatasetCacheErrors, HugePointCountIsRejectedBeforeAllocating) {
  // Seed layout: tag(4) + version byte + schema u64 + name(u32 len + bytes)
  // + users u64 + gestures u64 + samples u64 + first cloud's point count.
  const std::string seed = testkit::dataset_seed();
  const std::size_t name_len = 9;  // "fuzz_seed"
  const std::size_t point_count_at = 4 + 1 + 8 + (4 + name_len) + 8 + 8 + 8;
  std::string payload = seed;
  ASSERT_GT(payload.size(), point_count_at + 8);
  const std::uint64_t huge = 1ULL << 61;
  for (int i = 0; i < 8; ++i) {
    payload[point_count_at + i] = static_cast<char>(huge >> (8 * i));
  }
  std::istringstream in(payload, std::ios::binary);
  EXPECT_THROW(read_dataset(in, "<test>"), SerializationError);
}

TEST(DatasetCacheErrors, ImplausiblePopulationIsTyped) {
  const std::string seed = testkit::dataset_seed();
  const std::size_t users_at = 4 + 1 + 8 + (4 + 9);  // u64 user count offset
  std::string payload = seed;
  const std::uint64_t huge = 500'000'000;
  for (int i = 0; i < 8; ++i) payload[users_at + i] = static_cast<char>(huge >> (8 * i));
  std::istringstream in(payload, std::ios::binary);
  EXPECT_THROW(read_dataset(in, "<test>"), SerializationError);
}

TEST(DatasetCacheErrors, SeedStillParsesCleanly) {
  std::istringstream in(testkit::dataset_seed(), std::ios::binary);
  const auto dataset = read_dataset(in, "<test>");
  ASSERT_TRUE(dataset.has_value());
  EXPECT_EQ(dataset->samples.size(), 4u);
  EXPECT_EQ(dataset->users.size(), 2u);
}

// ---- eval/roc: degenerate inputs ------------------------------------------

TEST(RocErrors, EmptyScoreSetsAreRejected) {
  EXPECT_THROW(roc_from_scores({}, {0.1, 0.2}), InvalidArgument);
  EXPECT_THROW(roc_from_scores({0.9}, {}), InvalidArgument);
  EXPECT_THROW(roc_from_scores({}, {}), InvalidArgument);
}

TEST(RocErrors, EmptyCurveHasNoEer) {
  const RocCurve empty;
  EXPECT_THROW(empty.eer(), Error);
}

TEST(RocErrors, SingleClassProbabilitiesAreRejected) {
  // One user only: no impostor scores can exist, so the curve is undefined.
  nn::Tensor probabilities(3, 1, 1.0f);
  const std::vector<int> truth{0, 0, 0};
  EXPECT_THROW(roc_from_probabilities(probabilities, truth), InvalidArgument);
}

TEST(RocErrors, DegenerateButLegalScoresStillProduceACurve) {
  // All scores identical: legal input, must yield a finite curve, not UB.
  const RocCurve curve = roc_from_scores({0.5, 0.5}, {0.5, 0.5});
  EXPECT_FALSE(curve.points.empty());
  EXPECT_GE(curve.auc, 0.0);
  EXPECT_LE(curve.auc, 1.0);
}

}  // namespace
}  // namespace gp
