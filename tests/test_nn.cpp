// Neural-network library tests: tensor kernels, layer semantics, loss
// values, optimiser behaviour, and serialization. Exact-gradient checks
// live in test_nn_gradcheck.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize_nn.hpp"
#include "nn/tensor.hpp"

namespace gp::nn {
namespace {

TEST(Tensor, ConstructionAndAccess) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.numel(), 6u);
  t.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 7.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.5f);
}

TEST(Tensor, MatmulKnownValues) {
  Tensor a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Tensor b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  Tensor c;
  matmul(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(Tensor, MatmulVariantsAgree) {
  Rng rng(1);
  Tensor a(4, 6);
  a.randn(rng, 1.0);
  Tensor b(6, 5);
  b.randn(rng, 1.0);

  Tensor direct;
  matmul(a, b, direct);

  // matmul_bt: c = a * bt^T where bt = b^T.
  Tensor bt(5, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 5; ++j) bt.at(j, i) = b.at(i, j);
  }
  Tensor via_bt;
  matmul_bt(a, bt, via_bt);
  for (std::size_t i = 0; i < direct.numel(); ++i) {
    EXPECT_NEAR(via_bt.vec()[i], direct.vec()[i], 1e-4);
  }

  // matmul_at: c = at^T * b where at = a^T.
  Tensor at(6, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 6; ++j) at.at(j, i) = a.at(i, j);
  }
  Tensor via_at;
  matmul_at(at, b, via_at);
  for (std::size_t i = 0; i < direct.numel(); ++i) {
    EXPECT_NEAR(via_at.vec()[i], direct.vec()[i], 1e-4);
  }
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(2, 3);
  Tensor b(4, 5);
  Tensor c;
  EXPECT_THROW(matmul(a, b, c), InvalidArgument);
}

TEST(Linear, ForwardAppliesWeightsAndBias) {
  Rng rng(2);
  Linear layer(2, 3, rng);
  layer.weight().value.fill(0.0f);
  layer.weight().value.at(0, 0) = 1.0f;  // out0 = in0
  layer.weight().value.at(1, 1) = 2.0f;  // out1 = 2*in1
  layer.bias().value.at(0, 2) = 5.0f;    // out2 = 5

  Tensor x(1, 2);
  x.at(0, 0) = 3.0f;
  x.at(0, 1) = 4.0f;
  const Tensor y = layer.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 8.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 5.0f);
}

TEST(ReLU, ClampsAndMasksGradient) {
  ReLU relu;
  Tensor x(1, 4);
  x.at(0, 0) = -1.0f;
  x.at(0, 1) = 2.0f;
  x.at(0, 2) = 0.0f;
  x.at(0, 3) = -3.0f;
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.0f);

  Tensor g(1, 4, 1.0f);
  const Tensor dx = relu.backward(g);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 3), 0.0f);
}

TEST(Dropout, InferenceIsIdentity) {
  Rng rng(3);
  Dropout dropout(0.5, rng);
  Tensor x(4, 4, 2.0f);
  const Tensor y = dropout.forward(x, false);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y.vec()[i], 2.0f);
}

TEST(Dropout, TrainingKeepsExpectationAndZeroesSome) {
  Rng rng(4);
  Dropout dropout(0.4, rng);
  Tensor x(100, 10, 1.0f);
  const Tensor y = dropout.forward(x, true);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y.vec()[i] == 0.0f) ++zeros;
    sum += y.vec()[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.4, 0.05);
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.08);  // inverted dropout preserves mean
}

TEST(BatchNorm, NormalisesBatchStatistics) {
  Rng rng(5);
  BatchNorm1d bn(3, rng);
  Tensor x(64, 3);
  x.randn(rng, 4.0);
  for (std::size_t i = 0; i < 64; ++i) x.at(i, 1) += 10.0f;  // shifted channel

  const Tensor y = bn.forward(x, true);
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0.0;
    for (std::size_t i = 0; i < 64; ++i) mean += y.at(i, c);
    mean /= 64.0;
    double var = 0.0;
    for (std::size_t i = 0; i < 64; ++i) var += (y.at(i, c) - mean) * (y.at(i, c) - mean);
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsUsedAtInference) {
  Rng rng(6);
  BatchNorm1d bn(1, rng);
  // Feed many training batches with mean 5.
  for (int step = 0; step < 200; ++step) {
    Tensor x(32, 1);
    for (std::size_t i = 0; i < 32; ++i) x.at(i, 0) = 5.0f + static_cast<float>(rng.gaussian());
    bn.forward(x, true);
  }
  // At inference a value of 5 should map near 0.
  Tensor probe(1, 1);
  probe.at(0, 0) = 5.0f;
  const Tensor y = bn.forward(probe, false);
  EXPECT_NEAR(y.at(0, 0), 0.0, 0.15);
}

TEST(Sequential, ComposesLayers) {
  Rng rng(7);
  Sequential seq;
  seq.emplace<Linear>(4, 8, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(8, 2, rng);
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq.parameters().size(), 4u);  // two Linear layers x (W, b)

  Tensor x(5, 4);
  x.randn(rng, 1.0);
  const Tensor y = seq.forward(x, true);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 2u);
}

TEST(Loss, SoftmaxRowsSumToOne) {
  Rng rng(8);
  Tensor logits(6, 4);
  logits.randn(rng, 3.0);
  const Tensor p = softmax(logits);
  for (std::size_t i = 0; i < 6; ++i) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 4; ++c) {
      sum += p.at(i, c);
      EXPECT_GE(p.at(i, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(Loss, CrossEntropyOfUniformIsLogK) {
  Tensor logits(3, 5, 0.0f);  // uniform distribution
  const LossResult result = softmax_cross_entropy(logits, {0, 2, 4});
  EXPECT_NEAR(result.loss, std::log(5.0), 1e-6);
}

TEST(Loss, GradPointsTowardCorrectClass) {
  Tensor logits(1, 3, 0.0f);
  const LossResult result = softmax_cross_entropy(logits, {1});
  // grad = p - onehot: (1/3, 1/3-1, 1/3).
  EXPECT_NEAR(result.grad.at(0, 0), 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(result.grad.at(0, 1), 1.0 / 3.0 - 1.0, 1e-6);
}

TEST(Loss, WeightScalesLossAndGrad) {
  Rng rng(9);
  Tensor logits(4, 3);
  logits.randn(rng, 1.0);
  const std::vector<int> labels{0, 1, 2, 0};
  const LossResult full = softmax_cross_entropy(logits, labels, 1.0);
  const LossResult half = softmax_cross_entropy(logits, labels, 0.5);
  EXPECT_NEAR(half.loss, 0.5 * full.loss, 1e-9);
  EXPECT_NEAR(half.grad.at(2, 1), 0.5 * full.grad.at(2, 1), 1e-7);
}

TEST(Loss, AccuracyCountsArgmaxMatches) {
  Tensor logits(3, 2);
  logits.at(0, 0) = 2.0f;  // pred 0
  logits.at(1, 1) = 2.0f;  // pred 1
  logits.at(2, 0) = 2.0f;  // pred 0
  EXPECT_NEAR(accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(Optimizer, SgdDescendsQuadratic) {
  // Minimise f(w) = (w - 3)^2 via manual gradient feeding.
  Parameter w;
  w.value = Tensor(1, 1, 0.0f);
  w.grad = Tensor(1, 1);
  Sgd opt({&w}, 0.1);
  for (int i = 0; i < 200; ++i) {
    w.grad.at(0, 0) = 2.0f * (w.value.at(0, 0) - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w.value.at(0, 0), 3.0f, 1e-3);
}

TEST(Optimizer, AdamDescendsIllConditionedQuadratic) {
  Parameter w;
  w.value = Tensor(1, 2);
  w.value.at(0, 0) = 4.0f;
  w.value.at(0, 1) = -2.0f;
  w.grad = Tensor(1, 2);
  Adam opt({&w}, 0.05);
  for (int i = 0; i < 800; ++i) {
    w.grad.at(0, 0) = 100.0f * w.value.at(0, 0);  // steep axis
    w.grad.at(0, 1) = 0.1f * w.value.at(0, 1);    // shallow axis
    opt.step();
  }
  EXPECT_NEAR(w.value.at(0, 0), 0.0f, 1e-2);
  EXPECT_NEAR(w.value.at(0, 1), 0.0f, 0.15);
}

TEST(Optimizer, StepClearsGradients) {
  Parameter w;
  w.value = Tensor(1, 1, 1.0f);
  w.grad = Tensor(1, 1, 2.0f);
  Adam opt({&w}, 0.01);
  opt.step();
  EXPECT_FLOAT_EQ(w.grad.at(0, 0), 0.0f);
}

TEST(SerializeNn, RoundTripRestoresWeights) {
  Rng rng(10);
  Sequential a;
  a.emplace<Linear>(3, 4, rng, "l0");
  a.emplace<BatchNorm1d>(4, rng, 0.1, 1e-5, "l0");
  a.emplace<Linear>(4, 2, rng, "l1");

  std::stringstream buffer;
  save_parameters(buffer, a.parameters());

  Rng rng2(999);  // different init
  Sequential b;
  b.emplace<Linear>(3, 4, rng2, "l0");
  b.emplace<BatchNorm1d>(4, rng2, 0.1, 1e-5, "l0");
  b.emplace<Linear>(4, 2, rng2, "l1");
  load_parameters(buffer, b.parameters());

  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel());
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j) {
      EXPECT_FLOAT_EQ(pa[i]->value.vec()[j], pb[i]->value.vec()[j]);
    }
  }
}

TEST(SerializeNn, RejectsLayoutMismatch) {
  Rng rng(11);
  Sequential a;
  a.emplace<Linear>(3, 4, rng, "l0");
  std::stringstream buffer;
  save_parameters(buffer, a.parameters());

  Sequential b;
  b.emplace<Linear>(3, 5, rng, "l0");  // different width
  EXPECT_THROW(load_parameters(buffer, b.parameters()), SerializationError);
}

}  // namespace
}  // namespace gp::nn
