// gp::mem tests (DESIGN.md §9): arena/pool/slot-vector primitives, the
// allocation-counting verification hooks, the GP_POISON_RESIZE debug mode,
// and the zero-copy frame path's acceptance invariants — warm pipeline
// scratch paths allocate nothing and produce bitwise-identical outputs, and
// a steady-state serve tick (frames in, shards drained, no segment
// completing) performs zero heap allocations end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/mem.hpp"
#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "exec/exec.hpp"
#include "nn/quant.hpp"
#include "nn/tensor.hpp"
#include "pipeline/preprocessor.hpp"
#include "serve/server.hpp"
#include "system/gestureprint.hpp"

namespace gp {
namespace {

// ------------------------------------------------------------- primitives

TEST(Mem, ArenaBumpResetAndHighWater) {
  mem::Arena arena(4096);
  const std::span<double> a = arena.allocate_span<double>(16);
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i);

  const std::span<const double> copy =
      arena.copy_span<double>(std::span<const double>(a.data(), a.size()));
  ASSERT_EQ(copy.size(), a.size());
  EXPECT_NE(copy.data(), a.data());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(copy[i], a[i]);

  const std::size_t used = arena.bytes_used();
  EXPECT_GE(used, 32 * sizeof(double));
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_GE(arena.high_water(), used);

  // Post-reset allocations reuse the existing block: no growth, no heap.
  const std::size_t blocks = arena.block_count();
  mem::AllocCounter counter;
  (void)arena.allocate_span<double>(16);
  EXPECT_EQ(counter.allocations(), 0u);
  EXPECT_EQ(arena.block_count(), blocks);
}

TEST(Mem, ArenaAlignsAndHandlesOversizedRequests) {
  mem::Arena arena(256);
  (void)arena.allocate(1, 1);  // misalign the bump cursor
  void* p = arena.allocate(sizeof(double), alignof(double));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(double), 0u);

  // A request larger than the block size gets its own dedicated block.
  void* big = arena.allocate(4096);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAB, 4096);  // the whole span must be writable
  EXPECT_GE(arena.block_count(), 2u);
}

TEST(Mem, ArenaSpansStableAcrossGrowth) {
  mem::Arena arena(128);
  const std::span<std::uint32_t> first = arena.allocate_span<std::uint32_t>(8);
  for (std::size_t i = 0; i < first.size(); ++i) first[i] = 0xC0FFEE00u + i;
  for (int i = 0; i < 64; ++i) (void)arena.allocate(64);  // force new blocks
  for (std::size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], 0xC0FFEE00u + i);
}

TEST(Mem, SlotVectorClearKeepsNestedCapacity) {
  mem::SlotVector<std::vector<int>> sv;
  sv.emplace_back().assign(100, 7);
  const int* warm_data = sv[0].data();
  sv.clear();
  EXPECT_TRUE(sv.empty());
  EXPECT_EQ(sv.slots(), 1u);  // the slot (and its buffer) survived

  mem::AllocCounter counter;
  std::vector<int>& again = sv.emplace_back();
  EXPECT_EQ(again.data(), warm_data);  // same warm buffer handed back
  again.assign(50, 3);                 // fits in retained capacity
  EXPECT_EQ(counter.allocations(), 0u);
  ASSERT_EQ(sv.size(), 1u);
  EXPECT_EQ(sv.back().size(), 50u);
}

TEST(Mem, PoolRecyclesWarmObjectsAndCounts) {
  const mem::MemCounters before = mem::mem_counters();
  mem::Pool<std::vector<int>> pool;
  {
    mem::PoolPtr<std::vector<int>> p = pool.acquire();  // miss: fresh object
    p->assign(64, 1);
  }  // handle destruction recycles into the pool
  EXPECT_EQ(pool.idle(), 1u);

  mem::PoolPtr<std::vector<int>> warm = pool.acquire();  // hit: warm object
  EXPECT_GE(warm->capacity(), 64u);
  EXPECT_EQ(pool.idle(), 0u);

  const mem::MemCounters after = mem::mem_counters();
  EXPECT_EQ(after.pool_misses - before.pool_misses, 1u);
  EXPECT_EQ(after.pool_hits - before.pool_hits, 1u);
}

// ---------------------------------------------------- verification hooks

// A new/delete pair the optimizer can see is legally elidable at -O3, so
// these escape the allocation through volatile globals to force it real.
volatile std::size_t g_alloc_n = 257;
void* volatile g_alloc_sink = nullptr;

TEST(Mem, AllocCounterSeesNewAndDelete) {
  mem::AllocCounter counter;
  auto* raw = new std::uint64_t[g_alloc_n];
  g_alloc_sink = raw;
  delete[] raw;
  EXPECT_GE(counter.allocations(), 1u);
  EXPECT_GE(counter.frees(), 1u);
  EXPECT_GE(counter.bytes(), 257 * sizeof(std::uint64_t));

  counter.reset();
  EXPECT_EQ(counter.allocations(), 0u);
}

TEST(Mem, AssertNoAllocPassesQuietScope) {
  double sink = 0.0;
  {
    GP_ASSERT_NO_ALLOC("quiet-scope");
    for (int i = 0; i < 100; ++i) sink += static_cast<double>(i);
  }
  EXPECT_EQ(sink, 4950.0);
}

using MemDeathTest = ::testing::Test;

TEST(MemDeathTest, AssertNoAllocAbortsOnAllocation) {
  EXPECT_DEATH(
      {
        GP_ASSERT_NO_ALLOC("hot-scope");
        auto* raw = new std::uint64_t[g_alloc_n];
        g_alloc_sink = raw;
        delete[] raw;
      },
      "GP_ASSERT_NO_ALLOC violated in 'hot-scope'");
}

// ------------------------------------------------------------ shared world

/// One small trained + saved system and a continuous stream, built once for
/// the whole binary (training dominates this file's runtime).
struct MemWorld {
  GesturePrintConfig config;
  std::string model_path;
  DatasetSpec spec;
  ContinuousRecording stream;
  std::vector<GestureCloud> clouds;  ///< preprocessed gestures from `stream`
};

const MemWorld& world() {
  static const MemWorld* w = [] {
    auto* out = new MemWorld();
    DatasetScale scale;
    scale.max_users = 3;
    scale.reps = 6;
    out->spec = gestureprint_spec(1, scale);
    out->spec.gestures.resize(3);
    const Dataset dataset = generate_dataset(out->spec);

    out->config.training.epochs = 4;
    out->config.training.batch_size = 16;
    out->config.prep.augmentation.copies = 2;
    out->config.abstain_margin = 0.05;

    GesturePrintSystem system(out->config);
    Rng split_rng(3, 1);
    system.fit(dataset,
               stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);
    out->model_path = testing::TempDir() + "gp_mem_model.gpsy";
    system.save(out->model_path);

    out->stream = generate_recording(out->spec, 0, {0, 2, 1}, 0x4E11);
    out->clouds = Preprocessor().process(out->stream.frames);
    return out;
  }();
  return *w;
}

void expect_samples_bitwise_equal(const FeaturizedSample& a, const FeaturizedSample& b) {
  ASSERT_EQ(a.num_points, b.num_points);
  ASSERT_EQ(a.dims, b.dims);
  ASSERT_EQ(a.positions.size(), b.positions.size());
  ASSERT_EQ(a.features.size(), b.features.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) EXPECT_EQ(a.positions[i], b.positions[i]);
  for (std::size_t i = 0; i < a.features.size(); ++i) EXPECT_EQ(a.features[i], b.features[i]);
}

// ----------------------------------------------- warm pipeline scratch path

// featurize_into must reproduce featurize() bit for bit (same RNG draw
// order) and, once its scratch is warm, allocate nothing.
TEST(Mem, FeaturizeIntoBitwiseIdenticalAndZeroAllocWarm) {
  ASSERT_FALSE(world().clouds.empty());
  const GestureCloud& cloud = world().clouds.front();
  const FeatureConfig& fc = world().config.prep.features;

  Rng ref_rng = exec::child_rng(0xFEA7u, 0);
  const FeaturizedSample reference = featurize(cloud, fc, ref_rng);

  FeaturizeScratch scratch;
  FeaturizedSample out;
  Rng rng = exec::child_rng(0xFEA7u, 0);
  featurize_into(cloud, fc, rng, scratch, out);
  expect_samples_bitwise_equal(reference, out);

  // Warm pass: same inputs, zero heap traffic.
  Rng warm_rng = exec::child_rng(0xFEA7u, 0);
  mem::AllocCounter counter;
  featurize_into(cloud, fc, warm_rng, scratch, out);
  EXPECT_EQ(counter.allocations(), 0u);
  expect_samples_bitwise_equal(reference, out);
}

TEST(Mem, ProcessSegmentIntoBitwiseIdenticalAndZeroAllocWarm) {
  const Preprocessor preprocessor;
  const FrameSequence& frames = world().stream.frames;
  const GestureCloud reference = preprocessor.process_segment(frames);

  Preprocessor::Scratch scratch;
  GestureCloud out;
  preprocessor.process_segment_into(std::span<const FrameCloud>(frames), out, scratch);

  const auto expect_match = [&] {
    ASSERT_EQ(out.points.size(), reference.points.size());
    if (!reference.points.empty()) {
      EXPECT_EQ(std::memcmp(out.points.data(), reference.points.data(),
                            reference.points.size() * sizeof(RadarPoint)),
                0);
    }
    EXPECT_EQ(out.num_frames, reference.num_frames);
    EXPECT_EQ(out.first_frame, reference.first_frame);
    EXPECT_EQ(out.duration_s, reference.duration_s);
    EXPECT_EQ(out.quality, reference.quality);
  };
  expect_match();

  mem::AllocCounter counter;
  preprocessor.process_segment_into(std::span<const FrameCloud>(frames), out, scratch);
  EXPECT_EQ(counter.allocations(), 0u);
  expect_match();
}

// --------------------------------------------------------- poison resize

// Tensor::resize contents are documented unspecified; the debug mode must
// poison every cell so stale readers fail loudly.
TEST(Mem, PoisonResizeFillsWithNaN) {
  ASSERT_FALSE(mem::poison_resize_enabled());  // tests run unpoisoned by default
  nn::Tensor t(3, 3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) t.at(r, c) = 1.0;

  mem::set_poison_resize(true);
  t.resize(2, 4);
  mem::set_poison_resize(false);
  for (std::size_t r = 0; r < t.rows(); ++r) {
    for (std::size_t c = 0; c < t.cols(); ++c) {
      EXPECT_TRUE(std::isnan(t.at(r, c))) << "cell (" << r << "," << c << ") not poisoned";
    }
  }
}

/// Streams the shared recording through a fresh server, three interleaved
/// sessions, and returns every result in completion order.
std::vector<serve::ServeResult> run_serve_stream(serve::ModelRegistry& registry,
                                                 exec::ExecContext& ctx) {
  serve::ServeConfig sc;
  sc.system = world().config;
  sc.shards = 2;
  sc.batch_wait_us = 0;
  serve::Server server(sc, registry, ctx);

  std::vector<serve::ServeResult> results;
  for (const FrameCloud& frame : world().stream.frames) {
    for (std::uint64_t id = 1; id <= 3; ++id) (void)server.push_frame(id, frame);
    for (serve::ServeResult& r : server.pump()) results.push_back(std::move(r));
  }
  for (serve::ServeResult& r : server.drain()) results.push_back(std::move(r));
  return results;
}

// Regression for the resize-reuse audit: no caller on the serve hot path may
// read cells left over from a previous tenant of a recycled buffer. Poisoned
// and unpoisoned runs must answer bit for bit the same — any stale read
// would surface as NaN-propagated garbage.
TEST(Mem, PoisonResizeLeavesServeAnswersIdentical) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());
  exec::ExecContext ctx(2);

  const std::vector<serve::ServeResult> clean = run_serve_stream(registry, ctx);
  mem::set_poison_resize(true);
  const std::vector<serve::ServeResult> poisoned = run_serve_stream(registry, ctx);
  mem::set_poison_resize(false);

  ASSERT_FALSE(clean.empty());
  ASSERT_EQ(clean.size(), poisoned.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i].session_id, poisoned[i].session_id);
    EXPECT_EQ(clean[i].segment_ordinal, poisoned[i].segment_ordinal);
    EXPECT_EQ(clean[i].gesture, poisoned[i].gesture);
    EXPECT_EQ(clean[i].user, poisoned[i].user);
    EXPECT_EQ(clean[i].abstained, poisoned[i].abstained);
    EXPECT_EQ(clean[i].gesture_margin, poisoned[i].gesture_margin);  // bitwise
    EXPECT_EQ(clean[i].user_margin, poisoned[i].user_margin);
  }
}

// ------------------------------------------------- steady-state serve tick

// THE acceptance invariant of the zero-copy frame path: once the server is
// warm, a tick that admits frames and drains shards without completing a
// segment (the overwhelmingly common tick in deployment) touches the heap
// zero times — frame points land in the shard arena, segmenter rings and
// scratch reuse their capacity, and the empty batcher poll returns an
// empty (non-allocating) result vector.
void run_steady_tick_zero_alloc(nn::QuantMode quant) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path, quant).has_value());
  serve::ServeConfig sc;
  sc.system = world().config;
  sc.shards = 2;
  sc.batch_wait_us = 0;
  exec::ExecContext ctx(1);  // single-threaded: the counter is process-global
  serve::Server server(sc, registry, ctx);

  const FrameSequence& frames = world().stream.frames;
  constexpr std::uint64_t kSessions = 2;

  // Warm-up: one full pass. Segments complete, batches flush, every pool,
  // arena, ring, and cached metric handle reaches steady-state capacity.
  for (const FrameCloud& frame : frames) {
    for (std::uint64_t id = 1; id <= kSessions; ++id) {
      ASSERT_EQ(server.push_frame(id, frame), serve::Admission::kAccepted);
    }
    (void)server.pump();
  }

  // Steady ticks: replay the stream's opening frames — the segmenter
  // re-enters gesture onset but nothing completes, so no featurize, no
  // flush. This must be allocation-free.
  const std::size_t quiet_ticks = std::min<std::size_t>(8, frames.size());
  const std::uint64_t segments_before = server.batch_stats().segments;
  mem::AllocCounter counter;
  for (std::size_t f = 0; f < quiet_ticks; ++f) {
    for (std::uint64_t id = 1; id <= kSessions; ++id) {
      (void)server.push_frame(id, frames[f]);
    }
    const std::vector<serve::ServeResult> results = server.pump();
    ASSERT_TRUE(results.empty()) << "tick " << f << " completed a segment; "
                                    "the quiet-tick premise broke";
  }
  EXPECT_EQ(counter.allocations(), 0u)
      << "steady-state serve tick touched the heap (" << counter.bytes() << " bytes)";
  EXPECT_EQ(server.batch_stats().segments, segments_before);
}

TEST(Mem, ServeSteadyTickZeroAlloc) {
  run_steady_tick_zero_alloc(nn::QuantMode::kOff);
}

// The int8 fused path keeps the same allocation profile: its quantized
// activation/accumulator scratch rows are members sized once at fuse time
// (see nn/fused.hpp), so a warm quantized server's quiet tick is just as
// heap-silent as the f32 one.
TEST(Mem, ServeSteadyTickZeroAllocQuantized) {
  run_steady_tick_zero_alloc(nn::QuantMode::kInt8);
}

}  // namespace
}  // namespace gp
