// gp::faults coverage (DESIGN.md §7): seed-deterministic fault schedules
// (replayable on any thread count), one no-throw + accounting test per
// fault family, severity monotonicity via common random numbers, the
// graceful-degradation guards (SegmentQuality, abstention gate), the
// gap-aware segmenter, and artifact bit corruption.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <type_traits>
#include <vector>

#include "datasets/catalog.hpp"
#include "datasets/dataset.hpp"
#include "exec/exec.hpp"
#include "faults/faults.hpp"
#include "faults/selfheal.hpp"
#include "kinematics/gesture_spec.hpp"
#include "kinematics/performer.hpp"
#include "obs/metrics.hpp"
#include "pipeline/preprocessor.hpp"
#include "pipeline/segmentation.hpp"
#include "radar/sensor.hpp"
#include "system/gestureprint.hpp"
#include "testkit/oracle.hpp"

namespace gp {
namespace {

/// A deterministic continuous recording shared by the injector tests:
/// user 1 performs three gestures with natural pauses. Frame indices are
/// contiguous from 0 (the generator's contract), which the plan keys on.
const FrameSequence& test_stream() {
  static const FrameSequence frames = [] {
    DatasetScale scale;
    scale.max_users = 2;
    scale.reps = 2;
    DatasetSpec spec = gestureprint_spec(1, scale);
    spec.gestures.resize(5);
    return generate_recording(spec, 1, {0, 2, 4}, 424242).frames;
  }();
  return frames;
}

// ---- schedule determinism -------------------------------------------------

TEST(FaultPlan, DigestIsPureFunctionOfConfig) {
  const faults::FaultConfig config = faults::FaultConfig::mixed(0.7, 1234);
  faults::FaultPlan a(config);
  faults::FaultPlan b(config);
  EXPECT_EQ(a.schedule_digest(500), b.schedule_digest(500));

  faults::FaultConfig reseeded = config;
  reseeded.seed = 1235;
  faults::FaultPlan c(reseeded);
  EXPECT_NE(a.schedule_digest(500), c.schedule_digest(500));
}

TEST(FaultPlan, LazyExtensionMatchesEagerBuild) {
  const faults::FaultConfig config = faults::FaultConfig::mixed(0.5, 77);
  faults::FaultPlan eager(config, 400);
  faults::FaultPlan lazy(config);
  // Query out of order; the lazily-extended schedule must be identical
  // (the Gilbert–Elliott chain state marches sequentially regardless).
  (void)lazy.at(399);
  (void)lazy.at(10);
  EXPECT_EQ(eager.schedule_digest(400), lazy.schedule_digest(400));
}

TEST(FaultPlan, ReplayIsThreadCountInvariant) {
  // The acceptance oracle for GP_THREADS ∈ {1, 4}: the delivered stream is
  // bitwise identical no matter how many workers replay the plan, because
  // the schedule is a pure function of (config, frame index).
  const faults::FaultConfig config = faults::FaultConfig::mixed(0.6, 99);
  const FrameSequence& frames = test_stream();

  faults::FaultInjector reference(config);
  const std::uint64_t want = testkit::exact_digest(reference.apply_sequence(frames));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    exec::ExecContext ctx(threads);
    const std::vector<std::uint64_t> digests =
        ctx.parallel_map<std::uint64_t>(8, 1, [&](std::size_t) {
          faults::FaultInjector injector(config);
          return testkit::exact_digest(injector.apply_sequence(frames));
        });
    for (const std::uint64_t d : digests) EXPECT_EQ(d, want);
  }
}

// ---- one test per fault family --------------------------------------------

/// Applies `config` to the shared stream and checks (a) nothing throws,
/// (b) the injector's local tallies match the plan totals, and (c) the
/// gp.faults.* obs counters advanced by exactly the same amounts.
void run_family(const faults::FaultConfig& config) {
  const FrameSequence& frames = test_stream();
  const std::uint64_t dropped0 = obs::counter("gp.faults.frames_dropped").value();
  const std::uint64_t truncated0 = obs::counter("gp.faults.frames_truncated").value();
  const std::uint64_t ghosts0 = obs::counter("gp.faults.ghost_points").value();
  const std::uint64_t jittered0 = obs::counter("gp.faults.frames_jittered").value();

  faults::FaultInjector injector(config);
  FrameSequence delivered;
  ASSERT_NO_THROW(delivered = injector.apply_sequence(frames));

  const faults::FaultPlan::Totals totals = injector.plan().totals(frames.size());
  const faults::FaultInjector::Counts& counts = injector.counts();
  EXPECT_EQ(counts.frames_seen, frames.size());
  EXPECT_EQ(counts.frames_dropped, totals.drops);
  EXPECT_EQ(counts.frames_truncated, totals.truncated);
  EXPECT_EQ(counts.ghost_points, totals.ghost_points);
  EXPECT_EQ(counts.frames_jittered, totals.jittered);
  // Reorder swaps need a delivered successor, so the realised count can
  // fall short of the planned flags but never exceed them.
  EXPECT_LE(counts.frames_reordered, totals.reordered);
  EXPECT_EQ(delivered.size() + counts.frames_dropped, frames.size());

  if (obs::metrics_enabled()) {
    EXPECT_EQ(obs::counter("gp.faults.frames_dropped").value() - dropped0,
              counts.frames_dropped);
    EXPECT_EQ(obs::counter("gp.faults.frames_truncated").value() - truncated0,
              counts.frames_truncated);
    EXPECT_EQ(obs::counter("gp.faults.ghost_points").value() - ghosts0,
              counts.ghost_points);
    EXPECT_EQ(obs::counter("gp.faults.frames_jittered").value() - jittered0,
              counts.frames_jittered);
  }
}

TEST(FaultFamilies, FrameDrop) {
  run_family(faults::FaultConfig::preset(faults::FaultKind::kFrameDrop, 0.7));
}

TEST(FaultFamilies, BurstDrop) {
  const faults::FaultConfig config =
      faults::FaultConfig::preset(faults::FaultKind::kBurstDrop, 0.8);
  run_family(config);
  // Bursty loss must actually cluster: at this severity there must exist a
  // run of >= 3 consecutive planned drops somewhere in the schedule.
  faults::FaultPlan plan(config, 2000);
  std::size_t longest = 0;
  std::size_t run = 0;
  for (std::size_t i = 0; i < 2000; ++i) {
    run = plan.at(i).drop ? run + 1 : 0;
    longest = std::max(longest, run);
  }
  EXPECT_GE(longest, 3u);
}

TEST(FaultFamilies, DutyCycle) {
  const faults::FaultConfig config =
      faults::FaultConfig::preset(faults::FaultKind::kDutyCycle, 1.0);
  run_family(config);
  // Full severity: the first half of every 40-frame period is dark.
  faults::FaultPlan plan(config, 80);
  EXPECT_TRUE(plan.at(0).drop);
  EXPECT_TRUE(plan.at(19).drop);
  EXPECT_FALSE(plan.at(20).drop);
  EXPECT_FALSE(plan.at(39).drop);
  EXPECT_TRUE(plan.at(40).drop);
}

TEST(FaultFamilies, Interference) {
  const faults::FaultConfig config =
      faults::FaultConfig::preset(faults::FaultKind::kInterference, 0.8);
  run_family(config);
  faults::FaultInjector injector(config);
  const FrameSequence delivered = injector.apply_sequence(test_stream());
  EXPECT_GT(injector.counts().ghost_points, 0u);
  // Ghost points land inside the sensing volume, not at infinity.
  for (const FrameCloud& frame : delivered) {
    for (const RadarPoint& p : frame.points) {
      EXPECT_LT(std::abs(p.position.x), 10.0);
      EXPECT_LT(std::abs(p.position.y), 10.0);
    }
  }
}

TEST(FaultFamilies, Truncation) {
  const faults::FaultConfig config =
      faults::FaultConfig::preset(faults::FaultKind::kTruncation, 0.9);
  run_family(config);
  faults::FaultInjector injector(config);
  (void)injector.apply_sequence(test_stream());
  EXPECT_GT(injector.counts().points_removed, 0u);
}

TEST(FaultFamilies, Jitter) {
  const faults::FaultConfig config =
      faults::FaultConfig::preset(faults::FaultKind::kJitter, 0.8);
  run_family(config);
  faults::FaultInjector injector(config);
  const FrameSequence delivered = injector.apply_sequence(test_stream());
  // Timestamps moved but frame payloads are untouched by the jitter family.
  std::size_t moved = 0;
  for (const FrameCloud& frame : delivered) {
    const FrameCloud& original = test_stream()[static_cast<std::size_t>(frame.frame_index)];
    if (frame.timestamp != original.timestamp) ++moved;
    EXPECT_EQ(frame.points.size(), original.points.size());
  }
  EXPECT_GT(moved, 0u);
}

// ---- off path & monotonicity ----------------------------------------------

TEST(FaultInjector, DisabledConfigIsBitwiseIdentity) {
  faults::FaultInjector off{faults::FaultConfig{}};
  const FrameSequence& frames = test_stream();
  const FrameSequence out = off.apply_sequence(frames);
  EXPECT_EQ(testkit::exact_digest(out), testkit::exact_digest(frames));
  EXPECT_EQ(off.counts().frames_seen, 0u);  // off path does no accounting

  // Severity 0 of every preset is the identity too.
  for (const faults::FaultKind kind : faults::all_fault_kinds()) {
    faults::FaultInjector zero(faults::FaultConfig::preset(kind, 0.0));
    EXPECT_EQ(testkit::exact_digest(zero.apply_sequence(frames)),
              testkit::exact_digest(frames))
        << faults::fault_kind_name(kind);
  }
}

TEST(FaultInjector, SeverityIsMonotoneUnderCommonRandomNumbers) {
  // The per-frame uniforms are shared across severities, so raising the
  // severity can only lose more frames / more points.
  const FrameSequence& frames = test_stream();
  std::size_t last_delivered = frames.size() + 1;
  for (const double severity : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    faults::FaultInjector injector(
        faults::FaultConfig::preset(faults::FaultKind::kFrameDrop, severity));
    const std::size_t delivered = injector.apply_sequence(frames).size();
    EXPECT_LE(delivered, last_delivered);
    last_delivered = delivered;
  }

  std::size_t last_points = 0;
  bool first = true;
  for (const double severity : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    faults::FaultInjector injector(
        faults::FaultConfig::preset(faults::FaultKind::kTruncation, severity));
    std::size_t points = 0;
    for (const FrameCloud& f : injector.apply_sequence(frames)) points += f.points.size();
    if (!first) {
      EXPECT_LE(points, last_points);
    }
    last_points = points;
    first = false;
  }
}

TEST(FaultyRadarSensor, ZeroSeverityMatchesPlainSensor) {
  Rng profile_rng(7);
  const UserProfile user = UserProfile::sample(0, profile_rng);
  const GesturePerformer performer(user, PerformanceConfig{});
  Rng rep(10);
  const SceneSequence scene = performer.perform(asl_gesture_set()[0], rep);

  const RadarSensor plain;
  faults::FaultyRadarSensor faulty(RadarSensor{}, faults::FaultConfig{});
  Rng obs_a(21);
  Rng obs_b(21);
  EXPECT_EQ(testkit::exact_digest(plain.observe(scene, obs_a)),
            testkit::exact_digest(faulty.observe(scene, obs_b)));
}

// ---- spec parsing ----------------------------------------------------------

TEST(FaultConfigSpec, ParsesKeyValueList) {
  const faults::FaultConfig config =
      faults::FaultConfig::from_spec("drop=0.2,ghost=0.3,trunc=0.1,seed=7");
  EXPECT_DOUBLE_EQ(config.drop_prob, 0.2);
  EXPECT_DOUBLE_EQ(config.interference_prob, 0.3);
  EXPECT_DOUBLE_EQ(config.truncation_prob, 0.1);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_TRUE(config.enabled());
}

TEST(FaultConfigSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(faults::FaultConfig::from_spec("drop"), InvalidArgument);
  EXPECT_THROW(faults::FaultConfig::from_spec("nope=1"), InvalidArgument);
  EXPECT_THROW(faults::FaultConfig::from_spec("drop=abc"), InvalidArgument);
  EXPECT_THROW(faults::FaultConfig::from_spec("drop=0.1x"), InvalidArgument);
}

// ---- graceful degradation guards ------------------------------------------

TEST(SegmentQuality, GuardsAssignTypedVerdicts) {
  PreprocessorParams params;
  params.min_points = 8;
  params.min_frames = 2;
  const Preprocessor preprocessor(params);

  GestureCloud empty;
  EXPECT_EQ(preprocessor.assess(empty), SegmentQuality::kEmpty);

  GestureCloud sparse;
  sparse.points.resize(3);
  sparse.num_frames = 10;
  EXPECT_EQ(preprocessor.assess(sparse), SegmentQuality::kTooFewPoints);

  GestureCloud brief;
  brief.points.resize(20);
  brief.num_frames = 1;
  EXPECT_EQ(preprocessor.assess(brief), SegmentQuality::kTooShort);

  GestureCloud good;
  good.points.resize(20);
  good.num_frames = 10;
  EXPECT_EQ(preprocessor.assess(good), SegmentQuality::kGood);

  EXPECT_STREQ(segment_quality_name(SegmentQuality::kEmpty), "empty");
  EXPECT_STREQ(segment_quality_name(SegmentQuality::kGood), "good");
}

TEST(AbstentionGate, MarginIsMonotone) {
  // Raising the margin can only turn answers into abstentions, never the
  // reverse — the calibration knob is safe to sweep upward.
  const std::vector<std::vector<double>> posteriors = {
      {0.5, 0.3, 0.2}, {0.34, 0.33, 0.33}, {0.9, 0.05, 0.05}, {0.55, 0.45}};
  for (const auto& p : posteriors) {
    bool prev = false;
    for (double margin = 0.0; margin <= 1.0; margin += 0.05) {
      const bool abstain = should_abstain(p, margin);
      EXPECT_TRUE(!prev || abstain) << "gate un-fired as margin grew";
      prev = abstain;
    }
  }
  EXPECT_FALSE(should_abstain({0.9, 0.1}, 0.0));  // 0 disables the gate
  EXPECT_DOUBLE_EQ(top2_margin({0.5, 0.3, 0.2}), 0.2);
  EXPECT_DOUBLE_EQ(top2_margin({1.0}), 1.0);
}

// ---- gap-aware segmentation -----------------------------------------------

/// Builds a frame with `count` points at y=1 m (above any static threshold
/// when count is large) and the given stream index.
FrameCloud synthetic_frame(int index, std::size_t count) {
  FrameCloud frame;
  frame.frame_index = index;
  frame.timestamp = index * 0.1;
  for (std::size_t i = 0; i < count; ++i) {
    RadarPoint p;
    p.position = {0.0, 1.0, 0.0};
    p.frame = index;
    frame.points.push_back(p);
  }
  return frame;
}

TEST(GestureSegmenter, GapClosesOpenGestureInsteadOfBridging) {
  SegmentationParams params;
  params.max_gap_frames = 5;
  GestureSegmenter segmenter(params);
  int index = 0;
  // Background, then sustained motion...
  for (int i = 0; i < 30; ++i) segmenter.push(synthetic_frame(index++, 1));
  for (int i = 0; i < 8; ++i) segmenter.push(synthetic_frame(index++, 40));
  // ...then the sensor goes dark for 50 frames mid-gesture.
  index += 50;
  for (int i = 0; i < 8; ++i) segmenter.push(synthetic_frame(index++, 40));
  for (int i = 0; i < 10; ++i) segmenter.push(synthetic_frame(index++, 1));
  segmenter.finish();

  const std::vector<GestureSegment> segments = segmenter.take_segments();
  // Without gap handling the pre- and post-gap motion would merge into one
  // segment; with it, the dropout yields two.
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_LE(segments[0].frames.size(), 9u);
  EXPECT_LE(segments[1].frames.size(), 9u);
}

TEST(GestureSegmenter, FinishFlushesTrailingSegment) {
  GestureSegmenter segmenter;
  int index = 0;
  for (int i = 0; i < 30; ++i) segmenter.push(synthetic_frame(index++, 1));
  // The stream ends while the gesture is still in progress (9 motion
  // frames: enough to cross F_Thr = 8, not enough to go static again).
  for (int i = 0; i < 9; ++i) segmenter.push(synthetic_frame(index++, 40));
  EXPECT_TRUE(segmenter.take_segments().empty());
  segmenter.finish();
  const std::vector<GestureSegment> segments = segmenter.take_segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_GE(segments[0].frames.size(), 4u);
  // finish() is idempotent.
  segmenter.finish();
  EXPECT_TRUE(segmenter.take_segments().empty());
}

TEST(GestureSegmenter, ContiguousStreamsUnaffectedByGapLogic) {
  // gap == 0 streams must behave exactly as before the gap-aware change:
  // the same input yields the same segments for any max_gap_frames.
  SegmentationParams tight;
  tight.max_gap_frames = 1;
  SegmentationParams loose;
  loose.max_gap_frames = 1000;

  const FrameSequence& frames = test_stream();
  const std::vector<GestureSegment> a = GestureSegmenter::segment_all(frames, tight);
  const std::vector<GestureSegment> b = GestureSegmenter::segment_all(frames, loose);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_frame, b[i].start_frame);
    EXPECT_EQ(a[i].end_frame, b[i].end_frame);
  }
}

// ---- artifact bit corruption ----------------------------------------------

TEST(BitCorruption, FlipsAreSeedDeterministicAndLandInPayload) {
  std::string blob(256, '\0');
  for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = static_cast<char>(i);
  std::string a = blob;
  std::string b = blob;
  faults::flip_bits(a, 16, 42);
  faults::flip_bits(b, 16, 42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, blob);
  // The tag/version prefix is spared so corruption exercises the payload
  // decoders, not only the magic check.
  EXPECT_EQ(a.substr(0, 5), blob.substr(0, 5));

  std::string c = blob;
  faults::flip_bits(c, 16, 43);
  EXPECT_NE(a, c);

  std::string tiny(4, 'x');
  faults::flip_bits(tiny, 8, 1);  // shorter than the offset: no-op
  EXPECT_EQ(tiny, std::string(4, 'x'));
}

// ---- retry policy ----------------------------------------------------------

TEST(WithRetries, RetriesTransientErrorsButNotCorruption) {
  int calls = 0;
  const int got = faults::with_retries(faults::RetryPolicy{3, 0.01}, [&] {
    if (++calls < 3) throw Error("transient");
    return 41 + 1;
  });
  EXPECT_EQ(got, 42);
  EXPECT_EQ(calls, 3);

  calls = 0;
  EXPECT_THROW(faults::with_retries(faults::RetryPolicy{5, 0.01},
                                    [&]() -> int {
                                      ++calls;
                                      throw SerializationError("rotten");
                                    }),
               SerializationError);
  EXPECT_EQ(calls, 1);  // corruption is not transient: exactly one attempt

  calls = 0;
  EXPECT_THROW(faults::with_retries(faults::RetryPolicy{2, 0.01},
                                    [&]() -> int {
                                      ++calls;
                                      throw Error("always down");
                                    }),
               Error);
  EXPECT_EQ(calls, 2);  // budget respected
}

TEST(WithRetries, DeadlineBudgetStopsRetriesWithTypedTimeout) {
  // A huge backoff against a 1 ms total budget: the pre-sleep check fires
  // before the first retry, so exactly one attempt runs and the failure is
  // typed TimeoutError (not the transient error it wraps).
  faults::RetryPolicy tight;
  tight.attempts = 10;
  tight.base_backoff_ms = 10'000.0;
  tight.deadline_ms = 1;
  int calls = 0;
  try {
    faults::with_retries(tight, [&]() -> int {
      ++calls;
      throw Error("transient");
    });
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("transient"), std::string::npos)
        << "timeout must carry the last underlying error";
  }
  EXPECT_EQ(calls, 1);

  // TimeoutError stays a gp::Error: callers with a plain catch keep working.
  static_assert(std::is_base_of_v<Error, TimeoutError>);
}

TEST(WithRetries, DeadlineBudgetDoesNotChangeOtherPolicies) {
  // deadline_ms = 0 (the default) must behave exactly as before the budget
  // existed: all attempts are consumed and the last error propagates as-is.
  faults::RetryPolicy unlimited;
  unlimited.attempts = 3;
  unlimited.base_backoff_ms = 0.01;
  int calls = 0;
  EXPECT_THROW(faults::with_retries(unlimited,
                                    [&]() -> int {
                                      ++calls;
                                      throw Error("always down");
                                    }),
               Error);
  EXPECT_EQ(calls, 3);

  // A generous budget never fires for a quickly-succeeding retry chain.
  faults::RetryPolicy roomy;
  roomy.attempts = 4;
  roomy.base_backoff_ms = 0.01;
  roomy.deadline_ms = 60'000;
  calls = 0;
  EXPECT_EQ(faults::with_retries(roomy,
                                 [&] {
                                   if (++calls < 3) throw Error("transient");
                                   return 7;
                                 }),
            7);
  EXPECT_EQ(calls, 3);

  // SerializationError still escapes on attempt one even with a budget set:
  // corruption is deterministic and must never burn retry/deadline budget.
  calls = 0;
  EXPECT_THROW(faults::with_retries(roomy,
                                    [&]() -> int {
                                      ++calls;
                                      throw SerializationError("rotten");
                                    }),
               SerializationError);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace gp
