// Tests for the system-level extensions: open-set (unauthorized user)
// rejection, cross-environment fine-tuning, and full-system persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "system/cross_validate.hpp"
#include "system/gestureprint.hpp"
#include "system/open_set.hpp"

namespace gp {
namespace {

Dataset make_dataset(std::size_t users, std::size_t gestures, std::size_t reps, int env = 1,
                     std::uint64_t user_seed = 1001) {
  DatasetScale scale;
  scale.max_users = users;
  scale.reps = reps;
  DatasetSpec spec = gestureprint_spec(env, scale);
  spec.gestures.resize(gestures);
  spec.user_seed = user_seed;
  return generate_dataset(spec);
}

GesturePrintConfig quick_config(std::size_t epochs = 8) {
  GesturePrintConfig config;
  config.training.epochs = epochs;
  config.training.batch_size = 16;
  config.prep.augmentation.copies = 2;
  return config;
}

Split split_by_pair(const Dataset& dataset, std::uint64_t seed = 77) {
  Rng rng(seed, 1);
  std::vector<int> strata;
  const int num_users = static_cast<int>(dataset.num_users());
  for (const auto& s : dataset.samples) strata.push_back(s.gesture * num_users + s.user);
  return stratified_split(strata, 0.2, rng);
}

TEST(OpenSet, RequiresFittedSystemAndCalibration) {
  GesturePrintSystem unfitted(quick_config());
  EXPECT_THROW(
      {
        OpenSetIdentifier wrapper(unfitted);
        (void)wrapper;
      },
      Error);

  const Dataset dataset = make_dataset(3, 2, 8);
  GesturePrintSystem system(quick_config(4));
  system.fit(dataset, split_by_pair(dataset).train);
  OpenSetIdentifier open_set(system);
  EXPECT_FALSE(open_set.calibrated());
  EXPECT_THROW(open_set.decide(dataset.samples[0].cloud), Error);
}

TEST(OpenSet, RejectsImpostorsAcceptsGenuine) {
  // Enroll 3 users; impostors are 3 *different* users (disjoint cohort via
  // another user_seed) performing the same gestures.
  const Dataset enrolled = make_dataset(3, 3, 12);
  const Dataset impostors_ds = make_dataset(3, 3, 4, 1, /*user_seed=*/9999);

  GesturePrintSystem system(quick_config());
  const Split split = split_by_pair(enrolled);
  system.fit(enrolled, split.train);

  OpenSetConfig os_config;
  os_config.target_false_rejection = 0.10;
  OpenSetIdentifier open_set(system, os_config);
  // Gallery + threshold calibration from the enrollment (training) split;
  // the biometric descriptor is model-free, so no overconfidence issue.
  open_set.calibrate(enrolled, split.train);
  EXPECT_TRUE(open_set.calibrated());
  EXPECT_GT(open_set.threshold(), 0.0);

  std::vector<GestureCloud> impostor_clouds;
  for (const auto& s : impostors_ds.samples) impostor_clouds.push_back(s.cloud);

  const OpenSetEvaluation eval = open_set.evaluate(enrolled, split.test, impostor_clouds);
  // Genuine users mostly accepted; impostors rejected clearly above chance.
  EXPECT_GT(eval.genuine_accept_rate, 0.6);
  EXPECT_GT(eval.impostor_reject_rate, 0.35);
  // Accepting decisions should be at least as accurate as unconditional ID.
  EXPECT_GT(eval.accepted_uia, 0.5);
}

TEST(OpenSet, StricterTargetTightensDistanceThreshold) {
  const Dataset dataset = make_dataset(3, 2, 10);
  GesturePrintSystem system(quick_config(6));
  const Split split = split_by_pair(dataset);
  system.fit(dataset, split.train);

  OpenSetConfig lenient;
  lenient.target_false_rejection = 0.02;
  OpenSetConfig strict;
  strict.target_false_rejection = 0.30;
  OpenSetIdentifier lenient_id(system, lenient);
  OpenSetIdentifier strict_id(system, strict);
  lenient_id.calibrate(dataset, split.train);
  strict_id.calibrate(dataset, split.train);
  // Accept-if-distance<=threshold: a stricter FRR target means rejecting
  // more genuine samples, i.e. a SMALLER distance threshold.
  EXPECT_GE(lenient_id.threshold(), strict_id.threshold());
  EXPECT_GT(strict_id.threshold(), 0.0);
}

TEST(FineTune, ImprovesCrossEnvironmentIdentification) {
  // Train in the meeting room; adapt with a few office recordings; office
  // UIA should improve (the §VII-2 mitigation).
  const Dataset meeting = make_dataset(3, 3, 12, /*env=*/1);
  const Dataset office = make_dataset(3, 3, 12, /*env=*/0);

  GesturePrintSystem system(quick_config());
  system.fit(meeting, split_by_pair(meeting).train);

  const Split office_split = split_by_pair(office, 31);
  const SystemEvaluation before = system.evaluate(office, office_split.test);
  system.fine_tune(office, office_split.train, /*epochs=*/4);
  const SystemEvaluation after = system.evaluate(office, office_split.test);

  // Fine-tuning with in-domain data must help identification (the paper's
  // cross-env pain point); allow slack for noise but demand net improvement.
  EXPECT_GT(after.uia, before.uia - 0.05);
  EXPECT_GT(after.uia, 0.5);
  EXPECT_GT(after.gra, 0.7);
}

TEST(FineTune, RejectsMismatchedLabelSpace) {
  const Dataset dataset = make_dataset(3, 3, 8);
  GesturePrintSystem system(quick_config(4));
  system.fit(dataset, split_by_pair(dataset).train);

  const Dataset other = make_dataset(4, 3, 4);  // different user count
  const auto idx = std::vector<std::size_t>{0, 1, 2, 3};
  EXPECT_THROW(system.fine_tune(other, idx, 2), InvalidArgument);
}

TEST(Persistence, SaveLoadReproducesDecisions) {
  const Dataset dataset = make_dataset(3, 3, 10);
  GesturePrintConfig config = quick_config(6);
  GesturePrintSystem original(config);
  const Split split = split_by_pair(dataset);
  original.fit(dataset, split.train);

  const std::string path = testing::TempDir() + "gp_system.bin";
  original.save(path);

  GesturePrintSystem restored(config);
  EXPECT_FALSE(restored.fitted());
  restored.load(path);
  EXPECT_TRUE(restored.fitted());
  EXPECT_EQ(restored.num_gestures(), original.num_gestures());
  EXPECT_EQ(restored.num_users(), original.num_users());

  // Decisions agree on the evaluation split (logits are deterministic given
  // weights + the featurization seed stream, so compare hard labels on a
  // batch evaluation which uses identical streams per system instance).
  const SystemEvaluation eval_orig = original.evaluate(dataset, split.test);
  const SystemEvaluation eval_restored = restored.evaluate(dataset, split.test);
  EXPECT_NEAR(eval_restored.gra, eval_orig.gra, 0.1);
  EXPECT_NEAR(eval_restored.uia, eval_orig.uia, 0.15);
  EXPECT_GT(eval_restored.gra, 0.75);

  std::filesystem::remove(path);
}

TEST(Persistence, LoadRejectsModeMismatch) {
  const Dataset dataset = make_dataset(3, 2, 8);
  GesturePrintConfig config = quick_config(3);
  GesturePrintSystem serialized(config);
  serialized.fit(dataset, split_by_pair(dataset).train);
  const std::string path = testing::TempDir() + "gp_system_mode.bin";
  serialized.save(path);

  GesturePrintConfig parallel_config = config;
  parallel_config.mode = IdentificationMode::kParallel;
  GesturePrintSystem parallel(parallel_config);
  EXPECT_THROW(parallel.load(path), SerializationError);
  std::filesystem::remove(path);
}

TEST(CrossValidation, FoldsPartitionAndAggregate) {
  const Dataset dataset = make_dataset(3, 2, 10);
  GesturePrintConfig config = quick_config(3);
  const CrossValidationResult cv = cross_validate(dataset, config, /*k=*/2, /*seed=*/5);
  ASSERT_EQ(cv.folds.size(), 2u);
  // Aggregates are consistent with the folds.
  EXPECT_NEAR(cv.mean_gra, 0.5 * (cv.folds[0].gra + cv.folds[1].gra), 1e-12);
  EXPECT_NEAR(cv.mean_uia, 0.5 * (cv.folds[0].uia + cv.folds[1].uia), 1e-12);
  EXPECT_GE(cv.std_gra, 0.0);
  EXPECT_GT(cv.mean_gra, 0.5);  // 2-gesture task: far above 50% chance
  EXPECT_THROW(cross_validate(dataset, config, 1), InvalidArgument);
}

TEST(Persistence, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "gp_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a gp system file";
  }
  GesturePrintSystem system(quick_config(2));
  EXPECT_THROW(system.load(path), SerializationError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gp
