// Structured fuzzing of every parser/decoder boundary (`ctest -L fuzz-smoke`).
//
// Committed corpus seeds live under tests/corpus/ (regenerate byte-identical
// with --write-corpus); the in-process mutation engine (gp::testkit::fuzz)
// bit-flips, truncates, splices and length-prefix-attacks them and feeds
// every mutant to the target. The contract under test is crash-freedom and
// *clean typed-error propagation*: a target must either return normally or
// throw gp::Error — std::bad_alloc from an unchecked length prefix,
// std::length_error, or UB caught by a sanitizer build all fail the test.
// Deterministic: a failure reproduces exactly from the printed seed.
//
// Run under sanitizers via scripts/verify.sh (configures -DGP_SANITIZE=address
// and executes this label); the hardened readers in common/serialize,
// datasets/cache and pointcloud/io are what keep the allocator quiet here.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/wire.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "datasets/cache.hpp"
#include "enroll/buffer.hpp"
#include "health/slo.hpp"
#include "nn/quant.hpp"
#include "nn/serialize_nn.hpp"
#include "obs/json.hpp"
#include "pointcloud/io.hpp"
#include "radar/config.hpp"
#include "testkit/fuzz.hpp"
#include "testkit/seeds.hpp"

namespace gp {
namespace {

std::string g_corpus_dir;  // set in main()

/// Committed corpus + built-in canonical seeds. Every target gets the full
/// cross-format pool: feeding a GPRC blob to the GPDS parser is exactly the
/// kind of tag/layout confusion the typed-error contract must absorb.
std::vector<std::string> corpus() {
  std::vector<std::string> seeds = testkit::load_corpus_dir(g_corpus_dir);
  seeds.push_back(testkit::dataset_seed());
  seeds.push_back(testkit::recording_seed());
  seeds.push_back(testkit::params_seed());
  seeds.push_back(testkit::report_json_seed());
  seeds.push_back(testkit::quant_tables_seed());
  seeds.push_back(testkit::wire_frame_seed());
  seeds.push_back(testkit::wire_results_seed());
  seeds.push_back(testkit::enroll_buffer_seed());
  seeds.push_back(testkit::biometric_gallery_seed());
  seeds.push_back("");  // the degenerate seed every parser must survive
  return seeds;
}

void expect_clean(const testkit::FuzzOutcome& outcome) {
  std::cout << outcome.summary() << "\n";
  std::string joined;
  for (const auto& f : outcome.failures) joined += "  " + f + "\n";
  EXPECT_TRUE(outcome.clean()) << "contract violations:\n" << joined;
  // At least the matching canonical seed must parse; a target rejecting its
  // own format means the corpus (or the parser) has rotted.
  EXPECT_GT(outcome.accepted, 0u) << "no payload was ever accepted by " << outcome.target;
}

TEST(FuzzSmoke, DatasetCacheDecoder) {
  const auto outcome = testkit::fuzz_target(
      "datasets/read_dataset", corpus(),
      [](const std::string& payload) {
        std::istringstream in(payload, std::ios::binary);
        (void)read_dataset(in, "<fuzz>");  // nullopt (version mismatch) is fine
      });
  expect_clean(outcome);
}

TEST(FuzzSmoke, RecordingDecoder) {
  const auto outcome = testkit::fuzz_target(
      "pointcloud/load_recording", corpus(),
      [](const std::string& payload) {
        std::istringstream in(payload, std::ios::binary);
        (void)load_recording(in);
      });
  expect_clean(outcome);
}

TEST(FuzzSmoke, ModelParameterDecoder) {
  const auto outcome = testkit::fuzz_target(
      "nn/load_parameters", corpus(),
      [](const std::string& payload) {
        // Fresh skeleton per execution: load_parameters mutates in place and
        // a partial load must not poison the next run.
        std::vector<nn::Parameter> params = testkit::make_seed_parameters();
        std::vector<nn::Parameter*> ptrs;
        for (auto& p : params) ptrs.push_back(&p);
        std::istringstream in(payload, std::ios::binary);
        nn::load_parameters(in, ptrs);
      });
  expect_clean(outcome);
}

// The GPQ8 quant-table reader behind the .gpsy quant sections (DESIGN.md
// §11): truncated sections, bit-flipped scale bytes (NaN/negative scales)
// and out-of-range qweight bytes (-128 is outside the symmetric range) must
// all surface as SerializationError — never a crash, never an allocation
// driven by an unvalidated count.
TEST(FuzzSmoke, QuantTableDecoder) {
  const auto outcome = testkit::fuzz_target(
      "nn/load_quant_tables", corpus(),
      [](const std::string& payload) {
        std::istringstream in(payload, std::ios::binary);
        (void)nn::load_quant_tables(in);
      });
  expect_clean(outcome);
}

TEST(FuzzSmoke, ObsJsonParser) {
  testkit::FuzzOptions options;
  options.iterations = 600;  // cheap target, buy more coverage
  const auto outcome = testkit::fuzz_target(
      "obs/json_parse", corpus(),
      [](const std::string& payload) { (void)obs::json::parse(payload); }, options);
  expect_clean(outcome);
}

// The parse-back half of the obs contract: anything the emitter can produce
// must survive a parse→escape→parse cycle, for arbitrary (even invalid
// UTF-8) cell content.
TEST(FuzzSmoke, CsvAndJsonEscapeTotality) {
  const auto outcome = testkit::fuzz_target(
      "common/escape_roundtrip", corpus(),
      [](const std::string& payload) {
        const std::string cell = csv_escape(payload);
        if (cell.size() < payload.size()) throw Error("csv_escape shrank its input");
        const std::string quoted = "\"" + obs::json::escape(payload) + "\"";
        (void)obs::json::parse(quoted);  // emitted strings must re-parse
      });
  expect_clean(outcome);
}

// The GP_SLO spec parser guards an env-var boundary: arbitrary operator
// soup, duplicate options, huge counts and NaN-ish thresholds must come
// back as InvalidArgument, never a crash. Accepted specs must round-trip
// through their canonical form (parse ∘ to_string is the identity on it).
TEST(FuzzSmoke, SloSpecParser) {
  testkit::FuzzOptions options;
  options.iterations = 600;  // cheap target, buy more coverage
  std::vector<std::string> seeds = corpus();
  // Canonical in-grammar seeds so mutants explore near-valid specs, not
  // just binary noise (the binary corpus rides along from corpus()).
  seeds.push_back("p99_ms<5,shed_rate<0.05,window=256t,degraded_after=3");
  seeds.push_back("fault_rate<0.01,batch_occupancy>0.1,unhealthy_after=10,healthy_after=3");
  const auto outcome = testkit::fuzz_target(
      "health/slo_parse", seeds,
      [](const std::string& payload) {
        // May throw InvalidArgument — the typed rejection the contract allows.
        const health::SloSpec spec = health::SloSpec::parse(payload);
        const std::string canonical = spec.to_string();
        // An accepted spec failing its own round-trip is a parser bug, not a
        // rejection: surface it as a contract violation, not a typed error.
        try {
          if (health::SloSpec::parse(canonical).to_string() == canonical) return;
        } catch (const Error&) {
        }
        throw std::runtime_error("accepted GP_SLO spec failed canonical round-trip: '" +
                                 canonical + "'");
      });
  expect_clean(outcome);
}

// The GPWM cluster envelope decoder (DESIGN.md §12) is the trust boundary
// of the worker links: every byte arriving from a socketpair is untrusted
// until decode_message accepts it. Bit flips must die on the checksum,
// truncations on the hardened reader — always as SerializationError. The
// inner payload decoders run behind the envelope in production but are
// fuzzed raw here so a forged checksum cannot be the only line of defense.
TEST(FuzzSmoke, ClusterWireEnvelopeDecoder) {
  const auto outcome = testkit::fuzz_target(
      "cluster/decode_message", corpus(),
      [](const std::string& payload) { (void)cluster::decode_message(payload); });
  expect_clean(outcome);
}

TEST(FuzzSmoke, ClusterWireFrameDecoder) {
  const auto outcome = testkit::fuzz_target(
      "cluster/decode_wire_frame", corpus(),
      [](const std::string& payload) {
        // The canonical corpus seed is a full envelope; unwrap when it
        // decodes so the inner GPWF payload gets direct coverage too.
        try {
          const cluster::Message msg = cluster::decode_message(payload);
          (void)cluster::decode_wire_frame(msg.payload);
          return;
        } catch (const SerializationError&) {
        }
        (void)cluster::decode_wire_frame(payload);
      });
  expect_clean(outcome);
}

TEST(FuzzSmoke, ClusterWireResultsDecoder) {
  const auto outcome = testkit::fuzz_target(
      "cluster/decode_wire_results", corpus(),
      [](const std::string& payload) {
        try {
          const cluster::Message msg = cluster::decode_message(payload);
          (void)cluster::decode_wire_results(msg.payload);
          return;
        } catch (const SerializationError&) {
        }
        (void)cluster::decode_wire_results(payload);
      });
  expect_clean(outcome);
}

// The GPWK control payloads (acks, session-state blobs, error text) share
// the hardened-reader contract with the larger decoders.
TEST(FuzzSmoke, ClusterWireControlDecoders) {
  std::vector<std::string> seeds = corpus();
  // Canonical GPWK payloads (the committed corpus carries full GPWM
  // envelopes, whose inner tags are GPWF/GPWR) so mutants explore near-valid
  // control payloads too.
  seeds.push_back(cluster::encode_ack(3));
  seeds.push_back(cluster::encode_u64(0xF0225EEDULL));
  seeds.push_back(cluster::encode_state(7, std::string("\x01\x02\x00\x03", 4)));
  seeds.push_back(cluster::encode_text("segmenter state: window mismatch"));
  const auto outcome = testkit::fuzz_target(
      "cluster/decode_control", seeds,
      [](const std::string& payload) {
        bool accepted = false;
        const auto tolerate = [&](auto&& fn) {
          try {
            fn();
            accepted = true;
          } catch (const SerializationError&) {
          }
        };
        tolerate([&] { (void)cluster::decode_ack(payload); });
        tolerate([&] { (void)cluster::decode_u64(payload); });
        tolerate([&] { (void)cluster::decode_state(payload); });
        tolerate([&] { (void)cluster::decode_text(payload); });
        // Re-throw one typed rejection when nothing accepted, so the fuzz
        // accounting still distinguishes accepted from rejected payloads.
        if (!accepted) (void)cluster::decode_ack(payload);
      });
  expect_clean(outcome);
}

// The GPEB enrollment-buffer reader (gp::enroll, DESIGN.md §13) restores
// persisted candidate state across process restarts: unvalidated counts,
// out-of-range candidate ids/gestures/quality bytes and a wrong calibration
// fingerprint must all surface as SerializationError — never a crash or an
// unchecked allocation.
TEST(FuzzSmoke, EnrollBufferDecoder) {
  const auto outcome = testkit::fuzz_target(
      "enroll/buffer_load", corpus(),
      [](const std::string& payload) {
        std::istringstream in(payload, std::ios::binary);
        (void)enroll::EnrollmentBuffer::load(in, testkit::kEnrollSeedFingerprint);
      });
  expect_clean(outcome);
}

// The GPBG biometric-gallery reader: the calibration a serve-side novelty
// gate restores at startup. Zero/negative stddevs (division hazards), bogus
// FRR targets and forged per-gesture counts must die typed.
TEST(FuzzSmoke, BiometricGalleryDecoder) {
  const auto outcome = testkit::fuzz_target(
      "system/biometric_gallery_load", corpus(),
      [](const std::string& payload) {
        std::istringstream in(payload, std::ios::binary);
        (void)BiometricGallery::load(in);
      });
  expect_clean(outcome);
}

// Structured fuzz of RadarConfig::validate: payload bytes become field
// values (including NaN/Inf/denormal patterns from the mutation engine);
// the contract is OK-or-InvalidArgument, never a crash or a hung derived
// computation.
TEST(FuzzSmoke, RadarConfigValidation) {
  const auto outcome = testkit::fuzz_target(
      "radar/config_validate", corpus(),
      [](const std::string& payload) {
        RadarConfig config;
        const auto f64_at = [&](std::size_t offset, double fallback) {
          if (payload.size() < offset + sizeof(double)) return fallback;
          double v;
          std::memcpy(&v, payload.data() + offset, sizeof(v));
          return v;
        };
        const auto size_at = [&](std::size_t offset, std::size_t fallback) {
          if (payload.size() < offset + sizeof(std::uint32_t)) return fallback;
          std::uint32_t v;
          std::memcpy(&v, payload.data() + offset, sizeof(v));
          return static_cast<std::size_t>(v);
        };
        config.carrier_hz = f64_at(0, config.carrier_hz);
        config.range_resolution = f64_at(8, config.range_resolution);
        config.max_velocity = f64_at(16, config.max_velocity);
        config.frame_rate = f64_at(24, config.frame_rate);
        config.noise_sigma = f64_at(32, config.noise_sigma);
        config.num_samples = size_at(40, config.num_samples);
        config.num_chirps = size_at(44, config.num_chirps);
        config.num_azimuth_antennas = size_at(48, config.num_azimuth_antennas);
        config.num_elevation_antennas = size_at(52, config.num_elevation_antennas);
        config.angle_fft_size = size_at(56, config.angle_fft_size);
        config.validate();  // OK or InvalidArgument — nothing else
      });
  expect_clean(outcome);
}

}  // namespace
}  // namespace gp

#ifndef GP_CORPUS_DEFAULT_DIR
#define GP_CORPUS_DEFAULT_DIR "tests/corpus"
#endif

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  gp::g_corpus_dir = GP_CORPUS_DEFAULT_DIR;
  if (const char* dir = std::getenv("GP_CORPUS_DIR")) gp::g_corpus_dir = dir;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--write-corpus") {
      const auto written = gp::testkit::write_corpus(gp::g_corpus_dir);
      std::cout << "wrote " << written.size() << " corpus seeds to " << gp::g_corpus_dir << "\n";
      for (const auto& name : written) std::cout << "  " << name << "\n";
      return 0;
    }
  }
  return RUN_ALL_TESTS();
}
