// Radar substrate tests: config derivations against the paper's numbers,
// FMCW synthesis + full detection chain end-to-end on known targets, fast
// geometric backend behaviour, and full-chain vs fast-backend consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "radar/fast_backend.hpp"
#include "radar/fmcw.hpp"
#include "radar/frontend.hpp"
#include "radar/sensor.hpp"

namespace gp {
namespace {

Reflector make_reflector(const Vec3& pos, const Vec3& vel, double rcs = 1.0) {
  Reflector r;
  r.position = pos;
  r.velocity = vel;
  r.rcs = rcs;
  return r;
}

TEST(RadarConfig, DerivedQuantitiesMatchPaper) {
  const RadarConfig config;
  config.validate();
  // §V: 60-64 GHz, 0.04 m range resolution, 2.7 m/s max velocity,
  // 0.34 m/s velocity resolution.
  EXPECT_NEAR(config.wavelength(), 0.004977, 1e-4);
  EXPECT_NEAR(config.bandwidth_hz(), 3.747e9, 5e6);
  EXPECT_NEAR(config.velocity_resolution(), 0.3375, 1e-3);
  EXPECT_GT(config.max_range(), 5.0);  // covers every anchor distance used
  EXPECT_EQ(config.num_virtual_antennas(), 12u);  // 3TX x 4RX
}

TEST(RadarConfig, ValidateRejectsBadShapes) {
  RadarConfig config;
  config.num_samples = 100;  // not pow2
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = RadarConfig{};
  config.angle_fft_size = 4;  // < antennas
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(Echo, ReflectorConversionGeometry) {
  const Reflector r = make_reflector(Vec3(1.0, 1.0, 0.0), Vec3(0.0, 1.0, 0.0));
  const TargetEcho echo = reflector_to_echo(r);
  EXPECT_NEAR(echo.range, std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(echo.azimuth, kPi / 4.0, 1e-9);
  EXPECT_NEAR(echo.elevation, 0.0, 1e-9);
  // Radial velocity: v . r_hat = (0,1,0).(1/sqrt2, 1/sqrt2, 0) = 1/sqrt2.
  EXPECT_NEAR(echo.radial_velocity, 1.0 / std::sqrt(2.0), 1e-9);
}

TEST(FullChain, DetectsMovingTargetAtCorrectRange) {
  RadarConfig config;
  config.noise_sigma = 0.002;
  Rng rng(1);
  // Receding target at 1.5 m, 1.0 m/s radially, on boresight.
  SceneFrame scene;
  scene.frame_index = 0;
  scene.reflectors.push_back(
      make_reflector(Vec3(0.0, 1.5, 0.0), Vec3(0.0, 1.0, 0.0), 2.0));

  const auto cube = synthesize_frame(config, scene.reflectors, rng);
  const PointCloud points = detect_points(config, cube, 0);
  ASSERT_FALSE(points.empty());

  // The strongest point should sit near the true position with positive
  // (receding) velocity close to 1 m/s.
  const RadarPoint* best = &points[0];
  for (const auto& p : points) {
    if (p.snr_db > best->snr_db) best = &p;
  }
  EXPECT_NEAR(best->position.norm(), 1.5, 0.08);
  EXPECT_NEAR(best->position.x, 0.0, 0.15);
  EXPECT_NEAR(best->velocity, 1.0, 0.35);  // within one Doppler bin
}

TEST(FullChain, StaticTargetRemovedByClutterFilter) {
  RadarConfig config;
  config.noise_sigma = 0.002;
  Rng rng(2);
  SceneFrame scene;
  scene.reflectors.push_back(make_reflector(Vec3(0.0, 2.0, 0.0), Vec3(), 3.0));

  const auto cube = synthesize_frame(config, scene.reflectors, rng);
  const PointCloud points = detect_points(config, cube, 0);
  // A perfectly static target yields no (or almost no) detections.
  std::size_t near_target = 0;
  for (const auto& p : points) {
    if (std::abs(p.position.norm() - 2.0) < 0.15) ++near_target;
  }
  EXPECT_LE(near_target, 1u);
}

TEST(FullChain, OffBoresightAzimuthRecovered) {
  RadarConfig config;
  config.noise_sigma = 0.001;
  Rng rng(3);
  const double az = 0.35;  // rad
  const Vec3 pos(2.0 * std::sin(az), 2.0 * std::cos(az), 0.0);
  const Vec3 vel = pos.normalized() * 0.9;
  SceneFrame scene;
  scene.reflectors.push_back(make_reflector(pos, vel, 2.0));

  const auto cube = synthesize_frame(config, scene.reflectors, rng);
  const PointCloud points = detect_points(config, cube, 0);
  ASSERT_FALSE(points.empty());
  const RadarPoint* best = &points[0];
  for (const auto& p : points) {
    if (p.snr_db > best->snr_db) best = &p;
  }
  const double measured_az = std::atan2(best->position.x, best->position.y);
  EXPECT_NEAR(measured_az, az, 0.12);
}

TEST(FullChain, ElevationRecovered) {
  RadarConfig config;
  config.noise_sigma = 0.001;
  Rng rng(4);
  const double el = 0.25;
  const Vec3 pos(0.0, 1.8 * std::cos(el), 1.8 * std::sin(el));
  SceneFrame scene;
  scene.reflectors.push_back(make_reflector(pos, pos.normalized() * 0.8, 2.0));

  const auto cube = synthesize_frame(config, scene.reflectors, rng);
  const PointCloud points = detect_points(config, cube, 0);
  ASSERT_FALSE(points.empty());
  const RadarPoint* best = &points[0];
  for (const auto& p : points) {
    if (p.snr_db > best->snr_db) best = &p;
  }
  const double ground = std::sqrt(best->position.x * best->position.x +
                                  best->position.y * best->position.y);
  EXPECT_NEAR(std::atan2(best->position.z, ground), el, 0.18);  // 4-element ULA is coarse
}

TEST(FastBackend, StaticReflectorsDropped) {
  RadarConfig radar;
  FastBackendConfig fast;
  fast.clutter_rate = 0.0;
  fast.ghost_prob = 0.0;
  Rng rng(5);
  SceneFrame scene;
  scene.reflectors.push_back(make_reflector(Vec3(0, 1.5, 0), Vec3(), 2.0));
  const FrameCloud frame = fast_process_frame(radar, fast, scene, rng);
  EXPECT_TRUE(frame.points.empty());
}

TEST(FastBackend, MovingReflectorDetectedAndQuantised) {
  RadarConfig radar;
  FastBackendConfig fast;
  fast.clutter_rate = 0.0;
  fast.ghost_prob = 0.0;
  Rng rng(6);
  SceneFrame scene;
  scene.reflectors.push_back(make_reflector(Vec3(0, 1.2, 0), Vec3(0, 1.0, 0), 1.0));

  int detected = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const FrameCloud frame = fast_process_frame(radar, fast, scene, rng);
    if (frame.points.empty()) continue;
    ++detected;
    const RadarPoint& p = frame.points.front();
    // Velocity snapped to the 0.3375 m/s grid and nonzero.
    const double v_res = radar.velocity_resolution();
    EXPECT_NEAR(std::remainder(p.velocity, v_res), 0.0, 1e-9);
    EXPECT_NE(p.velocity, 0.0);
    EXPECT_NEAR(p.position.norm(), 1.2, 0.15);
  }
  EXPECT_GT(detected, 40);  // strong close target: high detection rate
}

TEST(FastBackend, DetectionRateFallsWithRange) {
  RadarConfig radar;
  FastBackendConfig fast;
  fast.clutter_rate = 0.0;
  fast.ghost_prob = 0.0;
  Rng rng(7);

  const auto rate_at = [&](double range) {
    SceneFrame scene;
    scene.reflectors.push_back(
        make_reflector(Vec3(0, range, 0), Vec3(0, 0.9, 0), 0.8));
    int hits = 0;
    for (int trial = 0; trial < 200; ++trial) {
      hits += fast_process_frame(radar, fast, scene, rng).points.empty() ? 0 : 1;
    }
    return hits / 200.0;
  };

  const double near_rate = rate_at(1.2);
  const double mid_rate = rate_at(3.0);
  const double far_rate = rate_at(4.8);
  EXPECT_GT(near_rate, 0.85);
  EXPECT_GT(near_rate, mid_rate);
  EXPECT_GT(mid_rate, far_rate);
  EXPECT_GT(far_rate, 0.005);  // still occasionally visible (paper: degraded but alive)
}

TEST(FastBackend, ClutterRateProducesBackgroundPoints) {
  RadarConfig radar;
  FastBackendConfig fast;
  fast.clutter_rate = 2.0;
  fast.ghost_prob = 0.0;
  Rng rng(8);
  SceneFrame empty_scene;
  empty_scene.reflectors.push_back(make_reflector(Vec3(0, 4.9, 0), Vec3(), 0.01));

  std::size_t total = 0;
  for (int trial = 0; trial < 100; ++trial) {
    total += fast_process_frame(radar, fast, empty_scene, rng).points.size();
  }
  // Poisson(2) per frame, thinned by the detection curve: expect a sizable
  // fraction to survive.
  EXPECT_GT(total, 30u);
}

TEST(RadarSensor, ObserveProducesFramePerSceneFrame) {
  Rng rng(9);
  const UserProfile user = UserProfile::sample(0, rng);
  const GesturePerformer performer(user, PerformanceConfig{});
  Rng rep(10);
  const SceneSequence scene = performer.perform(asl_gesture_set()[0], rep);

  const RadarSensor sensor;
  const FrameSequence frames = sensor.observe(scene, rng);
  ASSERT_EQ(frames.size(), scene.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].frame_index, scene[i].frame_index);
  }
  // During the active window the radar must see a meaningful point count.
  std::size_t peak = 0;
  for (const auto& f : frames) peak = std::max(peak, f.points.size());
  EXPECT_GE(peak, 5u);
}

TEST(RadarConsistency, FastBackendMatchesFullChainStatistics) {
  // The fast backend is a calibrated surrogate: per-frame point counts over
  // a gesture should agree with the full chain within a factor of ~2.
  Rng rng(11);
  const UserProfile user = UserProfile::sample(3, rng);
  PerformanceConfig perf;
  perf.idle_frames_before = 2;
  perf.idle_frames_after = 2;
  const GesturePerformer performer(user, perf);
  Rng rep(12);
  const SceneSequence scene = performer.perform(find_gesture(asl_gesture_set(), "push"), rep);

  FastBackendConfig fast;
  fast.clutter_rate = 0.0;
  fast.ghost_prob = 0.0;
  RadarConfig config;
  Rng rng_full(13);
  Rng rng_fast(13);

  double full_total = 0;
  double fast_total = 0;
  for (const auto& frame : scene) {
    full_total += static_cast<double>(process_frame(config, frame, rng_full).points.size());
    fast_total +=
        static_cast<double>(fast_process_frame(config, fast, frame, rng_fast).points.size());
  }
  ASSERT_GT(full_total, 0.0);
  ASSERT_GT(fast_total, 0.0);
  const double ratio = fast_total / full_total;
  EXPECT_GT(ratio, 0.4) << "fast=" << fast_total << " full=" << full_total;
  EXPECT_LT(ratio, 2.5) << "fast=" << fast_total << " full=" << full_total;
}

}  // namespace
}  // namespace gp
