// Evaluation-library tests: confusion/accuracy/F1, rank-based AUC, ROC and
// EER properties, stratified splits and k-fold structure, t-SNE embedding
// quality (via silhouette), and silhouette behaviour itself.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "eval/metrics.hpp"
#include "eval/roc.hpp"
#include "eval/splits.hpp"
#include "eval/tsne.hpp"

namespace gp {
namespace {

TEST(Confusion, AccuracyAndCounts) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_EQ(cm.at(0, 1), 1u);
}

TEST(Confusion, PerfectPredictionsGiveF1One) {
  std::vector<int> truth{0, 1, 2, 0, 1, 2};
  const ConfusionMatrix cm = build_confusion(truth, truth, 3);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(Confusion, KnownF1Value) {
  // Binary: TP=2, FP=1, FN=1 for class 1 => F1 = 2*2/(4+1+1) = 2/3.
  const std::vector<int> truth{1, 1, 1, 0, 0};
  const std::vector<int> pred{1, 1, 0, 1, 0};
  const ConfusionMatrix cm = build_confusion(truth, pred, 2);
  const auto f1 = cm.per_class_f1();
  EXPECT_NEAR(f1[1], 2.0 / 3.0, 1e-12);
}

TEST(Confusion, MacroF1IgnoresAbsentClasses) {
  // Class 2 never appears in truth: macro-F1 averages only classes 0, 1.
  const std::vector<int> truth{0, 0, 1, 1};
  const std::vector<int> pred{0, 0, 1, 1};
  const ConfusionMatrix cm = build_confusion(truth, pred, 3);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(Auc, PerfectSeparationGivesOne) {
  nn::Tensor probs(4, 2);
  probs.at(0, 0) = 0.9f;
  probs.at(0, 1) = 0.1f;
  probs.at(1, 0) = 0.8f;
  probs.at(1, 1) = 0.2f;
  probs.at(2, 0) = 0.1f;
  probs.at(2, 1) = 0.9f;
  probs.at(3, 0) = 0.2f;
  probs.at(3, 1) = 0.8f;
  EXPECT_NEAR(macro_auc(probs, {0, 0, 1, 1}), 1.0, 1e-12);
}

TEST(Auc, RandomScoresNearHalf) {
  Rng rng(1);
  nn::Tensor probs(2000, 2);
  std::vector<int> truth(2000);
  for (std::size_t i = 0; i < 2000; ++i) {
    const float p = static_cast<float>(rng.uniform());
    probs.at(i, 0) = p;
    probs.at(i, 1) = 1.0f - p;
    truth[i] = static_cast<int>(rng.index(2));
  }
  EXPECT_NEAR(macro_auc(probs, truth), 0.5, 0.05);
}

TEST(Auc, TiesHandledAsHalf) {
  nn::Tensor probs(4, 2, 0.5f);  // all tied
  EXPECT_NEAR(macro_auc(probs, {0, 0, 1, 1}), 0.5, 1e-12);
}

TEST(Roc, PerfectScoresGiveZeroEer) {
  const RocCurve curve = roc_from_scores({0.9, 0.8, 0.95}, {0.1, 0.2, 0.05});
  EXPECT_NEAR(curve.eer(), 0.0, 1e-9);
  EXPECT_NEAR(curve.auc, 1.0, 1e-9);
}

TEST(Roc, RandomScoresGiveHalfEer) {
  Rng rng(2);
  std::vector<double> genuine(3000);
  std::vector<double> impostor(3000);
  for (auto& v : genuine) v = rng.uniform();
  for (auto& v : impostor) v = rng.uniform();
  const RocCurve curve = roc_from_scores(genuine, impostor);
  EXPECT_NEAR(curve.eer(), 0.5, 0.04);
  EXPECT_NEAR(curve.auc, 0.5, 0.04);
}

TEST(Roc, CurveIsMonotone) {
  Rng rng(3);
  std::vector<double> genuine(200);
  std::vector<double> impostor(200);
  for (auto& v : genuine) v = 0.3 + 0.7 * rng.uniform();
  for (auto& v : impostor) v = 0.7 * rng.uniform();
  const RocCurve curve = roc_from_scores(genuine, impostor);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].fpr, curve.points[i - 1].fpr);
    EXPECT_GE(curve.points[i].tpr, curve.points[i - 1].tpr);
  }
  EXPECT_LT(curve.eer(), 0.35);
  EXPECT_GT(curve.auc, 0.65);
}

TEST(Roc, ThresholdsAreStrictlyDecreasing) {
  Rng rng(42);
  std::vector<double> genuine(100);
  std::vector<double> impostor(100);
  for (auto& v : genuine) v = 0.4 + 0.6 * rng.uniform();
  for (auto& v : impostor) v = 0.6 * rng.uniform();
  const RocCurve curve = roc_from_scores(genuine, impostor);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_LT(curve.points[i].threshold, curve.points[i - 1].threshold);
  }
  // Endpoints: (0,0) at the top threshold, (1,1) at the bottom.
  EXPECT_DOUBLE_EQ(curve.points.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.points.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.points.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.points.back().tpr, 1.0);
}

TEST(Roc, EerBoundedByHalfForSeparatedScores) {
  // Better-than-random scores must give EER < 0.5; inverted scores > 0.5.
  const RocCurve good = roc_from_scores({0.8, 0.9, 0.7, 0.85}, {0.2, 0.3, 0.1, 0.4});
  EXPECT_LT(good.eer(), 0.5);
  const RocCurve inverted = roc_from_scores({0.2, 0.3, 0.1, 0.4}, {0.8, 0.9, 0.7, 0.85});
  EXPECT_GT(inverted.eer(), 0.5);
}

TEST(Roc, FromProbabilitiesSplitsGenuineImpostor) {
  nn::Tensor probs(2, 3);
  probs.at(0, 0) = 0.8f;   // genuine (truth 0)
  probs.at(0, 1) = 0.15f;  // impostor
  probs.at(0, 2) = 0.05f;
  probs.at(1, 1) = 0.9f;   // genuine (truth 1)
  probs.at(1, 0) = 0.05f;
  probs.at(1, 2) = 0.05f;
  const RocCurve curve = roc_from_probabilities(probs, {0, 1});
  EXPECT_NEAR(curve.eer(), 0.0, 1e-9);
}

TEST(Splits, StratifiedHoldoutKeepsClassBalance) {
  std::vector<int> labels;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 20; ++i) labels.push_back(c);
  }
  Rng rng(4);
  const Split split = stratified_split(labels, 0.2, rng);
  EXPECT_EQ(split.test.size(), 16u);   // 4 per class
  EXPECT_EQ(split.train.size(), 64u);

  std::vector<int> test_counts(4, 0);
  for (std::size_t idx : split.test) ++test_counts[labels[idx]];
  for (int c : test_counts) EXPECT_EQ(c, 4);

  // Disjoint and exhaustive.
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  for (std::size_t idx : split.test) EXPECT_TRUE(all.insert(idx).second);
  EXPECT_EQ(all.size(), labels.size());
}

TEST(Splits, EveryClassRepresentedInTest) {
  std::vector<int> labels{0, 0, 0, 0, 0, 0, 0, 0, 1, 1};  // imbalanced
  Rng rng(5);
  const Split split = stratified_split(labels, 0.2, rng);
  bool class1_in_test = false;
  for (std::size_t idx : split.test) class1_in_test |= labels[idx] == 1;
  EXPECT_TRUE(class1_in_test);
}

TEST(Splits, KfoldPartitionsExactly) {
  std::vector<int> labels;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) labels.push_back(c);
  }
  Rng rng(6);
  const auto folds = stratified_kfold(labels, 5, rng);
  ASSERT_EQ(folds.size(), 5u);

  std::vector<int> test_membership(labels.size(), 0);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), labels.size());
    for (std::size_t idx : fold.test) ++test_membership[idx];
  }
  // Each sample appears in exactly one fold's test set.
  for (int count : test_membership) EXPECT_EQ(count, 1);
}

TEST(Splits, KfoldRejectsTinyClasses) {
  std::vector<int> labels{0, 0, 0, 1};  // class 1 has 1 < k samples
  Rng rng(7);
  EXPECT_THROW(stratified_kfold(labels, 3, rng), Error);
}

TEST(Tsne, SeparatesWellSeparatedClusters) {
  // Three far-apart Gaussian blobs in 10-D must embed into clearly
  // separated 2-D clusters (silhouette well above zero).
  Rng rng(8);
  const std::size_t per_cluster = 25;
  nn::Tensor features(3 * per_cluster, 10);
  std::vector<int> labels(3 * per_cluster);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      const std::size_t row = c * per_cluster + i;
      labels[row] = static_cast<int>(c);
      for (std::size_t d = 0; d < 10; ++d) {
        features.at(row, d) =
            static_cast<float>((d == c ? 8.0 : 0.0) + rng.gaussian(0.0, 0.5));
      }
    }
  }

  TsneConfig config;
  config.iterations = 250;
  const nn::Tensor embedding = tsne(features, config, rng);
  EXPECT_EQ(embedding.rows(), features.rows());
  EXPECT_EQ(embedding.cols(), 2u);
  EXPECT_GT(silhouette_score(embedding, labels), 0.5);
}

TEST(Silhouette, PerfectClustersNearOne) {
  nn::Tensor embedding(6, 2);
  for (int i = 0; i < 3; ++i) {
    embedding.at(i, 0) = 0.0f + 0.01f * i;
    embedding.at(i + 3, 0) = 10.0f + 0.01f * i;
  }
  EXPECT_GT(silhouette_score(embedding, {0, 0, 0, 1, 1, 1}), 0.95);
}

TEST(Silhouette, RandomLabelsNearZero) {
  Rng rng(9);
  nn::Tensor embedding(60, 2);
  std::vector<int> labels(60);
  for (std::size_t i = 0; i < 60; ++i) {
    embedding.at(i, 0) = static_cast<float>(rng.gaussian());
    embedding.at(i, 1) = static_cast<float>(rng.gaussian());
    labels[i] = static_cast<int>(rng.index(3));
  }
  EXPECT_NEAR(silhouette_score(embedding, labels), 0.0, 0.15);
}

}  // namespace
}  // namespace gp
