// Dataset regenerator tests: catalogue structure vs Table I, generation
// invariants (labels, distances, sample counts), environment/session
// effects, featurization prep, and the dataset cache round-trip.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "datasets/cache.hpp"
#include "datasets/catalog.hpp"
#include "datasets/prep.hpp"

namespace gp {
namespace {

DatasetScale tiny_scale() {
  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 3;
  return scale;
}

TEST(Catalog, MirrorsTableOne) {
  const DatasetScale full{1000, 12};
  EXPECT_EQ(gestureprint_spec(0, full).gestures.size(), 15u);
  EXPECT_EQ(gestureprint_spec(0, full).num_users, 17u);
  EXPECT_EQ(pantomime_spec(0, full).gestures.size(), 21u);
  EXPECT_EQ(pantomime_spec(0, full).num_users, 26u);
  EXPECT_EQ(pantomime_spec(1, full).num_users, 14u);
  EXPECT_EQ(mhomeges_spec({1.2}, full).gestures.size(), 10u);
  EXPECT_EQ(mtranssee_spec({1.2}, full).num_users, 32u);
  EXPECT_EQ(mtranssee_anchors().size(), 13u);  // 1.2–4.8 m
  EXPECT_EQ(mhomeges_anchors().size(), 13u);   // 1.2–3.0 m
  EXPECT_NEAR(mtranssee_anchors().back(), 4.8, 1e-9);
}

TEST(Catalog, SameCohortAcrossGestureprintEnvironments) {
  // Paper: the same 17 participants in both environments.
  const auto office = gestureprint_spec(0, tiny_scale());
  const auto meeting = gestureprint_spec(1, tiny_scale());
  EXPECT_EQ(office.user_seed, meeting.user_seed);
  // Pantomime office/open cohorts differ.
  EXPECT_NE(pantomime_spec(0, tiny_scale()).user_seed, pantomime_spec(1, tiny_scale()).user_seed);
}

TEST(Generate, SampleCountAndLabels) {
  DatasetSpec spec = gestureprint_spec(1, tiny_scale());
  spec.gestures.resize(4);
  const Dataset dataset = generate_dataset(spec);

  // 3 users x 4 gestures x 3 reps = 36 (minus rare empty-cloud drops).
  EXPECT_GE(dataset.samples.size(), 30u);
  EXPECT_LE(dataset.samples.size(), 36u);

  std::set<int> gestures;
  std::set<int> users;
  for (const auto& s : dataset.samples) {
    gestures.insert(s.gesture);
    users.insert(s.user);
    EXPECT_GE(s.cloud.points.size(), 4u);
    EXPECT_GT(s.active_frames, 5u);
    EXPECT_DOUBLE_EQ(s.distance, 1.2);
  }
  EXPECT_EQ(gestures.size(), 4u);
  EXPECT_EQ(users.size(), 3u);
}

TEST(Generate, DeterministicForSameSpec) {
  DatasetSpec spec = mtranssee_spec({1.2}, tiny_scale());
  spec.gestures.resize(3);
  const Dataset a = generate_dataset(spec);
  const Dataset b = generate_dataset(spec);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    ASSERT_EQ(a.samples[i].cloud.points.size(), b.samples[i].cloud.points.size());
    if (!a.samples[i].cloud.points.empty()) {
      EXPECT_DOUBLE_EQ(a.samples[i].cloud.points[0].position.x,
                       b.samples[i].cloud.points[0].position.x);
    }
  }
}

TEST(Generate, MultipleAnchorsCycleDistances) {
  DatasetSpec spec = mtranssee_spec({1.2, 2.4}, tiny_scale());
  spec.gestures.resize(2);
  const Dataset dataset = generate_dataset(spec);
  std::set<double> distances;
  for (const auto& s : dataset.samples) distances.insert(s.distance);
  EXPECT_EQ(distances.size(), 2u);
}

TEST(Generate, FartherAnchorsYieldSparserClouds) {
  DatasetSpec spec = mtranssee_spec({1.2, 4.2}, tiny_scale());
  spec.gestures.resize(3);
  const Dataset dataset = generate_dataset(spec);
  double near_points = 0.0;
  double near_count = 0.0;
  double far_points = 0.0;
  double far_count = 0.0;
  for (const auto& s : dataset.samples) {
    if (s.distance < 2.0) {
      near_points += static_cast<double>(s.cloud.points.size());
      near_count += 1.0;
    } else {
      far_points += static_cast<double>(s.cloud.points.size());
      far_count += 1.0;
    }
  }
  ASSERT_GT(near_count, 0.0);
  ASSERT_GT(far_count, 0.0);
  EXPECT_GT(near_points / near_count, 1.5 * far_points / far_count);
}

TEST(Generate, GestureAndUserLabelVectorsAlign) {
  DatasetSpec spec = gestureprint_spec(0, tiny_scale());
  spec.gestures.resize(3);
  const Dataset dataset = generate_dataset(spec);
  const auto g = dataset.gesture_labels();
  const auto u = dataset.user_labels();
  ASSERT_EQ(g.size(), dataset.samples.size());
  ASSERT_EQ(u.size(), dataset.samples.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g[i], dataset.samples[i].gesture);
    EXPECT_EQ(u[i], dataset.samples[i].user);
  }
}

TEST(Prep, SubsetFeaturizationAndLabels) {
  DatasetSpec spec = gestureprint_spec(1, tiny_scale());
  spec.gestures.resize(3);
  const Dataset dataset = generate_dataset(spec);

  PrepConfig config;
  config.augment = false;
  Rng rng(1);
  const auto idx = all_indices(dataset);
  const LabeledSamples gesture_set =
      prepare_subset(dataset, idx, LabelKind::kGesture, config, rng);
  EXPECT_EQ(gesture_set.size(), dataset.samples.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(gesture_set.labels[i], dataset.samples[idx[i]].gesture);
    EXPECT_EQ(gesture_set.samples[i].num_points, config.features.num_points);
  }

  const LabeledSamples user_set = prepare_subset(dataset, idx, LabelKind::kUser, config, rng);
  EXPECT_EQ(user_set.labels[0], dataset.samples[idx[0]].user);
}

TEST(Prep, AugmentationMultipliesSamples) {
  DatasetSpec spec = gestureprint_spec(1, tiny_scale());
  spec.gestures.resize(2);
  const Dataset dataset = generate_dataset(spec);

  PrepConfig config;
  config.augment = true;
  config.augmentation.copies = 3;
  Rng rng(2);
  const auto idx = all_indices(dataset);
  const LabeledSamples augmented =
      prepare_subset(dataset, idx, LabelKind::kGesture, config, rng);
  EXPECT_EQ(augmented.size(), dataset.samples.size() * 4);  // original + 3
}

TEST(Prep, IndexFilters) {
  DatasetSpec spec = mtranssee_spec({1.2, 2.4}, tiny_scale());
  spec.gestures.resize(2);
  spec.speeds = {1.0, 1.4};
  const Dataset dataset = generate_dataset(spec);

  for (std::size_t i : indices_where_gesture(dataset, 1)) {
    EXPECT_EQ(dataset.samples[i].gesture, 1);
  }
  for (std::size_t i : indices_where_distance(dataset, 2.4)) {
    EXPECT_DOUBLE_EQ(dataset.samples[i].distance, 2.4);
  }
  for (std::size_t i : indices_where_speed(dataset, 1.4)) {
    EXPECT_DOUBLE_EQ(dataset.samples[i].speed, 1.4);
  }
  EXPECT_EQ(indices_where_gesture(dataset, 0).size() + indices_where_gesture(dataset, 1).size(),
            dataset.samples.size());
}

TEST(Cache, SaveLoadRoundTrip) {
  DatasetSpec spec = gestureprint_spec(0, tiny_scale());
  spec.gestures.resize(2);
  const Dataset dataset = generate_dataset(spec);

  const std::string path = testing::TempDir() + "gp_cache_test.gpds";
  save_dataset(path, dataset);
  const auto loaded = load_dataset(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->samples.size(), dataset.samples.size());
  for (std::size_t i = 0; i < dataset.samples.size(); ++i) {
    EXPECT_EQ(loaded->samples[i].gesture, dataset.samples[i].gesture);
    EXPECT_EQ(loaded->samples[i].user, dataset.samples[i].user);
    ASSERT_EQ(loaded->samples[i].cloud.points.size(), dataset.samples[i].cloud.points.size());
    if (!dataset.samples[i].cloud.points.empty()) {
      EXPECT_DOUBLE_EQ(loaded->samples[i].cloud.points[0].velocity,
                       dataset.samples[i].cloud.points[0].velocity);
    }
  }
  std::filesystem::remove(path);
}

TEST(Cache, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_dataset("/nonexistent/path.gpds").has_value());
}

TEST(Cache, GarbageFileThrows) {
  const std::string path = testing::TempDir() + "gp_garbage.gpds";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a dataset";
  }
  EXPECT_THROW(load_dataset(path), SerializationError);
  std::filesystem::remove(path);
}

TEST(Cache, SchemaVersionMismatchWarnsAndReturnsNullopt) {
  DatasetSpec spec = gestureprint_spec(0, tiny_scale());
  spec.gestures.resize(2);
  const Dataset dataset = generate_dataset(spec);
  const std::string path = testing::TempDir() + "gp_schema_mismatch.gpds";
  save_dataset(path, dataset);

  // The schema version is the u64 immediately after the 4-byte "GPDS" tag
  // and the 1-byte container format version; bump it to a future version
  // the loader has never heard of.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(5);
    const std::uint64_t future_version = 0xFFFFFFFFULL;
    file.write(reinterpret_cast<const char*>(&future_version), sizeof(future_version));
  }

  // A mismatch is not corruption: it must report (via log) and decline the
  // cache rather than throw, so callers regenerate with a visible reason.
  EXPECT_FALSE(load_dataset(path).has_value());
  std::filesystem::remove(path);
}

TEST(Cache, TruncatedFileThrows) {
  DatasetSpec spec = gestureprint_spec(0, tiny_scale());
  spec.gestures.resize(2);
  const Dataset dataset = generate_dataset(spec);
  const std::string path = testing::TempDir() + "gp_trunc.gpds";
  save_dataset(path, dataset);
  // Chop the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_dataset(path), SerializationError);
  std::filesystem::remove(path);
}

TEST(Cache, CachedGenerationHitsOnSecondCall) {
  DatasetSpec spec = gestureprint_spec(0, tiny_scale());
  spec.gestures.resize(2);
  const std::string dir = testing::TempDir() + "gp_cache_dir";
  const Dataset first = generate_dataset_cached(spec, dir);
  const Dataset second = generate_dataset_cached(spec, dir);
  EXPECT_EQ(first.samples.size(), second.samples.size());
  // The cache key file exists.
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + dataset_cache_key(spec) + ".gpds"));
  std::filesystem::remove_all(dir);
}

TEST(Cache, KeyChangesWithSpec) {
  DatasetSpec a = gestureprint_spec(0, tiny_scale());
  DatasetSpec b = a;
  b.seed += 1;
  EXPECT_NE(dataset_cache_key(a), dataset_cache_key(b));
  DatasetSpec c = a;
  c.distances = {2.0};
  EXPECT_NE(dataset_cache_key(a), dataset_cache_key(c));
}

TEST(Recording, TruthSpansAreOrderedAndInBounds) {
  DatasetSpec spec = gestureprint_spec(1, tiny_scale());
  const ContinuousRecording recording = generate_recording(spec, 1, {0, 2, 1}, 55);
  ASSERT_EQ(recording.truth_spans.size(), 3u);
  std::size_t prev_end = 0;
  for (const auto& [begin, end] : recording.truth_spans) {
    EXPECT_GE(begin, prev_end);
    EXPECT_LT(end, recording.frames.size());
    EXPECT_LT(begin, end);
    prev_end = end;
  }
  // Frame indices are globally consecutive.
  for (std::size_t i = 0; i < recording.frames.size(); ++i) {
    EXPECT_EQ(recording.frames[i].frame_index, static_cast<int>(i));
  }
}

}  // namespace
}  // namespace gp
