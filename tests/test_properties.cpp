// Cross-cutting property tests (TEST_P sweeps) spanning modules: radar
// geometry round-trips over parameter grids, full-chain angle recovery,
// featurization invariances, segmentation across gesture types, metric
// ordering under controlled perturbations, and spline/IK invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "kinematics/gesture_spec.hpp"
#include "kinematics/performer.hpp"
#include "pipeline/preprocessor.hpp"
#include "pipeline/segmentation.hpp"
#include "pointcloud/metrics.hpp"
#include "radar/fast_backend.hpp"
#include "radar/fmcw.hpp"
#include "radar/frontend.hpp"
#include "radar/sensor.hpp"

namespace gp {
namespace {

// ---- radar geometry round-trip over a (range, azimuth, elevation) grid ----

struct EchoCase {
  double range;
  double azimuth;
  double elevation;
};

class EchoRoundTrip : public ::testing::TestWithParam<EchoCase> {};

TEST_P(EchoRoundTrip, CartesianToEchoAndBack) {
  const EchoCase c = GetParam();
  Reflector r;
  r.position = Vec3(c.range * std::sin(c.azimuth) * std::cos(c.elevation),
                    c.range * std::cos(c.azimuth) * std::cos(c.elevation),
                    c.range * std::sin(c.elevation));
  r.velocity = r.position.normalized() * 0.9;
  const TargetEcho echo = reflector_to_echo(r);
  EXPECT_NEAR(echo.range, c.range, 1e-9);
  EXPECT_NEAR(echo.azimuth, c.azimuth, 1e-9);
  EXPECT_NEAR(echo.elevation, c.elevation, 1e-9);
  EXPECT_NEAR(echo.radial_velocity, 0.9, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EchoRoundTrip,
    ::testing::Values(EchoCase{1.2, 0.0, 0.0}, EchoCase{1.2, 0.5, 0.1},
                      EchoCase{2.4, -0.6, -0.2}, EchoCase{3.6, 0.9, 0.3},
                      EchoCase{4.8, -0.3, 0.25}, EchoCase{0.8, 1.1, -0.3}));

// ---- fast-backend quantisation honours the radar's bin grids everywhere ----

class FastBackendGrid : public ::testing::TestWithParam<double> {};

TEST_P(FastBackendGrid, PointsLandOnResolutionGrids) {
  const double range = GetParam();
  RadarConfig radar;
  FastBackendConfig fast;
  fast.clutter_rate = 0.0;
  fast.ghost_prob = 0.0;
  Rng rng(static_cast<std::uint64_t>(range * 1000));

  SceneFrame scene;
  Reflector r;
  r.position = Vec3(0.3, range, 0.1);
  r.velocity = r.position.normalized() * 1.1;
  r.rcs = 3.0;
  scene.reflectors.push_back(r);

  const double v_res = radar.velocity_resolution();
  for (int trial = 0; trial < 40; ++trial) {
    const FrameCloud frame = fast_process_frame(radar, fast, scene, rng);
    for (const auto& p : frame.points) {
      // Velocity snapped to the Doppler grid and bounded.
      EXPECT_NEAR(std::remainder(p.velocity, v_res), 0.0, 1e-9);
      EXPECT_LE(std::abs(p.velocity), radar.max_velocity + 1e-9);
      // Range within the unambiguous span.
      EXPECT_LT(p.position.norm(), radar.max_range());
      EXPECT_GT(p.position.norm(), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, FastBackendGrid, ::testing::Values(1.2, 2.1, 3.0, 4.2));

// ---- full FMCW chain recovers injected azimuth across the field of view ----

class FullChainAzimuth : public ::testing::TestWithParam<double> {};

TEST_P(FullChainAzimuth, StrongTargetAzimuthWithinTolerance) {
  const double az = GetParam();
  RadarConfig config;
  config.noise_sigma = 0.001;
  Rng rng(static_cast<std::uint64_t>((az + 2.0) * 1e4));
  SceneFrame scene;
  Reflector r;
  r.position = Vec3(1.8 * std::sin(az), 1.8 * std::cos(az), 0.0);
  r.velocity = r.position.normalized() * 1.0;
  r.rcs = 3.0;
  scene.reflectors.push_back(r);

  const auto cube = synthesize_frame(config, scene.reflectors, rng);
  const PointCloud points = detect_points(config, cube, 0);
  ASSERT_FALSE(points.empty());
  const RadarPoint* best = &points[0];
  for (const auto& p : points) {
    if (p.snr_db > best->snr_db) best = &p;
  }
  EXPECT_NEAR(std::atan2(best->position.x, best->position.y), az, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Azimuths, FullChainAzimuth,
                         ::testing::Values(-0.7, -0.35, 0.0, 0.35, 0.7));

// ---- featurization invariances --------------------------------------------

TEST(FeaturizeProperty, TranslationInvariantWhenCentered) {
  // Shifting the whole cloud must not change centered features (up to the
  // deterministic resampling, which depends only on geometry differences).
  Rng rng(1);
  GestureCloud cloud;
  cloud.num_frames = 20;
  for (int i = 0; i < 60; ++i) {
    RadarPoint p;
    p.position = Vec3(rng.gaussian(0.0, 0.2), 1.2 + rng.gaussian(0.0, 0.2),
                      rng.gaussian(0.0, 0.2));
    p.velocity = 0.7;
    p.frame = i % 20;
    cloud.points.push_back(p);
  }
  GestureCloud shifted = cloud;
  for (auto& p : shifted.points) p.position += Vec3(0.5, -0.3, 0.2);

  FeatureConfig config;
  Rng rng_a(7);
  Rng rng_b(7);
  const FeaturizedSample a = featurize(cloud, config, rng_a);
  const FeaturizedSample b = featurize(shifted, config, rng_b);
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_NEAR(a.positions[i], b.positions[i], 1e-5);
  }
}

class FeaturizePointCount : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FeaturizePointCount, AlwaysProducesExactCount) {
  Rng rng(GetParam());
  GestureCloud cloud;
  cloud.num_frames = 10;
  const std::size_t raw = 5 + rng.index(300);
  for (std::size_t i = 0; i < raw; ++i) {
    RadarPoint p;
    p.position = Vec3(rng.gaussian(), rng.gaussian(), rng.gaussian());
    p.frame = static_cast<int>(i % 10);
    cloud.points.push_back(p);
  }
  FeatureConfig config;
  config.num_points = GetParam() * 16;
  const FeaturizedSample sample = featurize(cloud, config, rng);
  EXPECT_EQ(sample.num_points, config.num_points);
  EXPECT_EQ(sample.positions.size(), config.num_points * 3);
  EXPECT_EQ(sample.features.size(), config.num_points * sample.dims);
}

INSTANTIATE_TEST_SUITE_P(Counts, FeaturizePointCount, ::testing::Values(2, 4, 8, 12));

// ---- segmentation detects every catalogue gesture end-to-end --------------

class SegmentationPerGesture : public ::testing::TestWithParam<int> {};

TEST_P(SegmentationPerGesture, SimulatedGestureIsFound) {
  const auto gestures = asl_gesture_set();
  const GestureSpec& spec = gestures[static_cast<std::size_t>(GetParam())];

  Rng rng(100 + GetParam());
  const UserProfile user = UserProfile::sample(GetParam(), rng);
  PerformanceConfig perf;
  perf.idle_frames_before = 25;
  perf.idle_frames_after = 25;
  const GesturePerformer performer(user, perf);
  Rng rep(200 + GetParam());
  const SceneSequence scene = performer.perform(spec, rep);
  const RadarSensor sensor;
  Rng radar_rng(300 + GetParam());
  const FrameSequence frames = sensor.observe(scene, radar_rng);

  const auto segments = GestureSegmenter::segment_all(frames);
  ASSERT_GE(segments.size(), 1u) << spec.name;
  // The (largest) segment overlaps the true motion window.
  const auto& seg = *std::max_element(
      segments.begin(), segments.end(),
      [](const auto& a, const auto& b) { return a.frames.size() < b.frames.size(); });
  const std::size_t true_begin = 25;
  const std::size_t true_end = frames.size() - 26;
  EXPECT_LE(seg.start_frame, true_end) << spec.name;
  EXPECT_GE(seg.end_frame, true_begin) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AslGestures, SegmentationPerGesture,
                         ::testing::Values(0, 2, 4, 6, 8, 9, 11, 13, 14));

// ---- metric ordering under growing perturbation ---------------------------

class MetricMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(MetricMonotonicity, ChamferGrowsWithJitterMagnitude) {
  Rng rng(GetParam());
  PointCloud base;
  for (int i = 0; i < 80; ++i) {
    RadarPoint p;
    p.position = Vec3(rng.gaussian(0.0, 0.3), rng.gaussian(0.0, 0.3), rng.gaussian(0.0, 0.3));
    base.push_back(p);
  }
  double prev = 0.0;
  for (double sigma : {0.01, 0.05, 0.15, 0.4}) {
    PointCloud jittered = base;
    Rng jitter_rng(GetParam() * 31 + static_cast<int>(sigma * 1000));
    for (auto& p : jittered) {
      p.position += Vec3(jitter_rng.gaussian(0.0, sigma), jitter_rng.gaussian(0.0, sigma),
                         jitter_rng.gaussian(0.0, sigma));
    }
    const double cd = chamfer_distance(base, jittered);
    EXPECT_GT(cd, prev);
    prev = cd;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricMonotonicity, ::testing::Values(1, 2, 3));

// ---- arm IK workspace sweep ------------------------------------------------

class ArmWorkspace : public ::testing::TestWithParam<int> {};

TEST_P(ArmWorkspace, WristErrorZeroInsideWorkspace) {
  Rng rng(GetParam() * 7 + 5);
  const double upper = 0.31;
  const double fore = 0.25;
  const Vec3 shoulder(0.2, 1.2, 0.15);
  for (int i = 0; i < 100; ++i) {
    // Sample targets inside the reachable annulus.
    const double radius = rng.uniform(std::abs(upper - fore) + 0.02, (upper + fore) * 0.97);
    const double az = rng.uniform(0.0, 2.0 * kPi);
    const double el = rng.uniform(-kPi / 2.0, kPi / 2.0);
    const Vec3 target = shoulder + Vec3(radius * std::cos(az) * std::cos(el),
                                        radius * std::sin(az) * std::cos(el),
                                        radius * std::sin(el));
    const ArmPose pose = solve_arm(shoulder, target, upper, fore, rng.uniform(-1.5, 1.5));
    EXPECT_NEAR((pose.wrist - target).norm(), 0.0, 1e-6);
    EXPECT_NEAR((pose.elbow - shoulder).norm(), upper, 1e-6);
    EXPECT_NEAR((pose.wrist - pose.elbow).norm(), fore, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArmWorkspace, ::testing::Values(1, 2, 3, 4));

// ---- performer duration scales inversely with pace -------------------------

class PaceSweep : public ::testing::TestWithParam<double> {};

TEST_P(PaceSweep, DurationScalesWithSpeedMultiplier) {
  Rng rng(11);
  UserProfile user = UserProfile::sample(0, rng);
  user.pace_jitter = 1e-6;  // isolate the deliberate speed factor
  PerformanceConfig perf;
  perf.idle_frames_before = 0;
  perf.idle_frames_after = 0;
  perf.speed_multiplier = GetParam();
  const GesturePerformer performer(user, perf);
  const auto spec = asl_gesture_set()[4];
  Rng rep(3);
  const SceneSequence scene = performer.perform(spec, rep);
  const double expected_frames =
      spec.duration_s / (user.speed_factor * GetParam()) * 10.0;
  EXPECT_NEAR(static_cast<double>(scene.size()), expected_frames,
              std::max(2.0, expected_frames * 0.1));
}

INSTANTIATE_TEST_SUITE_P(Speeds, PaceSweep, ::testing::Values(0.7, 1.0, 1.4, 2.0));

}  // namespace
}  // namespace gp
