// Unit + property tests for the DSP library: FFT correctness (round-trip,
// Parseval, linearity, known spectra, non-pow2 Bluestein), window
// functions, CA-CFAR behaviour (detection, false-alarm control), and the
// range-Doppler chain on synthetic tones.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "dsp/angle.hpp"
#include "dsp/cfar.hpp"
#include "dsp/fft.hpp"
#include "dsp/range_doppler.hpp"
#include "dsp/window.hpp"

namespace gp::dsp {
namespace {

std::vector<cplx> random_signal(std::size_t n, Rng& rng) {
  std::vector<cplx> v(n);
  for (auto& x : v) x = cplx(rng.gaussian(), rng.gaussian());
  return v;
}

double max_abs_diff(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

TEST(Fft, Pow2Detection) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(next_pow2(48), 64u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(next_pow2(1), 1u);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<cplx> x(16, cplx(0, 0));
  x[0] = cplx(1, 0);
  const auto spectrum = fft(x);
  for (const auto& bin : spectrum) EXPECT_NEAR(std::abs(bin - cplx(1, 0)), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInCorrectBin) {
  constexpr std::size_t n = 64;
  constexpr std::size_t tone = 5;
  std::vector<cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * kPi * tone * i / static_cast<double>(n);
    x[i] = cplx(std::cos(phase), std::sin(phase));
  }
  const auto mag = magnitude(fft(x));
  for (std::size_t k = 0; k < n; ++k) {
    if (k == tone) {
      EXPECT_NEAR(mag[k], static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(mag[k], 0.0, 1e-9);
    }
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftInvertsFft) {
  Rng rng(GetParam() * 7 + 1);
  const auto x = random_signal(GetParam(), rng);
  const auto back = ifft(fft(x));
  EXPECT_LT(max_abs_diff(x, back), 1e-9);
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  Rng rng(GetParam() * 13 + 5);
  const auto x = random_signal(GetParam(), rng);
  const auto spectrum = fft(x);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  double freq_energy = 0.0;
  for (const auto& v : spectrum) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(x.size()), time_energy,
              1e-9 * std::max(1.0, time_energy));
}

TEST_P(FftRoundTrip, Linearity) {
  Rng rng(GetParam() * 17 + 3);
  const auto a = random_signal(GetParam(), rng);
  const auto b = random_signal(GetParam(), rng);
  std::vector<cplx> combo(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) combo[i] = 2.0 * a[i] - 3.0 * b[i];
  const auto fa = fft(a);
  const auto fb = fft(b);
  const auto fc = fft(combo);
  std::vector<cplx> expected(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) expected[i] = 2.0 * fa[i] - 3.0 * fb[i];
  EXPECT_LT(max_abs_diff(fc, expected), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 8, 64, 256,      // pow2 path
                                           3, 12, 100, 255));     // Bluestein path

TEST(Fft, BluesteinMatchesRadix2OnPow2Input) {
  // Verify the Bluestein path against the radix-2 path: compute a DFT of
  // size 60 by zero-padding to 64 is NOT the same, so instead check a naive
  // O(n^2) DFT for a non-pow2 size.
  constexpr std::size_t n = 12;
  Rng rng(99);
  const auto x = random_signal(n, rng);
  const auto fast = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    cplx naive(0, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const double phase = -2.0 * kPi * static_cast<double>(k * i) / static_cast<double>(n);
      naive += x[i] * cplx(std::cos(phase), std::sin(phase));
    }
    EXPECT_NEAR(std::abs(fast[k] - naive), 0.0, 1e-9);
  }
}

TEST(Fft, FftshiftCentresZeroBin) {
  const std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  const auto shifted = fftshift(v);
  EXPECT_EQ(shifted[4], 0);  // zero-frequency at N/2
  EXPECT_EQ(shifted[0], 4);
}

TEST(Window, HannEndpointsAndPeak) {
  const auto w = make_window(WindowKind::kHann, 64);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
  EXPECT_NEAR(coherent_gain(w), 0.5, 1e-12);
}

TEST(Window, RectIsUnity) {
  const auto w = make_window(WindowKind::kRect, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(coherent_gain(w), 1.0);
}

TEST(Window, AllWindowsBoundedAndSymmetricish) {
  for (auto kind : {WindowKind::kHann, WindowKind::kHamming, WindowKind::kBlackman}) {
    const auto w = make_window(kind, 33);
    for (double v : w) {
      EXPECT_GE(v, -1e-12);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
  }
}

TEST(Cfar, AlphaMatchesClosedForm) {
  // alpha = N (Pfa^{-1/N} - 1)
  EXPECT_NEAR(cfar_alpha(16, 1e-4), 16.0 * (std::pow(1e-4, -1.0 / 16.0) - 1.0), 1e-12);
  EXPECT_THROW(cfar_alpha(0, 0.1), InvalidArgument);
  EXPECT_THROW(cfar_alpha(8, 0.0), InvalidArgument);
}

TEST(Cfar, DetectsStrongTargetInNoise) {
  Rng rng(7);
  std::vector<double> power(256);
  for (auto& p : power) p = -std::log(std::max(rng.uniform(), 1e-12));  // Exp(1) noise power
  power[100] = 300.0;
  CfarConfig config;
  const auto hits = cfar_1d(power, config);
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 100u) != hits.end());
}

TEST(Cfar, FalseAlarmRateIsControlled) {
  // Pure exponential noise: empirical false alarms should be near Pfa.
  Rng rng(11);
  CfarConfig config;
  config.probability_false_alarm = 1e-2;
  std::size_t alarms = 0;
  std::size_t cells = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<double> power(512);
    for (auto& p : power) p = -std::log(std::max(rng.uniform(), 1e-12));
    alarms += cfar_1d(power, config).size();
    cells += power.size();
  }
  const double empirical = static_cast<double>(alarms) / static_cast<double>(cells);
  EXPECT_GT(empirical, 1e-3);
  EXPECT_LT(empirical, 5e-2);
}

TEST(Cfar, MaskingNearTargetEdges) {
  // A target at the array edge still gets detected via one-sided training.
  std::vector<double> power(64, 1.0);
  power[1] = 500.0;
  CfarConfig config;
  const auto hits = cfar_1d(power, config);
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 1u) != hits.end());
}

TEST(Cfar2d, FindsIsolatedPeak) {
  PowerMap map;
  map.rows = 64;
  map.cols = 16;
  map.data.assign(map.rows * map.cols, 1.0);
  Rng rng(3);
  for (auto& v : map.data) v = -std::log(std::max(rng.uniform(), 1e-12));
  map.at(30, 4) = 800.0;

  const auto detections = cfar_2d(map, CfarConfig{2, 8, 1e-4}, CfarConfig{1, 4, 1e-3});
  bool found = false;
  for (const auto& det : detections) {
    if (det.row == 30 && det.col == 4) {
      found = true;
      EXPECT_GT(det.snr_db(), 10.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Angle, BoresightTargetAtZero) {
  // All antennas in phase -> angle 0.
  std::vector<cplx> snapshots(8, cplx(1.0, 0.0));
  const auto est = estimate_angle(snapshots, 64);
  EXPECT_NEAR(est.angle_rad, 0.0, 0.03);
}

class AngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(AngleSweep, RecoversSteeringAngle) {
  const double angle = GetParam();
  std::vector<cplx> snapshots(8);
  for (std::size_t a = 0; a < snapshots.size(); ++a) {
    const double phase = kPi * static_cast<double>(a) * std::sin(angle);
    snapshots[a] = cplx(std::cos(phase), std::sin(phase));
  }
  const auto est = estimate_angle(snapshots, 256);
  EXPECT_NEAR(est.angle_rad, angle, 0.035);
}

INSTANTIATE_TEST_SUITE_P(Angles, AngleSweep,
                         ::testing::Values(-0.9, -0.5, -0.2, 0.1, 0.4, 0.8));

TEST(RangeDoppler, ToneAtKnownRangeAndVelocity) {
  // Build an IF cube for a single ideal target and verify the peak bin.
  RangeDopplerConfig rd_config;
  rd_config.static_clutter_removal = false;

  const std::size_t samples = 128;
  const std::size_t chirps = 16;
  DataCube cube;
  cube.num_antennas = 1;
  cube.num_chirps = chirps;
  cube.num_samples = samples;
  cube.data.assign(samples * chirps, cplx(0, 0));

  const std::size_t range_bin = 20;
  const int doppler_bin = 3;  // after fftshift: chirps/2 + 3
  for (std::size_t c = 0; c < chirps; ++c) {
    for (std::size_t s = 0; s < samples; ++s) {
      const double phase =
          2.0 * kPi * (static_cast<double>(range_bin * s) / samples +
                       static_cast<double>(doppler_bin) * static_cast<double>(c) / chirps);
      cube.at(0, c, s) = cplx(std::cos(phase), std::sin(phase));
    }
  }

  const auto rd = range_doppler_transform(cube, rd_config);
  const auto map = integrate_power(rd);
  std::size_t best_r = 0;
  std::size_t best_d = 0;
  double best = -1.0;
  for (std::size_t r = 0; r < map.rows; ++r) {
    for (std::size_t d = 0; d < map.cols; ++d) {
      if (map.at(r, d) > best) {
        best = map.at(r, d);
        best_r = r;
        best_d = d;
      }
    }
  }
  EXPECT_EQ(best_r, range_bin);
  EXPECT_EQ(best_d, chirps / 2 + doppler_bin);
}

TEST(RangeDoppler, StaticClutterRemovalKillsZeroDoppler) {
  const std::size_t samples = 64;
  const std::size_t chirps = 8;
  DataCube cube;
  cube.num_antennas = 1;
  cube.num_chirps = chirps;
  cube.num_samples = samples;
  cube.data.assign(samples * chirps, cplx(0, 0));
  // Static target: same IF tone on every chirp.
  for (std::size_t c = 0; c < chirps; ++c) {
    for (std::size_t s = 0; s < samples; ++s) {
      const double phase = 2.0 * kPi * 10.0 * static_cast<double>(s) / samples;
      cube.at(0, c, s) = cplx(std::cos(phase), std::sin(phase));
    }
  }

  RangeDopplerConfig with;
  with.static_clutter_removal = true;
  RangeDopplerConfig without;
  without.static_clutter_removal = false;

  const auto map_with = integrate_power(range_doppler_transform(cube, with));
  const auto map_without = integrate_power(range_doppler_transform(cube, without));
  const std::size_t zero = chirps / 2;
  EXPECT_GT(map_without.at(10, zero), 100.0);
  EXPECT_LT(map_with.at(10, zero), 1e-12);
}

}  // namespace
}  // namespace gp::dsp
