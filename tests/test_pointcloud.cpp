// Tests for point-cloud primitives: aggregation/bounds, kNN/ball query,
// farthest point sampling, resampling, DBSCAN invariants, and the metric
// axioms of HD / CD / JSD (the §III preliminary-study metrics).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "pointcloud/dbscan.hpp"
#include "pointcloud/metrics.hpp"
#include "pointcloud/ops.hpp"
#include "pointcloud/point.hpp"

namespace gp {
namespace {

RadarPoint make_point(double x, double y, double z, int frame = 0) {
  RadarPoint p;
  p.position = Vec3(x, y, z);
  p.frame = frame;
  return p;
}

PointCloud grid_cloud(int n_per_axis, double spacing) {
  PointCloud cloud;
  for (int i = 0; i < n_per_axis; ++i) {
    for (int j = 0; j < n_per_axis; ++j) {
      cloud.push_back(make_point(i * spacing, j * spacing, 0.0));
    }
  }
  return cloud;
}

PointCloud random_cloud(std::size_t n, Rng& rng, const Vec3& center = {}, double spread = 0.3) {
  PointCloud cloud;
  cloud.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cloud.push_back(make_point(center.x + rng.gaussian(0.0, spread),
                               center.y + rng.gaussian(0.0, spread),
                               center.z + rng.gaussian(0.0, spread)));
  }
  return cloud;
}

TEST(PointTypes, AggregatePreservesAllPoints) {
  FrameSequence frames(3);
  for (int f = 0; f < 3; ++f) {
    frames[f].frame_index = f;
    for (int i = 0; i <= f; ++i) frames[f].points.push_back(make_point(f, i, 0, f));
  }
  const PointCloud all = aggregate(frames);
  EXPECT_EQ(all.size(), 6u);
  EXPECT_EQ(total_points(frames), 6u);
}

TEST(PointTypes, CentroidAndBounds) {
  PointCloud cloud{make_point(0, 0, 0), make_point(2, 4, -2)};
  const Vec3 c = centroid(cloud);
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 2.0);
  EXPECT_DOUBLE_EQ(c.z, -1.0);
  const Aabb box = bounding_box(cloud);
  EXPECT_DOUBLE_EQ(box.extent().y, 4.0);
}

TEST(Ops, KnnReturnsNearestInOrder) {
  const PointCloud cloud{make_point(0, 0, 0), make_point(1, 0, 0), make_point(3, 0, 0)};
  const auto idx = knn(cloud, Vec3(0.9, 0, 0), 2);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 0u);
}

TEST(Ops, KnnClampsK) {
  const PointCloud cloud{make_point(0, 0, 0)};
  EXPECT_EQ(knn(cloud, Vec3(), 10).size(), 1u);
}

TEST(Ops, BallQueryRespectsRadiusAndCap) {
  const PointCloud cloud = grid_cloud(5, 1.0);
  const auto all = ball_query(cloud, Vec3(2, 2, 0), 1.1);
  EXPECT_EQ(all.size(), 5u);  // centre + 4-neighbourhood
  const auto capped = ball_query(cloud, Vec3(2, 2, 0), 1.1, 3);
  EXPECT_EQ(capped.size(), 3u);
  // Nearest-first: the centre point itself leads.
  EXPECT_EQ(capped[0], 12u);
}

TEST(Ops, FpsSelectsSpreadOutPoints) {
  // Two far-apart blobs: FPS with n=2 must pick one point from each.
  Rng rng(5);
  PointCloud cloud = random_cloud(20, rng, Vec3(0, 0, 0), 0.05);
  const PointCloud far_blob = random_cloud(20, rng, Vec3(10, 0, 0), 0.05);
  cloud.insert(cloud.end(), far_blob.begin(), far_blob.end());

  const auto idx = farthest_point_sample(cloud, 2, 0);
  ASSERT_EQ(idx.size(), 2u);
  const double gap = (cloud[idx[0]].position - cloud[idx[1]].position).norm();
  EXPECT_GT(gap, 8.0);
}

TEST(Ops, FpsReturnsAllWhenAskingTooMany) {
  Rng rng(6);
  const PointCloud cloud = random_cloud(5, rng);
  EXPECT_EQ(farthest_point_sample(cloud, 10).size(), 5u);
}

TEST(Ops, ResampleHitsExactCount) {
  Rng rng(7);
  const PointCloud cloud = random_cloud(50, rng);
  EXPECT_EQ(resample(cloud, 16, rng).size(), 16u);
  EXPECT_EQ(resample(cloud, 128, rng).size(), 128u);  // upsampling duplicates
}

TEST(Ops, NormalizeCentroidCentresCloud) {
  Rng rng(8);
  const PointCloud cloud = random_cloud(40, rng, Vec3(3, -2, 5));
  const PointCloud centred = normalize_centroid(cloud);
  const Vec3 c = centroid(centred);
  EXPECT_NEAR(c.x, 0.0, 1e-9);
  EXPECT_NEAR(c.y, 0.0, 1e-9);
  EXPECT_NEAR(c.z, 0.0, 1e-9);
}

TEST(Dbscan, SeparatesTwoBlobsAndFlagsOutliers) {
  Rng rng(9);
  PointCloud cloud = random_cloud(30, rng, Vec3(0, 0, 0), 0.1);
  const PointCloud blob2 = random_cloud(20, rng, Vec3(5, 0, 0), 0.1);
  cloud.insert(cloud.end(), blob2.begin(), blob2.end());
  cloud.push_back(make_point(100, 100, 100));  // lone outlier

  const DbscanResult result = dbscan(cloud, DbscanParams{0.5, 4});
  EXPECT_EQ(result.num_clusters, 2u);
  EXPECT_EQ(result.labels.back(), kDbscanNoise);
  EXPECT_EQ(result.cluster_size(result.largest_cluster()), 30u);
}

TEST(Dbscan, AllNoiseWhenSparse) {
  PointCloud cloud;
  for (int i = 0; i < 10; ++i) cloud.push_back(make_point(i * 10.0, 0, 0));
  const DbscanResult result = dbscan(cloud, DbscanParams{1.0, 4});
  EXPECT_EQ(result.num_clusters, 0u);
  EXPECT_EQ(result.largest_cluster(), kDbscanNoise);
}

TEST(Dbscan, SingleClusterWhenDense) {
  Rng rng(10);
  const PointCloud cloud = random_cloud(50, rng, Vec3(0, 0, 0), 0.2);
  const DbscanResult result = dbscan(cloud, DbscanParams{1.0, 4});
  EXPECT_EQ(result.num_clusters, 1u);
  for (int label : result.labels) EXPECT_EQ(label, 0);
}

TEST(Dbscan, ExtractClusterMatchesLabels) {
  Rng rng(11);
  PointCloud cloud = random_cloud(25, rng, Vec3(0, 0, 0), 0.1);
  const PointCloud blob2 = random_cloud(15, rng, Vec3(4, 0, 0), 0.1);
  cloud.insert(cloud.end(), blob2.begin(), blob2.end());
  const DbscanResult result = dbscan(cloud, DbscanParams{0.6, 3});
  std::size_t extracted_total = 0;
  for (int c = 0; c < static_cast<int>(result.num_clusters); ++c) {
    extracted_total += extract_cluster(cloud, result, c).size();
  }
  std::size_t labelled = 0;
  for (int l : result.labels) {
    if (l >= 0) ++labelled;
  }
  EXPECT_EQ(extracted_total, labelled);
}

TEST(Dbscan, MinPointsBoundary) {
  // Exactly min_points points within eps forms a cluster; fewer does not.
  PointCloud four{make_point(0, 0, 0), make_point(0.1, 0, 0), make_point(0, 0.1, 0),
                  make_point(0.1, 0.1, 0)};
  EXPECT_EQ(dbscan(four, DbscanParams{0.5, 4}).num_clusters, 1u);
  PointCloud three(four.begin(), four.begin() + 3);
  EXPECT_EQ(dbscan(three, DbscanParams{0.5, 4}).num_clusters, 0u);
}

// ---- metric axioms ----------------------------------------------------------

class MetricAxioms : public ::testing::TestWithParam<int> {};

TEST_P(MetricAxioms, IdentityAndSymmetry) {
  Rng rng(GetParam());
  const PointCloud a = random_cloud(30, rng);
  const PointCloud b = random_cloud(25, rng, Vec3(0.5, 0.2, -0.1));

  EXPECT_NEAR(hausdorff_distance(a, a), 0.0, 1e-12);
  EXPECT_NEAR(chamfer_distance(a, a), 0.0, 1e-12);
  EXPECT_NEAR(jensen_shannon_divergence(a, a), 0.0, 1e-12);

  EXPECT_DOUBLE_EQ(hausdorff_distance(a, b), hausdorff_distance(b, a));
  EXPECT_DOUBLE_EQ(chamfer_distance(a, b), chamfer_distance(b, a));
  EXPECT_NEAR(jensen_shannon_divergence(a, b), jensen_shannon_divergence(b, a), 1e-12);

  EXPECT_GE(hausdorff_distance(a, b), 0.0);
  EXPECT_GE(chamfer_distance(a, b), 0.0);
  EXPECT_GE(jensen_shannon_divergence(a, b), 0.0);
  EXPECT_LE(jensen_shannon_divergence(a, b), std::log(2.0) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricAxioms, ::testing::Values(1, 2, 3, 4, 5));

TEST(Metrics, HausdorffDominatesChamfer) {
  Rng rng(20);
  const PointCloud a = random_cloud(40, rng);
  const PointCloud b = random_cloud(40, rng, Vec3(1, 0, 0));
  EXPECT_GE(hausdorff_distance(a, b), chamfer_distance(a, b));
}

TEST(Metrics, TranslationIncreasesAllMetrics) {
  Rng rng(21);
  const PointCloud a = random_cloud(50, rng, Vec3(0, 0, 0), 0.2);
  PointCloud near = a;
  PointCloud far = a;
  for (auto& p : near) p.position += Vec3(0.1, 0, 0);
  for (auto& p : far) p.position += Vec3(1.0, 0, 0);

  EXPECT_LT(hausdorff_distance(a, near), hausdorff_distance(a, far));
  EXPECT_LT(chamfer_distance(a, near), chamfer_distance(a, far));
  EXPECT_LE(jensen_shannon_divergence(a, near, 12), jensen_shannon_divergence(a, far, 12) + 1e-9);
}

TEST(Metrics, KnownHausdorffValue) {
  const PointCloud a{make_point(0, 0, 0), make_point(1, 0, 0)};
  const PointCloud b{make_point(0, 0, 0), make_point(1, 2, 0)};
  // directed(a->b): point (1,0,0) is 1.0 from (0,0,0)... actually min(dist
  // to (0,0,0)=1, dist to (1,2,0)=2) = 1. directed(b->a): (1,2,0) is 2 from
  // (1,0,0). So HD = 2.
  EXPECT_DOUBLE_EQ(hausdorff_distance(a, b), 2.0);
}

TEST(Metrics, DisjointCloudsHaveMaximalJsd) {
  const PointCloud a{make_point(0, 0, 0), make_point(0.01, 0, 0)};
  const PointCloud b{make_point(10, 10, 10), make_point(10.01, 10, 10)};
  EXPECT_NEAR(jensen_shannon_divergence(a, b, 8), std::log(2.0), 1e-9);
}

}  // namespace
}  // namespace gp
