// gp::exec tests: pool lifecycle, chunk coverage, exception propagation,
// grain edge cases, ordered reduction reproducibility, child RNG streams,
// and the serial-scope escape hatch.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/exec.hpp"
#include "exec/thread_pool.hpp"

namespace gp::exec {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, StartStopVariousSizes) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{9}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads == 0 ? 1 : std::max<std::size_t>(threads, 1));
  }
  // Destruction with no region ever run must not hang (checked by exit).
}

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kChunks = 137;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.run(kChunks, [&](std::size_t c) { hits[c].fetch_add(1); });
  for (std::size_t c = 0; c < kChunks; ++c) EXPECT_EQ(hits[c].load(), 1) << "chunk " << c;
}

TEST(ThreadPool, ZeroChunksIsANoop) {
  ThreadPool pool(3);
  bool ran = false;
  pool.run(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run(64,
               [&](std::size_t c) {
                 if (c == 13) throw std::runtime_error("chunk 13 failed");
               }),
      std::runtime_error);

  // Lowest-index exception wins deterministically.
  try {
    pool.run(64, [&](std::size_t c) {
      if (c == 7) throw std::runtime_error("seven");
      if (c == 21) throw std::logic_error("twenty-one");
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "seven");
  }

  // The pool survives failed regions.
  std::atomic<int> count{0};
  pool.run(32, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, NestedRunExecutesInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.run(8, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::in_region());
    pool.run(4, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
  EXPECT_FALSE(ThreadPool::in_region());
}

TEST(ThreadPool, ConcurrentCallersSerialise) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::thread other([&] { pool.run(50, [&](std::size_t) { total.fetch_add(1); }); });
  pool.run(50, [&](std::size_t) { total.fetch_add(1); });
  other.join();
  EXPECT_EQ(total.load(), 100);
}

// --------------------------------------------------------------- ExecContext

TEST(ExecContext, ParallelForCoversRangeOnce) {
  ExecContext ctx(4);
  constexpr std::size_t kBegin = 3;
  constexpr std::size_t kEnd = 1203;
  std::vector<std::atomic<int>> hits(kEnd);
  ctx.parallel_for(kBegin, kEnd, /*grain=*/17, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kBegin; ++i) EXPECT_EQ(hits[i].load(), 0);
  for (std::size_t i = kBegin; i < kEnd; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ExecContext, GrainEdgeCases) {
  ExecContext ctx(4);
  std::atomic<int> count{0};
  const auto bump = [&](std::size_t) { count.fetch_add(1); };

  ctx.parallel_for(0, 0, 8, bump);  // empty range
  EXPECT_EQ(count.load(), 0);
  ctx.parallel_for(5, 5, 8, bump);  // empty range, non-zero begin
  EXPECT_EQ(count.load(), 0);

  ctx.parallel_for(0, 10, 0, bump);  // grain 0 behaves as 1
  EXPECT_EQ(count.load(), 10);

  count = 0;
  ctx.parallel_for(0, 10, 1000, bump);  // grain > range: one chunk
  EXPECT_EQ(count.load(), 10);

  count = 0;
  ctx.parallel_for(0, 1, 1, bump);  // single index
  EXPECT_EQ(count.load(), 1);
}

TEST(ExecContext, ChunkBoundariesIndependentOfThreadCount) {
  const auto chunk_spans = [](ExecContext& ctx) {
    std::vector<std::pair<std::size_t, std::size_t>> spans(7);
    std::atomic<std::size_t> cursor{0};
    ctx.parallel_for_chunks(0, 100, 15, [&](std::size_t cb, std::size_t ce) {
      spans[cursor.fetch_add(1)] = {cb, ce};
    });
    std::sort(spans.begin(), spans.end());
    return spans;
  };
  ExecContext serial(1);
  ExecContext wide(8);
  EXPECT_EQ(chunk_spans(serial), chunk_spans(wide));
}

TEST(ExecContext, ParallelMapAlignsIndices) {
  ExecContext ctx(4);
  const std::vector<int> out =
      ctx.parallel_map<int>(257, 8, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ExecContext, OrderedReductionIsBitwiseReproducible) {
  // Summands of wildly different magnitude: any reordering changes the bits.
  std::vector<float> values(10000);
  Rng rng(7);
  for (auto& v : values) {
    v = static_cast<float>(rng.gaussian(0.0, 1.0) * std::pow(10.0, rng.uniform(-6.0, 6.0)));
  }
  const auto sum_with = [&](std::size_t threads) {
    ExecContext ctx(threads);
    return ctx.parallel_reduce_ordered(
        0, values.size(), /*grain=*/97, 0.0,
        [&](std::size_t b, std::size_t e) {
          double acc = 0.0;
          for (std::size_t i = b; i < e; ++i) acc += values[i];
          return acc;
        },
        [](double acc, double part) { return acc + part; });
  };
  const double serial = sum_with(1);
  for (std::size_t threads : {2, 4, 8}) {
    const double parallel = sum_with(threads);
    EXPECT_EQ(serial, parallel) << threads << " threads";  // exact, not NEAR
  }
}

TEST(ExecContext, ExceptionFromParallelForPropagates) {
  ExecContext ctx(4);
  EXPECT_THROW(ctx.parallel_for(0, 100, 3,
                                [](std::size_t i) {
                                  if (i == 42) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

// ------------------------------------------------------- RNG stream splitting

TEST(ChildRng, DeterministicAndOrderIndependent) {
  Rng a = child_rng(123, 5);
  Rng b = child_rng(123, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(ChildRng, DistinctIndicesGiveDecorrelatedStreams) {
  // Adjacent indices and adjacent bases must give different first draws.
  std::set<std::uint32_t> first_draws;
  for (std::uint64_t index = 0; index < 64; ++index) {
    Rng rng = child_rng(42, index);
    first_draws.insert(rng());
  }
  EXPECT_EQ(first_draws.size(), 64u);

  std::set<std::uint64_t> seeds;
  for (std::uint64_t base = 0; base < 64; ++base) seeds.insert(child_seed(base, 0));
  EXPECT_EQ(seeds.size(), 64u);
}

// ----------------------------------------------------------------- SerialScope

TEST(SerialScope, ForcesInlineExecution) {
  ExecContext ctx(8);
  EXPECT_GT(ctx.threads(), 1u);
  {
    SerialScope scope;
    EXPECT_EQ(ctx.threads(), 1u);
    const std::thread::id self = std::this_thread::get_id();
    ctx.parallel_for(0, 64, 1, [&](std::size_t) {
      EXPECT_EQ(std::this_thread::get_id(), self);
    });
    {
      SerialScope nested;  // nests
      EXPECT_EQ(ctx.threads(), 1u);
    }
    EXPECT_EQ(ctx.threads(), 1u);
  }
  EXPECT_GT(ctx.threads(), 1u);
}

TEST(Defaults, GlobalContextAndThreadFloor) {
  EXPECT_GE(default_threads(), 1u);
  EXPECT_GE(ExecContext::global().threads(), 1u);
}

}  // namespace
}  // namespace gp::exec
