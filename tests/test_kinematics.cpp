// Tests for the kinematic substrate: user biometrics, arm IK, spline
// trajectories, gesture catalogues, and the performer's identity/variability
// contract (fixed habits vs per-repetition jitter).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kinematics/body.hpp"
#include "kinematics/gesture_spec.hpp"
#include "kinematics/performer.hpp"
#include "kinematics/trajectory.hpp"

namespace gp {
namespace {

TEST(UserProfile, SampledBiometricsInPlausibleRanges) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const UserProfile u = UserProfile::sample(i, rng);
    EXPECT_GE(u.height, 1.55);
    EXPECT_LE(u.height, 1.80);
    EXPECT_GT(u.upper_arm, 0.25);
    EXPECT_LT(u.upper_arm, 0.40);
    EXPECT_GT(u.forearm, 0.19);
    EXPECT_LT(u.forearm, 0.30);
    EXPECT_LT(u.shoulder_height, u.height);
    EXPECT_GT(u.speed_factor, 0.7);
    EXPECT_LT(u.speed_factor, 1.35);
  }
}

TEST(UserProfile, DistinctUsersGetDistinctHabits) {
  Rng rng(2);
  const UserProfile a = UserProfile::sample(0, rng);
  const UserProfile b = UserProfile::sample(1, rng);
  EXPECT_NE(a.habit_seed, b.habit_seed);
  EXPECT_NE(a.height, b.height);
}

TEST(ArmIk, SegmentLengthsPreserved) {
  Rng rng(3);
  const Vec3 shoulder(0.2, 1.2, 0.1);
  for (int i = 0; i < 200; ++i) {
    const Vec3 target(shoulder.x + rng.uniform(-0.6, 0.6), shoulder.y + rng.uniform(-0.6, 0.6),
                      shoulder.z + rng.uniform(-0.6, 0.6));
    const double swivel = rng.uniform(-1.0, 1.0);
    const ArmPose pose = solve_arm(shoulder, target, 0.31, 0.25, swivel);
    EXPECT_NEAR((pose.elbow - pose.shoulder).norm(), 0.31, 1e-6);
    EXPECT_NEAR((pose.wrist - pose.elbow).norm(), 0.25, 1e-6);
  }
}

TEST(ArmIk, ReachableTargetHitExactly) {
  const Vec3 shoulder(0, 0, 0);
  const Vec3 target(0.1, 0.4, -0.1);  // well inside reach
  const ArmPose pose = solve_arm(shoulder, target, 0.31, 0.25, 0.0);
  EXPECT_NEAR((pose.wrist - target).norm(), 0.0, 1e-9);
}

TEST(ArmIk, OutOfReachTargetClampedToSphere) {
  const Vec3 shoulder(0, 0, 0);
  const ArmPose pose = solve_arm(shoulder, Vec3(5, 0, 0), 0.3, 0.25, 0.0);
  EXPECT_NEAR((pose.wrist - shoulder).norm(), 0.55 * 0.999, 1e-6);
}

TEST(ArmIk, SwivelRotatesElbowAroundAxis) {
  const Vec3 shoulder(0, 0, 0);
  const Vec3 target(0, 0.4, 0);
  const ArmPose down = solve_arm(shoulder, target, 0.31, 0.25, 0.0);
  const ArmPose side = solve_arm(shoulder, target, 0.31, 0.25, 1.2);
  EXPECT_GT((down.elbow - side.elbow).norm(), 0.05);
  // Both stay consistent with segment lengths (checked above); elbow at
  // swivel 0 hangs below the shoulder-wrist axis.
  EXPECT_LT(down.elbow.z, 1e-9);
}

TEST(Trajectory, CatmullRomPassesThroughControlPoints) {
  const std::vector<Vec3> pts{{0, 0, 0}, {1, 1, 0}, {2, 0, 1}, {3, -1, 0}};
  EXPECT_NEAR((catmull_rom(pts, 0.0) - pts.front()).norm(), 0.0, 1e-12);
  EXPECT_NEAR((catmull_rom(pts, 1.0) - pts.back()).norm(), 0.0, 1e-12);
  EXPECT_NEAR((catmull_rom(pts, 1.0 / 3.0) - pts[1]).norm(), 0.0, 1e-9);
  EXPECT_NEAR((catmull_rom(pts, 2.0 / 3.0) - pts[2]).norm(), 0.0, 1e-9);
}

TEST(Trajectory, EasePhaseEndpointsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(ease_phase(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ease_phase(1.0), 1.0);
  double prev = 0.0;
  for (double t = 0.05; t <= 1.0; t += 0.05) {
    const double v = ease_phase(t);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Trajectory, SampleTracksStartsAndEndsAtRest) {
  const auto set = asl_gesture_set();
  const ArmTrack track = sample_tracks(set.front(), 50);
  ASSERT_EQ(track.right.size(), 50u);
  EXPECT_NEAR((track.right.front() - rest_wrist()).norm(), 0.0, 1e-6);
  EXPECT_NEAR((track.right.back() - rest_wrist()).norm(), 0.0, 1e-6);
}

TEST(GestureCatalog, ExpectedSetSizes) {
  EXPECT_EQ(asl_gesture_set().size(), 15u);        // Table I / Fig. 9
  EXPECT_EQ(pantomime_gesture_set().size(), 21u);  // Table I
  EXPECT_EQ(mhomeges_gesture_set().size(), 10u);
  EXPECT_EQ(mtranssee_gesture_set().size(), 5u);
}

TEST(GestureCatalog, AslBimanualCount) {
  // Paper: 9 single-arm + 6 bimanual ASL signs.
  int bimanual = 0;
  for (const auto& g : asl_gesture_set()) bimanual += g.bimanual ? 1 : 0;
  EXPECT_EQ(bimanual, 6);
}

TEST(GestureCatalog, PantomimeBimanualCount) {
  // Paper: 9 easy single-arm + 12 bimanual complex gestures.
  int bimanual = 0;
  for (const auto& g : pantomime_gesture_set()) bimanual += g.bimanual ? 1 : 0;
  EXPECT_EQ(bimanual, 12);
}

TEST(GestureCatalog, NamesUniqueWithinSet) {
  for (const auto& set : {asl_gesture_set(), pantomime_gesture_set(), mhomeges_gesture_set(),
                          mtranssee_gesture_set()}) {
    std::set<std::string> names;
    for (const auto& g : set) EXPECT_TRUE(names.insert(g.name).second) << g.name;
  }
}

TEST(GestureCatalog, FindGestureByName) {
  const auto set = asl_gesture_set();
  EXPECT_EQ(find_gesture(set, "push").name, "push");
  EXPECT_THROW(find_gesture(set, "nonexistent"), InvalidArgument);
}

TEST(GestureCatalog, KeyframePhasesSortedWithin01) {
  for (const auto& set : {asl_gesture_set(), pantomime_gesture_set(), mhomeges_gesture_set(),
                          mtranssee_gesture_set()}) {
    for (const auto& g : set) {
      ASSERT_GE(g.keyframes.size(), 2u) << g.name;
      EXPECT_DOUBLE_EQ(g.keyframes.front().t, 0.0);
      EXPECT_DOUBLE_EQ(g.keyframes.back().t, 1.0);
      for (std::size_t i = 1; i < g.keyframes.size(); ++i) {
        EXPECT_GE(g.keyframes[i].t, g.keyframes[i - 1].t) << g.name;
      }
    }
  }
}

// ---- performer ---------------------------------------------------------

GesturePerformer make_performer(int user_id, Rng& rng, PerformanceConfig perf = {}) {
  const UserProfile user = UserProfile::sample(user_id, rng);
  return GesturePerformer(user, perf);
}

TEST(Performer, FrameCountMatchesConfiguredIdleAndDuration) {
  Rng rng(4);
  PerformanceConfig perf;
  perf.idle_frames_before = 7;
  perf.idle_frames_after = 5;
  const GesturePerformer performer = make_performer(0, rng, perf);
  const auto spec = asl_gesture_set().front();
  Rng rep(1);
  const SceneSequence scene = performer.perform(spec, rep);
  EXPECT_GE(scene.size(), 7u + 5u + 6u);
  // Timestamps advance at the frame rate.
  EXPECT_NEAR(scene[1].timestamp - scene[0].timestamp, 0.1, 1e-9);
}

TEST(Performer, IdleFramesHaveStillArms) {
  Rng rng(5);
  PerformanceConfig perf;
  perf.idle_frames_before = 8;
  const GesturePerformer performer = make_performer(1, rng, perf);
  Rng rep(2);
  const SceneSequence scene = performer.perform(asl_gesture_set()[4], rep);
  // During idle, every reflector should have (near-)zero velocity except
  // breathing torso motion (|v| <= ~0.01 m/s).
  for (int f = 0; f < 4; ++f) {
    for (const auto& r : scene[static_cast<std::size_t>(f)].reflectors) {
      EXPECT_LT(r.velocity.norm(), 0.05);
    }
  }
}

TEST(Performer, MotionFramesHaveMovingHand) {
  Rng rng(6);
  PerformanceConfig perf;
  perf.idle_frames_before = 4;
  perf.idle_frames_after = 4;
  const GesturePerformer performer = make_performer(2, rng, perf);
  Rng rep(3);
  const SceneSequence scene = performer.perform(find_gesture(asl_gesture_set(), "push"), rep);
  double peak_speed = 0.0;
  for (const auto& frame : scene) {
    for (const auto& r : frame.reflectors) peak_speed = std::max(peak_speed, r.velocity.norm());
  }
  EXPECT_GT(peak_speed, 0.3);  // a push moves the hand visibly
  EXPECT_LT(peak_speed, 6.0);  // but not unphysically fast
}

TEST(Performer, ReflectorsNearConfiguredDistance) {
  Rng rng(7);
  PerformanceConfig perf;
  perf.distance = 2.5;
  const GesturePerformer performer = make_performer(3, rng, perf);
  Rng rep(4);
  const SceneSequence scene = performer.perform(asl_gesture_set()[0], rep);
  for (const auto& r : scene[0].reflectors) {
    EXPECT_GT(r.position.y, 1.3);
    EXPECT_LT(r.position.y, 3.2);
  }
}

TEST(Performer, FasterUserFinishesSooner) {
  Rng rng(8);
  UserProfile slow = UserProfile::sample(0, rng);
  UserProfile fast = slow;
  slow.speed_factor = 0.8;
  fast.speed_factor = 1.25;
  const PerformanceConfig perf;
  const GesturePerformer p_slow(slow, perf);
  const GesturePerformer p_fast(fast, perf);
  const auto spec = asl_gesture_set()[2];
  EXPECT_GT(p_slow.nominal_duration_s(spec), p_fast.nominal_duration_s(spec));
}

TEST(Performer, HabitIsStableAcrossRepetitions) {
  // The same user's repeated performances must be closer to each other than
  // to a different user's performance (the identity contract).
  Rng rng(9);
  const UserProfile user_a = UserProfile::sample(0, rng);
  const UserProfile user_b = UserProfile::sample(1, rng);
  PerformanceConfig perf;
  perf.include_torso = false;
  const GesturePerformer pa(user_a, perf);
  const GesturePerformer pb(user_b, perf);
  const auto spec = find_gesture(asl_gesture_set(), "zigzag");

  // Mean hand position over the motion as a cheap trajectory signature.
  const auto signature = [&](const GesturePerformer& p, std::uint64_t seed) {
    Rng rep(seed);
    const SceneSequence scene = p.perform(spec, rep);
    Vec3 acc;
    std::size_t n = 0;
    for (const auto& frame : scene) {
      for (const auto& r : frame.reflectors) {
        acc += r.position;
        ++n;
      }
    }
    return acc / static_cast<double>(n);
  };

  const Vec3 a1 = signature(pa, 11);
  const Vec3 a2 = signature(pa, 22);
  const Vec3 b1 = signature(pb, 33);
  EXPECT_LT((a1 - a2).norm(), (a1 - b1).norm());
}

TEST(Performer, BimanualGestureUsesBothArms) {
  Rng rng(10);
  PerformanceConfig perf;
  perf.include_torso = false;
  const GesturePerformer performer = make_performer(4, rng, perf);
  Rng rep(5);
  const SceneSequence scene = performer.perform(find_gesture(asl_gesture_set(), "push"), rep);
  // Mid-motion frame: reflectors on both sides of the body midline move.
  const SceneFrame& mid = scene[scene.size() / 2];
  bool left_moving = false;
  bool right_moving = false;
  for (const auto& r : mid.reflectors) {
    if (r.velocity.norm() > 0.15) {
      (r.position.x > 0 ? left_moving : right_moving) = true;
    }
  }
  EXPECT_TRUE(left_moving);
  EXPECT_TRUE(right_moving);
}

TEST(Fnv1a, StableKnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), 14695981039346656037ULL);
  EXPECT_NE(fnv1a("push"), fnv1a("pull"));
}

}  // namespace
}  // namespace gp
