// obs-smoke checker: validates the artifacts a traced run leaves behind.
//
//   obs_json_check REPORT_x.json [TRACE_x.json]
//
// Checks, using the in-tree JSON parser (no external deps):
//   * the report parses, carries name/wall_clock_s/stages/metrics, and the
//     top-level stages (min_depth == 0) account for the wall clock within
//     10% — the "stage latencies sum to the run" invariant;
//   * the trace parses as Chrome trace-event JSON: a traceEvents array of
//     complete ("X") events with non-negative timestamps and durations,
//     loadable as-is in chrome://tracing or Perfetto.
//
// Exit code 0 on success; prints the first failure and exits 1 otherwise.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

using gp::obs::json::Value;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "obs_json_check: cannot open " << path << "\n";
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

[[noreturn]] void fail(const std::string& what) {
  std::cerr << "obs_json_check: FAIL: " << what << "\n";
  std::exit(1);
}

void check_report(const std::string& path) {
  const Value doc = gp::obs::json::parse(slurp(path));
  if (!doc.is_object()) fail("report root is not an object");
  if (!doc.at("name").is_string()) fail("report.name is not a string");
  if (!doc.at("wall_clock_s").is_number()) fail("report.wall_clock_s is not a number");
  if (!doc.at("metrics").is_object()) fail("report.metrics is not an object");

  const Value& stages = doc.at("stages");
  if (!stages.is_array()) fail("report.stages is not an array");
  if (stages.arr.empty()) fail("report.stages is empty (no GP_SPAN fired?)");

  const double wall_ms = doc.at("wall_clock_s").num * 1000.0;
  double top_level_ms = 0.0;
  std::size_t top_level_stages = 0;
  for (const Value& stage : stages.arr) {
    if (!stage.is_object()) fail("stage entry is not an object");
    if (!stage.at("name").is_string()) fail("stage.name is not a string");
    if (stage.at("count").num < 1.0) fail("stage " + stage.at("name").str + " has count 0");
    if (stage.at("total_ms").num < 0.0) fail("stage " + stage.at("name").str + " negative total");
    if (stage.at("min_depth").num == 0.0) {
      top_level_ms += stage.at("total_ms").num;
      ++top_level_stages;
    }
  }
  if (top_level_stages == 0) fail("no top-level (min_depth 0) stages in report");

  const double deviation = std::fabs(top_level_ms - wall_ms) / wall_ms;
  if (deviation > 0.10) {
    std::ostringstream msg;
    msg << "top-level stages sum to " << top_level_ms << " ms but wall clock is " << wall_ms
        << " ms (" << deviation * 100.0 << "% off, budget 10%)";
    fail(msg.str());
  }
  std::cout << "report ok: " << path << " (" << top_level_stages << " top-level stages cover "
            << 100.0 * top_level_ms / wall_ms << "% of " << wall_ms << " ms)\n";
}

void check_trace(const std::string& path) {
  const Value doc = gp::obs::json::parse(slurp(path));
  if (!doc.is_object()) fail("trace root is not an object");
  const Value& events = doc.at("traceEvents");
  if (!events.is_array()) fail("traceEvents is not an array");
  if (events.arr.empty()) fail("traceEvents is empty");
  for (const Value& event : events.arr) {
    if (!event.is_object()) fail("trace event is not an object");
    if (!event.at("name").is_string()) fail("trace event name is not a string");
    if (event.at("ph").str == "M") {
      // Metadata (process/thread names for Perfetto lane labels): only the
      // args object is required.
      if (!event.at("args").is_object()) fail("metadata event args is not an object");
      continue;
    }
    if (event.at("ph").str != "X") fail("trace event ph is not \"X\" or \"M\"");
    if (!event.at("ts").is_number() || event.at("ts").num < 0.0) fail("bad trace event ts");
    if (!event.at("dur").is_number() || event.at("dur").num < 0.0) fail("bad trace event dur");
    if (!event.at("tid").is_number()) fail("trace event tid is not a number");
  }
  std::cout << "trace ok: " << path << " (" << events.arr.size() << " events)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: obs_json_check REPORT.json [TRACE.json]\n";
    return 1;
  }
  try {
    check_report(argv[1]);
    if (argc > 2) check_trace(argv[2]);
  } catch (const std::exception& e) {
    std::cerr << "obs_json_check: FAIL: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
