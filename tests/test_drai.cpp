// Tests for the DRAI (dynamic range-angle image) module and the
// DI-Gesture-style energy segmenter, including the head-to-head comparison
// with the point-count segmenter on identical simulated recordings.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "dsp/drai.hpp"
#include "kinematics/performer.hpp"
#include "pipeline/energy_segmentation.hpp"
#include "pipeline/segmentation.hpp"
#include "radar/fmcw.hpp"
#include "radar/frontend.hpp"

namespace gp {
namespace {

using dsp::compute_drai;
using dsp::RangeAngleImage;

// Synthesises a frame cube for the given reflectors.
dsp::RangeDopplerCube cube_for(const std::vector<Reflector>& reflectors, Rng& rng,
                               double noise = 0.001) {
  RadarConfig config;
  config.noise_sigma = noise;
  const auto raw = synthesize_frame(config, reflectors, rng);
  dsp::RangeDopplerConfig rd;
  rd.static_clutter_removal = true;
  return dsp::range_doppler_transform(raw, rd);
}

Reflector moving_target(const Vec3& pos, double radial_speed, double rcs = 2.0) {
  Reflector r;
  r.position = pos;
  r.velocity = pos.normalized() * radial_speed;
  r.rcs = rcs;
  return r;
}

TEST(Drai, PeakAtTargetRangeAndAngle) {
  Rng rng(1);
  const double range = 1.8;
  const double az = 0.4;
  const Vec3 pos(range * std::sin(az), range * std::cos(az), 0.0);
  const auto cube = cube_for({moving_target(pos, 1.0)}, rng);

  const RangeAngleImage image = compute_drai(cube, 8, 64);
  const auto [peak_range, peak_angle] = image.argmax();

  const RadarConfig config;
  EXPECT_NEAR(static_cast<double>(peak_range) * config.range_resolution, range, 0.1);
  // Angle bin -> sin(angle) via the shifted spatial grid.
  const double sin_est =
      2.0 * (static_cast<double>(peak_angle) - 32.0) / 64.0;
  EXPECT_NEAR(std::asin(std::clamp(sin_est, -1.0, 1.0)), az, 0.12);
}

TEST(Drai, StaticSceneHasNearZeroEnergy) {
  Rng rng(2);
  Reflector still;
  still.position = Vec3(0.0, 2.0, 0.0);
  still.rcs = 3.0;
  const auto moving_cube = cube_for({moving_target(Vec3(0, 2.0, 0), 1.2)}, rng);
  const auto static_cube = cube_for({still}, rng);

  const double moving_energy = compute_drai(moving_cube, 8).total_energy();
  const double static_energy = compute_drai(static_cube, 8).total_energy();
  EXPECT_GT(moving_energy, 20.0 * static_energy);
}

TEST(Drai, EnergyScalesWithReflectorStrength) {
  Rng rng(3);
  const auto weak = cube_for({moving_target(Vec3(0, 1.5, 0), 1.0, 0.5)}, rng);
  const auto strong = cube_for({moving_target(Vec3(0, 1.5, 0), 1.0, 4.0)}, rng);
  EXPECT_GT(compute_drai(strong, 8).total_energy(), 2.0 * compute_drai(weak, 8).total_energy());
}

TEST(EnergySegmenter, DetectsEnergyBurst) {
  Rng rng(4);
  std::vector<double> energies;
  for (int i = 0; i < 30; ++i) energies.push_back(0.1 + 0.02 * rng.uniform());
  for (int i = 0; i < 25; ++i) energies.push_back(5.0 + rng.uniform());
  for (int i = 0; i < 30; ++i) energies.push_back(0.1 + 0.02 * rng.uniform());

  const auto segments = EnergySegmenter::segment_all(energies);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_NEAR(static_cast<double>(segments[0].start_frame), 30.0, 10.0);
  EXPECT_NEAR(static_cast<double>(segments[0].end_frame), 54.0, 10.0);
}

TEST(EnergySegmenter, QuietTraceYieldsNothing) {
  Rng rng(5);
  std::vector<double> energies(80);
  for (auto& e : energies) e = 0.05 + 0.01 * rng.uniform();
  EXPECT_TRUE(EnergySegmenter::segment_all(energies).empty());
}

TEST(EnergySegmenter, ShortBlipIgnored) {
  std::vector<double> energies(40, 0.1);
  for (int i = 20; i < 23; ++i) energies[i] = 10.0;  // 3 < F_Thr frames
  for (int i = 25; i < 40; ++i) energies.push_back(0.1);
  EXPECT_TRUE(EnergySegmenter::segment_all(energies).empty());
}

TEST(EnergySegmenter, FinishFlushesOpenSegment) {
  std::vector<double> energies(30, 0.1);
  for (int i = 0; i < 20; ++i) energies.push_back(8.0);  // ends mid-gesture
  EnergySegmenter segmenter;
  for (double e : energies) segmenter.push(e);
  EXPECT_TRUE(segmenter.take_segments().empty());
  segmenter.finish();
  EXPECT_EQ(segmenter.take_segments().size(), 1u);
}

TEST(DraiVsPointCount, BothSegmentersFindTheGesture) {
  // Simulate one gesture with idle padding through the FULL chain, then
  // segment the same recording with (a) GesturePrint's point-count method
  // and (b) the DI-Gesture-style DRAI-energy method. Both must find one
  // overlapping motion segment — the paper's §IV-B comparison made runnable.
  Rng rng(6);
  const UserProfile user = UserProfile::sample(0, rng);
  PerformanceConfig perf;
  perf.idle_frames_before = 25;
  perf.idle_frames_after = 25;
  const GesturePerformer performer(user, perf);
  Rng rep(7);
  const SceneSequence scene = performer.perform(find_gesture(asl_gesture_set(), "push"), rep);

  RadarConfig config;
  Rng radar_rng(8);

  FrameSequence point_frames;
  std::vector<double> energies;
  dsp::RangeDopplerConfig rd;
  rd.static_clutter_removal = true;
  for (const auto& frame : scene) {
    const auto cube = synthesize_frame(config, frame.reflectors, radar_rng);
    const auto rd_cube = dsp::range_doppler_transform(cube, rd);
    energies.push_back(compute_drai(rd_cube, config.num_azimuth_antennas).total_energy());

    FrameCloud cloud;
    cloud.frame_index = frame.frame_index;
    cloud.timestamp = frame.timestamp;
    cloud.points = detect_points(config, cube, frame.frame_index);
    point_frames.push_back(std::move(cloud));
  }

  const auto point_segments = GestureSegmenter::segment_all(point_frames);
  const auto energy_segments = EnergySegmenter::segment_all(energies);

  ASSERT_GE(point_segments.size(), 1u);
  ASSERT_GE(energy_segments.size(), 1u);

  // Both segmenters' (largest) segments overlap the true motion window and
  // each other.
  const auto& ps = *std::max_element(point_segments.begin(), point_segments.end(),
                                     [](const auto& a, const auto& b) {
                                       return a.frames.size() < b.frames.size();
                                     });
  const auto& es = *std::max_element(energy_segments.begin(), energy_segments.end(),
                                     [](const auto& a, const auto& b) {
                                       return (a.end_frame - a.start_frame) <
                                              (b.end_frame - b.start_frame);
                                     });
  const std::size_t true_begin = 25;
  const std::size_t true_end = scene.size() - 26;
  EXPECT_LE(ps.start_frame, true_end);
  EXPECT_GE(ps.end_frame, true_begin);
  EXPECT_LE(es.start_frame, true_end);
  EXPECT_GE(es.end_frame, true_begin);
  EXPECT_LE(std::max(ps.start_frame, es.start_frame),
            std::min(ps.end_frame, es.end_frame));
}

}  // namespace
}  // namespace gp
