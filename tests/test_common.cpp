// Unit tests for src/common: RNG determinism and distributions, math
// helpers, binary serialization round-trips, CSV escaping, table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/fnv.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/table.hpp"
#include "common/vec3.hpp"

namespace gp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123, 7);
  Rng b(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(123, 7);
  Rng b(123, 8);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(3);
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, IndexIsUnbiasedAcrossRange) {
  Rng rng(4);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.index(5)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Rng, IndexRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(6);
  Rng child = parent.fork();
  // The child must not replay the parent's sequence.
  Rng parent2(6);
  (void)parent2.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, ShuffleKeepsAllElements) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(MathUtils, LinspaceEndpoints) {
  const auto v = linspace(-1.0, 2.0, 7);
  ASSERT_EQ(v.size(), 7u);
  EXPECT_DOUBLE_EQ(v.front(), -1.0);
  EXPECT_DOUBLE_EQ(v.back(), 2.0);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_NEAR(v[i] - v[i - 1], 0.5, 1e-12);
}

TEST(MathUtils, MeanAndStddev) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(1.25), 1e-12);
}

TEST(MathUtils, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(MathUtils, QuantileInterpolates) {
  const std::vector<double> v{0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.0);
  EXPECT_NEAR(quantile(v, 0.375), 1.5, 1e-12);
}

TEST(MathUtils, ArgmaxFindsLargest) {
  const std::vector<double> v{0.3, 2.0, -1.0, 1.9};
  EXPECT_EQ(argmax(v), 1u);
}

TEST(MathUtils, WrapAngleStaysInRange) {
  for (double a : {-10.0, -3.2, 0.0, 3.2, 10.0, 100.0}) {
    const double w = wrap_angle(a);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
    EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
  }
}

TEST(Vec3, BasicAlgebra) {
  const Vec3 a(1, 2, 3);
  const Vec3 b(4, 5, 6);
  EXPECT_DOUBLE_EQ((a + b).x, 5.0);
  EXPECT_DOUBLE_EQ((b - a).z, 3.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  const Vec3 c = a.cross(b);
  EXPECT_DOUBLE_EQ(c.x, -3.0);
  EXPECT_DOUBLE_EQ(c.y, 6.0);
  EXPECT_DOUBLE_EQ(c.z, -3.0);
  EXPECT_NEAR(Vec3(3, 4, 0).norm(), 5.0, 1e-12);
  EXPECT_NEAR(Vec3(2, 0, 0).normalized().x, 1.0, 1e-12);
}

TEST(Vec3, LerpMidpoint) {
  const Vec3 m = lerp(Vec3(0, 0, 0), Vec3(2, 4, 6), 0.5);
  EXPECT_DOUBLE_EQ(m.x, 1.0);
  EXPECT_DOUBLE_EQ(m.y, 2.0);
  EXPECT_DOUBLE_EQ(m.z, 3.0);
}

TEST(Serialize, RoundTripsAllTypes) {
  std::stringstream buffer;
  {
    BinaryWriter w(buffer, "TEST");
    w.write_u8(200);
    w.write_u32(123456);
    w.write_u64(1ULL << 40);
    w.write_i32(-42);
    w.write_f32(1.5f);
    w.write_f64(-2.25);
    w.write_string("hello world");
    w.write_f32_vector({1.0f, 2.0f, 3.0f});
    w.write_f64_vector({-1.0, 0.5});
    w.write_u32_vector({7, 8, 9});
  }
  BinaryReader r(buffer, "TEST");
  EXPECT_EQ(r.read_u8(), 200);
  EXPECT_EQ(r.read_u32(), 123456u);
  EXPECT_EQ(r.read_u64(), 1ULL << 40);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_FLOAT_EQ(r.read_f32(), 1.5f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -2.25);
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_f32_vector(), (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(r.read_f64_vector(), (std::vector<double>{-1.0, 0.5}));
  EXPECT_EQ(r.read_u32_vector(), (std::vector<std::uint32_t>{7, 8, 9}));
}

TEST(Serialize, RejectsWrongTag) {
  std::stringstream buffer;
  { BinaryWriter w(buffer, "AAAA"); }
  EXPECT_THROW(BinaryReader(buffer, "BBBB"), SerializationError);
}

TEST(Serialize, ThrowsOnTruncatedStream) {
  std::stringstream buffer;
  {
    BinaryWriter w(buffer, "TEST");
    w.write_u32(1);
  }
  BinaryReader r(buffer, "TEST");
  EXPECT_EQ(r.read_u32(), 1u);
  EXPECT_THROW(r.read_u64(), SerializationError);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRowsWithMatchingArity) {
  const std::string path = testing::TempDir() + "gp_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.write_row(std::vector<std::string>{"1", "x,y"});
    csv.write_row(std::vector<double>{2.5, -1.0});
    EXPECT_THROW(csv.write_row(std::vector<std::string>{"only-one"}), InvalidArgument);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");
}

TEST(Table, FormatsPercentagesAndNumbers) {
  EXPECT_EQ(Table::pct(0.98872), "98.87%");
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
}

// Regression pins for the deduplicated FNV-1a (common/fnv.hpp). Before this
// helper existed, four subsystems each carried a private copy of the loop
// (testkit digests, the .gpsy checksum trailer, fault-schedule digests,
// kinematics string hashing). These tests pin (a) the published reference
// values of FNV-1a-64 and (b) that every former call-path produces the same
// digest for the same payload, so the constants can never drift apart again.
TEST(FnvDedup, KnownReferenceValues) {
  // Published FNV-1a-64 vectors.
  EXPECT_EQ(fnv::hash_string(""), 14695981039346656037ULL);   // offset basis
  EXPECT_EQ(fnv::hash_string("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(fnv::hash_string("foobar"), 0x85944171F73967E8ULL);
  EXPECT_EQ(fnv::kOffsetBasis, 14695981039346656037ULL);
  EXPECT_EQ(fnv::kPrime, 1099511628211ULL);
}

TEST(FnvDedup, StreamingMatchesOneShot) {
  const std::string payload = "gestureprint checksum payload \x01\x02\xff";
  std::uint64_t h = fnv::kOffsetBasis;
  for (char c : payload) h = fnv::accumulate(h, &c, 1);  // byte-at-a-time stream
  EXPECT_EQ(h, fnv::hash_string(payload));
  EXPECT_EQ(h, fnv::hash_bytes(payload.data(), payload.size()));
}

TEST(FnvDedup, AccumulateValueMatchesRawBytes) {
  const std::uint64_t v = 0x0123456789ABCDEFULL;
  EXPECT_EQ(fnv::accumulate_value(fnv::kOffsetBasis, v),
            fnv::hash_bytes(&v, sizeof(v)));
}

TEST(Error, CheckArgThrowsWithMessage) {
  try {
    check_arg(false, "my message");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "my message");
  }
}

}  // namespace
}  // namespace gp
