// gp::serve tests (DESIGN.md §8): per-session determinism across thread and
// shard counts, micro-batch composition independence, typed overload
// shedding with bounded queues, deadline stale drops, RCU hot-swap audit,
// fused-vs-unfused inference equivalence, and a GP_FAULTS-style soak with
// zero uncaught exceptions.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "exec/exec.hpp"
#include "faults/faults.hpp"
#include "gesidnet/trainer.hpp"
#include "pipeline/preprocessor.hpp"
#include "serve/server.hpp"
#include "system/gestureprint.hpp"

namespace gp {
namespace {

/// Shared world: one small trained + saved system and a few client streams,
/// built once for the whole binary (training dominates this file's runtime).
struct ServeWorld {
  GesturePrintConfig config;
  std::string model_path;
  DatasetSpec spec;
  std::vector<ContinuousRecording> streams;  ///< per-session recordings
};

const ServeWorld& world() {
  static const ServeWorld* w = [] {
    auto* out = new ServeWorld();
    DatasetScale scale;
    scale.max_users = 3;
    scale.reps = 8;
    out->spec = gestureprint_spec(1, scale);
    out->spec.gestures.resize(3);
    const Dataset dataset = generate_dataset(out->spec);

    out->config.training.epochs = 6;
    out->config.training.batch_size = 16;
    out->config.prep.augmentation.copies = 2;
    out->config.abstain_margin = 0.05;

    GesturePrintSystem system(out->config);
    Rng split_rng(3, 1);
    system.fit(dataset,
               stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);
    out->model_path = testing::TempDir() + "gp_serve_model.gpsy";
    system.save(out->model_path);

    const std::vector<std::vector<int>> scripts{{0, 2, 1}, {1, 0, 2}, {2, 1, 0}};
    for (std::size_t s = 0; s < scripts.size(); ++s) {
      out->streams.push_back(generate_recording(out->spec, s % out->spec.num_users,
                                                scripts[s], 0x5E17E + s));
    }
    return out;
  }();
  return *w;
}

serve::ServeConfig base_config(std::size_t shards) {
  serve::ServeConfig sc;
  sc.system = world().config;
  sc.shards = shards;
  sc.batch_wait_us = 0;  // flush every pump: deterministic batching for tests
  return sc;
}

/// Streams `session_ids[i]` ← streams[i] interleaved frame-by-frame through
/// a fresh Server and returns all results sorted by (session, ordinal).
std::vector<serve::ServeResult> run_stream(const serve::ServeConfig& sc,
                                           serve::ModelRegistry& registry,
                                           const std::vector<std::uint64_t>& session_ids,
                                           exec::ExecContext& ctx) {
  serve::Server server(sc, registry, ctx);
  const auto& streams = world().streams;
  std::size_t max_frames = 0;
  for (std::size_t i = 0; i < session_ids.size(); ++i) {
    max_frames = std::max(max_frames, streams[i].frames.size());
  }
  std::vector<serve::ServeResult> results;
  for (std::size_t f = 0; f < max_frames; ++f) {
    for (std::size_t i = 0; i < session_ids.size(); ++i) {
      if (f >= streams[i].frames.size()) continue;
      EXPECT_EQ(server.push_frame(session_ids[i], streams[i].frames[f]),
                serve::Admission::kAccepted);
    }
    for (serve::ServeResult& r : server.pump()) results.push_back(std::move(r));
  }
  for (serve::ServeResult& r : server.drain()) results.push_back(std::move(r));
  std::sort(results.begin(), results.end(), [](const auto& a, const auto& b) {
    return a.session_id != b.session_id ? a.session_id < b.session_id
                                        : a.segment_ordinal < b.segment_ordinal;
  });
  return results;
}

void expect_bitwise_equal(const std::vector<serve::ServeResult>& a,
                          const std::vector<serve::ServeResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].session_id, b[i].session_id);
    EXPECT_EQ(a[i].segment_ordinal, b[i].segment_ordinal);
    EXPECT_EQ(a[i].gesture, b[i].gesture);
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].abstained, b[i].abstained);
    EXPECT_EQ(a[i].quality_rejected, b[i].quality_rejected);
    EXPECT_EQ(a[i].gesture_margin, b[i].gesture_margin);  // bitwise doubles
    EXPECT_EQ(a[i].user_margin, b[i].user_margin);
  }
}

// Per-session results must be a pure function of (frames, serve seed,
// session id) — never of GP_THREADS or the shard count.
TEST(Serve, DeterministicAcrossThreadsAndShards) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());
  const std::vector<std::uint64_t> ids{1, 2, 3};

  std::vector<serve::ServeResult> reference;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      exec::ExecContext ctx(threads);
      auto results = run_stream(base_config(shards), registry, ids, ctx);
      ASSERT_GE(results.size(), ids.size());  // every stream completed segments
      if (reference.empty()) {
        reference = std::move(results);
      } else {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " shards=" + std::to_string(shards));
        expect_bitwise_equal(reference, results);
      }
    }
  }
}

// A session's answers must not depend on which other sessions' segments
// shared its micro-batches (per-sample batch-composition independence).
TEST(Serve, BatchCompositionIndependent) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());
  exec::ExecContext ctx(2);

  auto alone = run_stream(base_config(2), registry, {1}, ctx);
  auto crowd = run_stream(base_config(2), registry, {1, 2, 3}, ctx);
  crowd.erase(std::remove_if(crowd.begin(), crowd.end(),
                             [](const serve::ServeResult& r) { return r.session_id != 1; }),
              crowd.end());
  expect_bitwise_equal(alone, crowd);
}

// Bounded ingress queues shed with a typed rejection, never grow past cap,
// and the shed tally is observable.
TEST(Serve, OverloadShedsTypedAndBounded) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());
  serve::ServeConfig sc = base_config(1);
  sc.queue_cap = 4;
  exec::ExecContext ctx(1);
  serve::Server server(sc, registry, ctx);

  const FrameSequence& frames = world().streams[0].frames;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (std::size_t f = 0; f < 50 && f < frames.size(); ++f) {
    const serve::Admission verdict = server.push_frame(7, frames[f]);
    if (verdict == serve::Admission::kAccepted) {
      ++accepted;
    } else {
      EXPECT_EQ(verdict, serve::Admission::kRejectedQueueFull);
      ++rejected;
    }
    EXPECT_LE(server.sessions().queue_depth(0), sc.queue_cap);
  }
  EXPECT_EQ(accepted, sc.queue_cap);
  EXPECT_GT(rejected, 0u);

  const serve::SessionManager::Stats stats = server.session_stats();
  EXPECT_EQ(stats.frames_accepted, accepted);
  EXPECT_EQ(stats.frames_rejected_queue_full, rejected);
  EXPECT_NO_THROW((void)server.drain());  // shedding degraded, nothing died
}

// Frames that waited longer than stale_after_ticks are shed at drain time.
TEST(Serve, StaleFramesShedAtDrain) {
  serve::ServeConfig sc = base_config(1);
  sc.stale_after_ticks = 1;
  serve::SessionManager sessions(sc);
  exec::ExecContext ctx(1);

  const FrameSequence& frames = world().streams[0].frames;
  const std::size_t pushed = std::min<std::size_t>(8, frames.size());
  for (std::size_t f = 0; f < pushed; ++f) {
    ASSERT_EQ(sessions.enqueue(1, frames[f], /*tick=*/0), serve::Admission::kAccepted);
  }
  (void)sessions.drain(ctx, /*tick=*/5);  // all 8 are > 1 tick old
  EXPECT_EQ(sessions.stats().frames_shed_stale, pushed);
  EXPECT_EQ(sessions.queue_depth(0), 0u);
}

// Mid-stream publish: versions in the result stream are monotonic, the swap
// is batch-atomic (no flush mixes versions), and nothing is dropped.
TEST(Serve, HotSwapMidStreamIsAuditedAndLossless) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());
  exec::ExecContext ctx(2);
  const std::vector<std::uint64_t> ids{1, 2};

  // Reference run without a swap, to pin the expected result count.
  const std::size_t expected = run_stream(base_config(2), registry, ids, ctx).size();
  ASSERT_EQ(registry.version(), 1u);

  serve::Server server(base_config(2), registry, ctx);
  const auto& streams = world().streams;
  std::size_t max_frames = std::max(streams[0].frames.size(), streams[1].frames.size());
  std::vector<serve::ServeResult> results;
  for (std::size_t f = 0; f < max_frames; ++f) {
    if (f == max_frames / 2) {
      // Same weights, new generation: versions must flip, answers must not.
      ASSERT_TRUE(registry.publish_file(world().model_path).has_value());
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (f >= streams[i].frames.size()) continue;
      (void)server.push_frame(ids[i], streams[i].frames[f]);
    }
    for (serve::ServeResult& r : server.pump()) results.push_back(std::move(r));
  }
  for (serve::ServeResult& r : server.drain()) results.push_back(std::move(r));

  EXPECT_EQ(results.size(), expected);  // hot-swap dropped nothing
  EXPECT_EQ(registry.version(), 2u);
  std::uint64_t last = 0;
  bool saw_v2 = false;
  for (const serve::ServeResult& r : results) {  // flush order
    EXPECT_GE(r.model_version, last);
    EXPECT_GE(r.model_version, 1u);
    last = r.model_version;
    saw_v2 = saw_v2 || r.model_version == 2;
  }
  EXPECT_TRUE(saw_v2);
}

// Quantized hot-swap: an int8 snapshot published mid-stream (GP_QUANT-style
// rollout) must be as lossless and audited as an f32→f32 swap. Every result
// carries the model_version that answered it, the registry's served snapshot
// flips to quant == kInt8, and post-swap segments keep producing typed
// answers — int8 changes the kernel, never the serving contract.
TEST(Serve, QuantizedHotSwapMidStreamIsAudited) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path, nn::QuantMode::kOff).has_value());
  ASSERT_NE(registry.current(), nullptr);
  EXPECT_EQ(registry.current()->quant, nn::QuantMode::kOff);
  exec::ExecContext ctx(2);
  const std::vector<std::uint64_t> ids{1, 2};

  const std::size_t expected = run_stream(base_config(2), registry, ids, ctx).size();
  ASSERT_EQ(registry.version(), 1u);

  serve::Server server(base_config(2), registry, ctx);
  const auto& streams = world().streams;
  std::size_t max_frames = std::max(streams[0].frames.size(), streams[1].frames.size());
  std::vector<serve::ServeResult> results;
  for (std::size_t f = 0; f < max_frames; ++f) {
    if (f == max_frames / 2) {
      // Same weights, quantized kernel: the swap must be announced via
      // model_version, not detectable via drops or exceptions.
      ASSERT_TRUE(
          registry.publish_file(world().model_path, nn::QuantMode::kInt8).has_value());
      ASSERT_NE(registry.current(), nullptr);
      EXPECT_EQ(registry.current()->quant, nn::QuantMode::kInt8);
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (f >= streams[i].frames.size()) continue;
      (void)server.push_frame(ids[i], streams[i].frames[f]);
    }
    for (serve::ServeResult& r : server.pump()) results.push_back(std::move(r));
  }
  for (serve::ServeResult& r : server.drain()) results.push_back(std::move(r));

  EXPECT_EQ(results.size(), expected);  // quantized hot-swap dropped nothing
  EXPECT_EQ(registry.version(), 2u);
  std::uint64_t last = 0;
  bool saw_quantized = false;
  for (const serve::ServeResult& r : results) {
    EXPECT_GE(r.model_version, last);  // flush order: versions never regress
    EXPECT_GE(r.model_version, 1u);
    last = r.model_version;
    if (r.model_version == 2) {
      saw_quantized = true;
      EXPECT_TRUE(r.gesture >= 0 || r.gesture == kAbstain);
      EXPECT_TRUE(r.user >= 0 || r.user == kAbstain);
    }
  }
  EXPECT_TRUE(saw_quantized) << "no segment was answered by the int8 snapshot";
}

// A failed publish must never disturb the served snapshot.
TEST(Serve, FailedPublishKeepsServing) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());
  EXPECT_FALSE(registry.publish_file(testing::TempDir() + "gp_serve_missing.gpsy"));
  EXPECT_EQ(registry.version(), 1u);
  ASSERT_NE(registry.current(), nullptr);
  EXPECT_EQ(registry.current()->version, 1u);
}

// Before the first publish, segments get typed no-model refusals — never
// exceptions, never silent drops.
TEST(Serve, NoModelPublishedGivesTypedRefusals) {
  serve::ModelRegistry registry(world().config);  // nothing published
  exec::ExecContext ctx(1);
  std::vector<serve::ServeResult> results;
  ASSERT_NO_THROW(results = run_stream(base_config(1), registry, {1}, ctx));
  ASSERT_FALSE(results.empty());
  for (const serve::ServeResult& r : results) {
    EXPECT_EQ(r.gesture, kAbstain);
    EXPECT_EQ(r.user, kAbstain);
    EXPECT_TRUE(r.abstained);
    EXPECT_EQ(r.model_version, 0u);
  }
}

// The fused (inference-only) path must agree with the unfused offline path:
// same argmax, probabilities within float-accumulation tolerance.
TEST(Serve, FusedMatchesUnfusedLogits) {
  GesturePrintSystem unfused(world().config);
  ASSERT_TRUE(unfused.try_load(world().model_path));
  GesturePrintSystem fused(world().config);
  ASSERT_TRUE(fused.try_load(world().model_path));
  fused.fuse_for_inference();

  // Deterministic variants from the shared streams' first segments.
  const Dataset dataset = generate_dataset(world().spec);
  std::vector<FeaturizedSample> variants;
  for (std::size_t i = 0; i < 6; ++i) {
    Rng rng = exec::child_rng(0xF05EDu, i);
    variants.push_back(
        featurize(dataset.samples[i * 7].cloud, world().config.prep.features, rng));
  }
  const nn::Tensor a = predict_logits(unfused.gesture_model(), variants);
  const nn::Tensor b = predict_logits(fused.gesture_model(), variants);
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double max_a = -1e30, max_b = -1e30;
    std::size_t arg_a = 0, arg_b = 0;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_NEAR(a.at(r, c), b.at(r, c), 1e-3) << "row " << r << " col " << c;
      if (a.at(r, c) > max_a) { max_a = a.at(r, c); arg_a = c; }
      if (b.at(r, c) > max_b) { max_b = b.at(r, c); arg_b = c; }
    }
    EXPECT_EQ(arg_a, arg_b) << "argmax diverged on row " << r;
  }
}

// A fused system refuses the training/serialisation paths with typed errors.
TEST(Serve, FusedSystemRefusesTrainingPaths) {
  GesturePrintSystem system(world().config);
  ASSERT_TRUE(system.try_load(world().model_path));
  system.fuse_for_inference();
  EXPECT_THROW(system.save(testing::TempDir() + "gp_serve_refused.gpsy"), Error);
}

// GP_FAULTS-style soak: every session behind a severely degraded link; the
// server must produce only typed answers — zero uncaught exceptions.
TEST(Serve, FaultSoakZeroUncaughtExceptions) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());
  serve::ServeConfig sc = base_config(2);
  sc.session_faults = faults::FaultConfig::mixed(1.0);
  exec::ExecContext ctx(2);

  std::vector<serve::ServeResult> results;
  ASSERT_NO_THROW(results = run_stream(sc, registry, {1, 2, 3}, ctx));
  for (const serve::ServeResult& r : results) {
    EXPECT_TRUE(r.gesture >= 0 || r.gesture == kAbstain);
    EXPECT_TRUE(r.user >= 0 || r.user == kAbstain);
  }
  // And the faulty run is itself deterministic (per-session fault seeds).
  std::vector<serve::ServeResult> again;
  ASSERT_NO_THROW(again = run_stream(sc, registry, {1, 2, 3}, ctx));
  expect_bitwise_equal(results, again);

  // Quantized cell of the soak: the int8 kernel behind the same degraded
  // links must uphold the identical typed-answers and determinism contract.
  serve::ModelRegistry quant_registry(world().config);
  ASSERT_TRUE(
      quant_registry.publish_file(world().model_path, nn::QuantMode::kInt8).has_value());
  std::vector<serve::ServeResult> qresults;
  ASSERT_NO_THROW(qresults = run_stream(sc, quant_registry, {1, 2, 3}, ctx));
  for (const serve::ServeResult& r : qresults) {
    EXPECT_TRUE(r.gesture >= 0 || r.gesture == kAbstain);
    EXPECT_TRUE(r.user >= 0 || r.user == kAbstain);
  }
  std::vector<serve::ServeResult> qagain;
  ASSERT_NO_THROW(qagain = run_stream(sc, quant_registry, {1, 2, 3}, ctx));
  expect_bitwise_equal(qresults, qagain);
}

// Concurrent producers against a pumping server: admission is thread-safe
// (this test is part of the tsan-smoke lane).
TEST(Serve, ConcurrentPushersUnderPump) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());
  serve::ServeConfig sc = base_config(4);
  sc.queue_cap = 64;
  exec::ExecContext ctx(2);
  serve::Server server(sc, registry, ctx);

  std::vector<std::thread> producers;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    producers.emplace_back([&, id] {
      const FrameSequence& frames = world().streams[id - 1].frames;
      for (const FrameCloud& frame : frames) (void)server.push_frame(id, frame);
    });
  }
  std::vector<serve::ServeResult> results;
  for (int i = 0; i < 200; ++i) {
    for (serve::ServeResult& r : server.pump()) results.push_back(std::move(r));
  }
  for (std::thread& t : producers) t.join();
  for (serve::ServeResult& r : server.drain()) results.push_back(std::move(r));

  const serve::SessionManager::Stats stats = server.session_stats();
  EXPECT_GT(stats.frames_accepted, 0u);
  EXPECT_EQ(server.batch_stats().segments, results.size());
}

}  // namespace
}  // namespace gp
