// Preprocessing pipeline tests: adaptive sliding-window segmentation on
// synthetic and simulated streams, noise canceling, augmentation
// statistics, and featurization contracts.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "datasets/catalog.hpp"
#include "pipeline/augmentation.hpp"
#include "pipeline/noise_cancel.hpp"
#include "pipeline/preprocessor.hpp"
#include "pipeline/segmentation.hpp"

namespace gp {
namespace {

// Builds a synthetic frame with `n` points clustered around `center`.
FrameCloud synth_frame(int index, std::size_t n, const Vec3& center = {0, 1.2, 0}, Rng* rng = nullptr) {
  FrameCloud frame;
  frame.frame_index = index;
  frame.timestamp = index * 0.1;
  for (std::size_t i = 0; i < n; ++i) {
    RadarPoint p;
    const double jx = rng != nullptr ? rng->gaussian(0.0, 0.1) : 0.01 * static_cast<double>(i);
    const double jz = rng != nullptr ? rng->gaussian(0.0, 0.1) : 0.0;
    p.position = center + Vec3(jx, 0.0, jz);
    p.velocity = 0.7;
    p.frame = index;
    frame.points.push_back(p);
  }
  return frame;
}

// idle(n_idle) -> motion(n_motion frames of `motion_points` points) -> idle.
FrameSequence synth_stream(std::size_t idle_before, std::size_t motion, std::size_t idle_after,
                           std::size_t idle_points = 1, std::size_t motion_points = 12) {
  FrameSequence stream;
  int index = 0;
  Rng rng(42);
  for (std::size_t i = 0; i < idle_before; ++i) stream.push_back(synth_frame(index++, idle_points, {0, 1.2, 0}, &rng));
  for (std::size_t i = 0; i < motion; ++i) stream.push_back(synth_frame(index++, motion_points, {0, 1.2, 0}, &rng));
  for (std::size_t i = 0; i < idle_after; ++i) stream.push_back(synth_frame(index++, idle_points, {0, 1.2, 0}, &rng));
  return stream;
}

TEST(Segmentation, DetectsSingleGestureSpan) {
  const FrameSequence stream = synth_stream(20, 25, 20);
  const auto segments = GestureSegmenter::segment_all(stream);
  ASSERT_EQ(segments.size(), 1u);
  // Start within a window of the true onset (frame 20), end near frame 44.
  EXPECT_NEAR(static_cast<double>(segments[0].start_frame), 20.0, 11.0);
  EXPECT_NEAR(static_cast<double>(segments[0].end_frame), 44.0, 11.0);
  EXPECT_GE(segments[0].frames.size(), 15u);
}

TEST(Segmentation, NoGestureInPureIdle) {
  const FrameSequence stream = synth_stream(60, 0, 0);
  EXPECT_TRUE(GestureSegmenter::segment_all(stream).empty());
}

TEST(Segmentation, ShortBlipBelowFThrIgnored) {
  // 3 motion frames < F_Thr=8: must not trigger.
  const FrameSequence stream = synth_stream(30, 3, 30);
  EXPECT_TRUE(GestureSegmenter::segment_all(stream).empty());
}

TEST(Segmentation, TwoGesturesSeparatedByIdle) {
  FrameSequence stream = synth_stream(20, 20, 18);
  const FrameSequence second = synth_stream(0, 22, 20);
  int index = static_cast<int>(stream.size());
  for (FrameCloud f : second) {
    f.frame_index = index++;
    stream.push_back(f);
  }
  const auto segments = GestureSegmenter::segment_all(stream);
  EXPECT_EQ(segments.size(), 2u);
}

TEST(Segmentation, AdaptiveThresholdTracksBackground) {
  // Sustained elevated clutter (~6 points/frame). Initially this looks like
  // motion and produces bounded false gestures, but the background history
  // accumulated between them must eventually lift the threshold above the
  // clutter level, silencing the stream.
  GestureSegmenter segmenter;
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    segmenter.push(synth_frame(i, 5 + rng.index(3)));
  }
  EXPECT_GE(segmenter.current_threshold(), 7u);
  (void)segmenter.take_segments();
  // Once adapted, further clutter frames trigger nothing.
  for (int i = 300; i < 360; ++i) {
    segmenter.push(synth_frame(i, 5 + rng.index(3)));
  }
  segmenter.finish();
  EXPECT_TRUE(segmenter.take_segments().empty());
}

TEST(Segmentation, MaxGestureFramesBoundsRunaway) {
  SegmentationParams params;
  params.max_gesture_frames = 30;
  const FrameSequence stream = synth_stream(20, 200, 10);
  const auto segments = GestureSegmenter::segment_all(stream, params);
  ASSERT_GE(segments.size(), 1u);
  for (const auto& seg : segments) EXPECT_LE(seg.frames.size(), 30u);
}

TEST(Segmentation, FinishFlushesOpenGesture) {
  GestureSegmenter segmenter;
  const FrameSequence stream = synth_stream(20, 25, 0);  // stream ends mid-gesture
  for (const auto& f : stream) segmenter.push(f);
  EXPECT_TRUE(segmenter.take_segments().empty());
  segmenter.finish();
  // finish() is idempotent w.r.t. already-taken segments.
  const auto segments = segmenter.take_segments();
  EXPECT_EQ(segments.size(), 1u);
  segmenter.finish();
  EXPECT_TRUE(segmenter.take_segments().empty());
}

TEST(Segmentation, EndToEndOnSimulatedRecording) {
  // Full path: performer -> radar -> streaming segmentation. Three gestures
  // with 2-4 s pauses; the segmenter should find close to three segments.
  DatasetScale scale;
  scale.max_users = 2;
  scale.reps = 2;
  const DatasetSpec spec = gestureprint_spec(1, scale);
  const ContinuousRecording recording = generate_recording(spec, 0, {0, 4, 9}, 777);

  const auto segments = GestureSegmenter::segment_all(recording.frames);
  EXPECT_GE(segments.size(), 2u);
  EXPECT_LE(segments.size(), 4u);

  // Every detected segment overlaps a ground-truth span.
  for (const auto& seg : segments) {
    bool overlaps = false;
    for (const auto& [begin, end] : recording.truth_spans) {
      if (seg.start_frame <= end && seg.end_frame >= begin) overlaps = true;
    }
    EXPECT_TRUE(overlaps) << "segment [" << seg.start_frame << "," << seg.end_frame
                          << "] matches no ground-truth span";
  }
}

TEST(NoiseCancel, KeepsMainClusterDropsOutliers) {
  Rng rng(2);
  PointCloud cloud;
  for (int i = 0; i < 60; ++i) {
    RadarPoint p;
    p.position = Vec3(rng.gaussian(0.0, 0.2), 1.2 + rng.gaussian(0.0, 0.2),
                      rng.gaussian(0.0, 0.2));
    cloud.push_back(p);
  }
  // Far ghost blob (small) + isolated outliers.
  for (int i = 0; i < 6; ++i) {
    RadarPoint p;
    p.position = Vec3(3.0 + rng.gaussian(0.0, 0.1), 4.0, 0.0);
    cloud.push_back(p);
  }
  RadarPoint lone;
  lone.position = Vec3(-4, 5, 2);
  cloud.push_back(lone);

  const NoiseCancelResult result = cancel_noise(cloud);
  EXPECT_EQ(result.main_cluster.size(), 60u);
  EXPECT_EQ(result.other_clusters.size(), 1u);
  EXPECT_EQ(result.noise_points, 1u);
}

TEST(NoiseCancel, EmptyInputYieldsEmptyResult) {
  const NoiseCancelResult result = cancel_noise(PointCloud{});
  EXPECT_TRUE(result.main_cluster.empty());
  EXPECT_TRUE(result.other_clusters.empty());
}

TEST(NoiseCancel, AllNoiseFallsBackToRawCloud) {
  // Points too sparse to cluster: keep the raw cloud (graceful degradation).
  PointCloud cloud;
  for (int i = 0; i < 5; ++i) {
    RadarPoint p;
    p.position = Vec3(i * 3.0, 1.0, 0.0);
    cloud.push_back(p);
  }
  const NoiseCancelResult result = cancel_noise(cloud);
  EXPECT_EQ(result.main_cluster.size(), cloud.size());
}

TEST(Augmentation, JitterPreservesCountAndApproximateScale) {
  Rng rng(3);
  PointCloud cloud;
  for (int i = 0; i < 500; ++i) {
    RadarPoint p;
    p.position = Vec3(0.0, 1.2, 0.0);
    cloud.push_back(p);
  }
  const PointCloud jittered = jitter_cloud(cloud, 0.02, rng);
  ASSERT_EQ(jittered.size(), cloud.size());
  // Empirical displacement stddev per axis ~ 0.02 (paper's sigma).
  double acc = 0.0;
  for (std::size_t i = 0; i < jittered.size(); ++i) {
    const Vec3 d = jittered[i].position - cloud[i].position;
    acc += d.x * d.x;
  }
  EXPECT_NEAR(std::sqrt(acc / 500.0), 0.02, 0.004);
}

TEST(Augmentation, ProducesConfiguredCopies) {
  Rng rng(4);
  PointCloud cloud(10);
  const auto copies = augment(cloud, AugmentationParams{0.02, 3}, rng);
  EXPECT_EQ(copies.size(), 4u);  // original + 3 (paper: "three times")
}

TEST(Preprocessor, ProcessSegmentComputesTiming) {
  const FrameSequence segment = synth_stream(0, 24, 0);
  const Preprocessor preprocessor;
  const GestureCloud cloud = preprocessor.process_segment(segment);
  EXPECT_EQ(cloud.num_frames, 24u);
  EXPECT_NEAR(cloud.duration_s, 2.4, 1e-9);
  EXPECT_FALSE(cloud.points.empty());
}

TEST(Featurize, ShapeAndChannels) {
  const FrameSequence segment = synth_stream(0, 20, 0);
  const Preprocessor preprocessor;
  const GestureCloud cloud = preprocessor.process_segment(segment);

  Rng rng(5);
  FeatureConfig config;
  config.num_points = 64;
  const FeaturizedSample sample = featurize(cloud, config, rng);
  EXPECT_EQ(sample.num_points, 64u);
  EXPECT_EQ(sample.dims, 7u);
  EXPECT_EQ(sample.positions.size(), 64u * 3);
  EXPECT_EQ(sample.features.size(), 64u * 7);

  // Centered positions: mean ~ 0.
  double mean_x = 0.0;
  for (std::size_t i = 0; i < 64; ++i) mean_x += sample.positions[i * 3];
  EXPECT_NEAR(mean_x / 64.0, 0.0, 1e-5);

  // Temporal channel within [0, 1]; duration channel constant.
  for (std::size_t i = 0; i < 64; ++i) {
    const float t = sample.features[i * 7 + 5];
    EXPECT_GE(t, 0.0f);
    EXPECT_LE(t, 1.0f);
    EXPECT_FLOAT_EQ(sample.features[i * 7 + 6], sample.features[6]);
  }
}

TEST(Featurize, UpsamplesSparseClouds) {
  FrameSequence segment = synth_stream(0, 5, 0, 1, 3);  // 15 points total
  const Preprocessor preprocessor;
  const GestureCloud cloud = preprocessor.process_segment(segment);
  Rng rng(6);
  FeatureConfig config;
  config.num_points = 128;
  const FeaturizedSample sample = featurize(cloud, config, rng);
  EXPECT_EQ(sample.num_points, 128u);
}

}  // namespace
}  // namespace gp
