// gp::health tests (DESIGN.md §10): GP_SLO spec parsing + verdict
// hysteresis, the rolling tick-window SLI aggregator, and the serve-level
// acceptance bar from ISSUE 7 — bitwise-identical ServeResults with health
// on or off across thread counts, a seeded fault storm flipping the verdict
// degraded and back with hysteresis, a p99 exemplar naming the injected
// slow stage, the flight-recorder dump parsing back in order, and the
// steady-tick zero-alloc invariant holding with health fully enabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/mem.hpp"
#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "exec/exec.hpp"
#include "faults/faults.hpp"
#include "health/flightrec.hpp"
#include "health/health.hpp"
#include "health/slo.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"
#include "system/gestureprint.hpp"

namespace gp {
namespace {

// ---- GP_SLO spec grammar --------------------------------------------------

TEST(Slo, ParseAndRoundTrip) {
  const health::SloSpec spec = health::SloSpec::parse(
      "p99_ms<5, shed_rate<0.05, batch_occupancy>0.1,"
      "window=256t, degraded_after=3, unhealthy_after=10, healthy_after=4");
  ASSERT_EQ(spec.clauses.size(), 3u);
  EXPECT_EQ(spec.clauses[0].metric, health::SliMetric::kP99Ms);
  EXPECT_TRUE(spec.clauses[0].upper_bound);
  EXPECT_EQ(spec.clauses[0].threshold, 5.0);
  EXPECT_EQ(spec.clauses[1].metric, health::SliMetric::kShedRate);
  EXPECT_EQ(spec.clauses[2].metric, health::SliMetric::kBatchOccupancy);
  EXPECT_FALSE(spec.clauses[2].upper_bound);  // '>' = lower bound
  EXPECT_EQ(spec.window_ticks, 256u);
  EXPECT_EQ(spec.degraded_after, 3u);
  EXPECT_EQ(spec.unhealthy_after, 10u);
  EXPECT_EQ(spec.healthy_after, 4u);

  // Canonical form is a fixed point: parse(to_string()) round-trips.
  const health::SloSpec reparsed = health::SloSpec::parse(spec.to_string());
  EXPECT_EQ(reparsed.to_string(), spec.to_string());
}

TEST(Slo, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)health::SloSpec::parse(""), InvalidArgument);
  EXPECT_THROW((void)health::SloSpec::parse("window=64t"), InvalidArgument);  // no clause
  EXPECT_THROW((void)health::SloSpec::parse("bogus_metric<1"), InvalidArgument);
  EXPECT_THROW((void)health::SloSpec::parse("p99_ms<"), InvalidArgument);
  EXPECT_THROW((void)health::SloSpec::parse("p99_ms<nope"), InvalidArgument);
  EXPECT_THROW((void)health::SloSpec::parse("p99_ms<-1"), InvalidArgument);
  EXPECT_THROW((void)health::SloSpec::parse("p99_ms<5,window=64"), InvalidArgument);  // no 't'
  EXPECT_THROW((void)health::SloSpec::parse("p99_ms<5,frobnicate=3"), InvalidArgument);
  EXPECT_THROW((void)health::SloSpec::parse("p99_ms<5,degraded_after=0"), InvalidArgument);
  // Hysteresis ordering: degraded must come before unhealthy.
  EXPECT_THROW((void)health::SloSpec::parse("p99_ms<5,degraded_after=5,unhealthy_after=2"),
               InvalidArgument);
}

TEST(Slo, VerdictTrackerHysteresis) {
  health::SloSpec spec;
  spec.degraded_after = 2;
  spec.unhealthy_after = 4;
  spec.healthy_after = 2;
  health::VerdictTracker tracker(spec);
  EXPECT_EQ(tracker.verdict(), health::Verdict::kHealthy);

  // One breach is noise; the second flips healthy → degraded.
  EXPECT_FALSE(tracker.evaluate(true));
  EXPECT_EQ(tracker.verdict(), health::Verdict::kHealthy);
  EXPECT_TRUE(tracker.evaluate(true));
  EXPECT_EQ(tracker.verdict(), health::Verdict::kDegraded);
  EXPECT_EQ(tracker.flips(), 1u);

  // The flip consumed the streak: degraded → unhealthy needs
  // unhealthy_after *fresh* breaches, not unhealthy_after − degraded_after.
  EXPECT_FALSE(tracker.evaluate(true));
  EXPECT_FALSE(tracker.evaluate(true));
  EXPECT_FALSE(tracker.evaluate(true));
  EXPECT_TRUE(tracker.evaluate(true));
  EXPECT_EQ(tracker.verdict(), health::Verdict::kUnhealthy);

  // Recovery needs healthy_after *consecutive* clean windows: a breach in
  // the middle resets the clean streak.
  EXPECT_FALSE(tracker.evaluate(false));
  EXPECT_FALSE(tracker.evaluate(true));
  EXPECT_FALSE(tracker.evaluate(false));
  EXPECT_TRUE(tracker.evaluate(false));
  EXPECT_EQ(tracker.verdict(), health::Verdict::kHealthy);
  EXPECT_EQ(tracker.flips(), 3u);
}

TEST(Slo, VerdictCanJumpStraightToUnhealthy) {
  health::SloSpec spec;
  spec.degraded_after = 1;
  spec.unhealthy_after = 1;  // one windowful bad enough to skip degraded
  spec.healthy_after = 1;
  health::VerdictTracker tracker(spec);
  EXPECT_TRUE(tracker.evaluate(true));
  EXPECT_EQ(tracker.verdict(), health::Verdict::kUnhealthy);
  EXPECT_TRUE(tracker.evaluate(false));
  EXPECT_EQ(tracker.verdict(), health::Verdict::kHealthy);
}

// ---- tick ring / window aggregation ---------------------------------------

TEST(Health, LatencyBucketsAreMonotonic) {
  EXPECT_EQ(health::latency_bucket(0), 0u);
  EXPECT_EQ(health::latency_bucket(1), 1u);
  EXPECT_EQ(health::latency_bucket(2), 2u);
  EXPECT_EQ(health::latency_bucket(3), 2u);
  std::size_t prev = 0;
  for (std::uint64_t us = 0; us < (1ULL << 20); us = us * 2 + 1) {
    const std::size_t b = health::latency_bucket(us);
    EXPECT_GE(b, prev);
    EXPECT_LT(b, health::kLatencyBuckets);
    prev = b;
  }
  // Saturation: absurd latencies land in the last bucket, never out of range.
  EXPECT_EQ(health::latency_bucket(~0ULL), health::kLatencyBuckets - 1);
}

health::RequestSample make_sample(std::uint64_t session, std::uint64_t ordinal,
                                  std::uint64_t total_us) {
  health::RequestSample s;
  s.request_id = session * 1000 + ordinal;
  s.session_id = session;
  s.ordinal = ordinal;
  s.total_us = total_us;
  s.stage_us[static_cast<std::size_t>(health::Stage::kForward)] = total_us;
  return s;
}

// Drives a HealthMonitor directly through two ticks and checks the rolling
// window: counts, rates (zero-denominator rates are 0), occupancy, version
// mix, eviction when cells leave the window, and the verdict lifecycle.
TEST(Health, WindowAggregationAndVerdictLifecycle) {
  health::HealthConfig config;
  config.flightrec = false;
  config.slo = health::SloSpec::parse(
      "abstain_rate<0.2,window=2t,degraded_after=1,unhealthy_after=8,healthy_after=2");
  health::HealthMonitor monitor(config, /*batch_max=*/8);
  ASSERT_TRUE(monitor.enabled());

  // Fresh monitor: every rate must be 0 (no division by a zero denominator).
  {
    const health::HealthSnapshot snap = monitor.snapshot();
    EXPECT_EQ(snap.slo_window.ticks, 0u);
    EXPECT_EQ(snap.slo_window.shed_rate, 0.0);
    EXPECT_EQ(snap.slo_window.abstain_rate, 0.0);
    EXPECT_EQ(snap.slo_window.batch_occupancy, 0.0);
    EXPECT_FALSE(snap.has_exemplar);
  }

  // Tick 1: 4 admitted + 1 rejected, 4 results (1 abstain, 1 quality
  // reject), one 4-segment batch from model version 7.
  for (int i = 0; i < 4; ++i) monitor.on_frame_admitted();
  monitor.on_frame_rejected();
  monitor.record_request(make_sample(1, 0, 100), false, false, false, 7);
  monitor.record_request(make_sample(1, 1, 200), true, false, false, 7);
  monitor.record_request(make_sample(2, 0, 400), false, true, false, 7);
  monitor.record_request(make_sample(2, 1, 800), false, false, false, 7);
  monitor.record_batch(4, 7);
  monitor.close_tick(1);

  {
    const health::HealthSnapshot snap = monitor.snapshot();
    EXPECT_EQ(snap.ticks_closed, 1u);
    EXPECT_EQ(snap.slo_window.ticks, 1u);
    EXPECT_EQ(snap.slo_window.frames_admitted, 4u);
    EXPECT_EQ(snap.slo_window.frames_rejected, 1u);
    EXPECT_EQ(snap.slo_window.results, 4u);
    EXPECT_EQ(snap.slo_window.abstained, 1u);
    EXPECT_EQ(snap.slo_window.quality_rejected, 1u);
    EXPECT_EQ(snap.slo_window.batches, 1u);
    EXPECT_DOUBLE_EQ(snap.slo_window.shed_rate, 1.0 / 5.0);
    EXPECT_DOUBLE_EQ(snap.slo_window.abstain_rate, 0.25);
    EXPECT_DOUBLE_EQ(snap.slo_window.batch_occupancy, 4.0 / 8.0);
    ASSERT_EQ(snap.slo_window.version_mix.size(), 1u);
    EXPECT_EQ(snap.slo_window.version_mix[0].version, 7u);
    EXPECT_EQ(snap.slo_window.version_mix[0].count, 4u);
    // Power-of-two buckets: the median of {100,200,400,800} interpolates
    // somewhere inside [64µs, 512µs] — ±2x resolution by design.
    EXPECT_GE(snap.slo_window.p50_ms, 0.064);
    EXPECT_LE(snap.slo_window.p50_ms, 0.512);
    // Exemplar: the slowest request of the window.
    ASSERT_TRUE(snap.has_exemplar);
    EXPECT_EQ(snap.exemplar.sample.total_us, 800u);
    EXPECT_EQ(snap.exemplar.sample.session_id, 2u);
    // abstain_rate 0.25 >= 0.2 with degraded_after=1: degraded immediately.
    EXPECT_EQ(snap.verdict, health::Verdict::kDegraded);
    EXPECT_EQ(snap.verdict_flips, 1u);
    EXPECT_GE(snap.breaches_total, 1u);
  }

  // Tick 2 is empty — but the 2-tick window still holds tick 1, so the
  // abstain clause still breaches. Ticks 3–4 evict it; two clean
  // evaluations recover the verdict.
  monitor.close_tick(2);
  EXPECT_EQ(monitor.verdict(), health::Verdict::kDegraded);
  monitor.close_tick(3);
  EXPECT_EQ(monitor.verdict(), health::Verdict::kDegraded);  // clean streak 1
  monitor.close_tick(4);
  EXPECT_EQ(monitor.verdict(), health::Verdict::kHealthy);
  EXPECT_EQ(monitor.verdict_flips(), 2u);

  const health::HealthSnapshot snap = monitor.snapshot();
  EXPECT_EQ(snap.slo_window.ticks, 2u);
  EXPECT_EQ(snap.slo_window.results, 0u);  // tick 1 left the window
  EXPECT_EQ(snap.slo_window.abstain_rate, 0.0);
}

TEST(Health, DisabledMonitorIsInert) {
  health::HealthConfig config;
  config.enabled = false;
  health::HealthMonitor monitor(config, 8);
  EXPECT_FALSE(monitor.enabled());
  monitor.on_frame_admitted();
  monitor.record_request(make_sample(1, 0, 100), false, false, false, 1);
  monitor.record_batch(1, 1);
  monitor.close_tick(1);
  EXPECT_EQ(monitor.ticks_closed(), 0u);
  const health::HealthSnapshot snap = monitor.snapshot();
  EXPECT_FALSE(snap.enabled);
  EXPECT_EQ(snap.slo_window.results, 0u);
}

// ---- flight recorder ------------------------------------------------------

void string_sink(void* ctx, const char* data, std::size_t len) {
  static_cast<std::string*>(ctx)->append(data, len);
}

TEST(FlightRec, DumpParsesBackInOrderAcrossWrap) {
  health::FlightRecorder rec(64);
  // 100 marks into a 64-slot ring: the dump must hold exactly the newest 64
  // in recording order.
  for (std::uint64_t i = 0; i < 100; ++i) {
    rec.record(health::EventKind::kMark, /*tick=*/i, /*a=*/i, /*b=*/2 * i, /*c=*/3 * i);
  }
  EXPECT_EQ(rec.total(), 100u);
  EXPECT_EQ(rec.capacity(), 64u);

  std::ostringstream out;
  rec.dump_json(out);
  const obs::json::Value doc = obs::json::parse(out.str());
  const obs::json::Value& fr = doc.at("flight_recorder");
  EXPECT_EQ(fr.at("capacity").num, 64.0);
  EXPECT_EQ(fr.at("total").num, 100.0);
  const obs::json::Value& events = fr.at("events");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.arr.size(), 64u);
  double prev_ns = 0.0;
  for (std::size_t i = 0; i < events.arr.size(); ++i) {
    const obs::json::Value& ev = events.arr[i];
    EXPECT_EQ(ev.at("kind").str, "mark");
    // Oldest surviving mark is #36 (100 − 64); order is recording order.
    EXPECT_EQ(ev.at("a").num, static_cast<double>(36 + i));
    EXPECT_EQ(ev.at("b").num, 2.0 * (36 + i));
    EXPECT_GE(ev.at("ns").num, prev_ns);  // single-threaded: ns non-decreasing
    prev_ns = ev.at("ns").num;
  }

  // snapshot() agrees with the dump.
  const std::vector<health::FlightEvent> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 64u);
  EXPECT_EQ(snap.front().a, 36u);
  EXPECT_EQ(snap.back().a, 99u);

  // The async-signal-safe sink path emits byte-identical JSON.
  std::string sunk;
  rec.dump_with_sink(&string_sink, &sunk);
  EXPECT_EQ(sunk, out.str());

  // Disabled recorder records nothing (one branch, no cursor motion).
  rec.set_enabled(false);
  rec.record(health::EventKind::kMark, 0, 12345);
  EXPECT_EQ(rec.total(), 100u);
}

// ---- serve-level acceptance bar -------------------------------------------

/// Shared world (test_serve idiom): one small trained system + per-session
/// recordings, built once for the binary.
struct HealthWorld {
  GesturePrintConfig config;
  std::string model_path;
  DatasetSpec spec;
  std::vector<ContinuousRecording> streams;
};

const HealthWorld& world() {
  static const HealthWorld* w = [] {
    auto* out = new HealthWorld();
    DatasetScale scale;
    scale.max_users = 3;
    scale.reps = 6;
    out->spec = gestureprint_spec(1, scale);
    out->spec.gestures.resize(3);
    const Dataset dataset = generate_dataset(out->spec);

    out->config.training.epochs = 4;
    out->config.training.batch_size = 16;
    out->config.prep.augmentation.copies = 2;
    out->config.abstain_margin = 0.05;

    GesturePrintSystem system(out->config);
    Rng split_rng(3, 1);
    system.fit(dataset, stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);
    out->model_path = testing::TempDir() + "gp_health_model.gpsy";
    system.save(out->model_path);

    const std::vector<std::vector<int>> scripts{{0, 2, 1}, {1, 0, 2}, {2, 1, 0}};
    for (std::size_t s = 0; s < scripts.size(); ++s) {
      out->streams.push_back(generate_recording(out->spec, s % out->spec.num_users,
                                                scripts[s], 0x4EA17 + s));
    }
    return out;
  }();
  return *w;
}

serve::ServeConfig base_config() {
  serve::ServeConfig sc;
  sc.system = world().config;
  sc.shards = 2;
  sc.batch_wait_us = 0;  // flush every pump: deterministic batching
  return sc;
}

/// Interleaves every stream frame-by-frame through a fresh Server; returns
/// results sorted by (session, ordinal).
std::vector<serve::ServeResult> run_stream(const serve::ServeConfig& sc,
                                           serve::ModelRegistry& registry,
                                           exec::ExecContext& ctx) {
  serve::Server server(sc, registry, ctx);
  const auto& streams = world().streams;
  std::size_t max_frames = 0;
  for (const ContinuousRecording& r : streams) {
    max_frames = std::max(max_frames, r.frames.size());
  }
  std::vector<serve::ServeResult> results;
  for (std::size_t f = 0; f < max_frames; ++f) {
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (f >= streams[i].frames.size()) continue;
      EXPECT_EQ(server.push_frame(static_cast<std::uint64_t>(i + 1), streams[i].frames[f]),
                serve::Admission::kAccepted);
    }
    for (serve::ServeResult& r : server.pump()) results.push_back(std::move(r));
  }
  for (serve::ServeResult& r : server.drain()) results.push_back(std::move(r));
  std::sort(results.begin(), results.end(), [](const auto& a, const auto& b) {
    return a.session_id != b.session_id ? a.session_id < b.session_id
                                        : a.segment_ordinal < b.segment_ordinal;
  });
  return results;
}

void expect_bitwise_equal(const std::vector<serve::ServeResult>& a,
                          const std::vector<serve::ServeResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].session_id, b[i].session_id);
    EXPECT_EQ(a[i].segment_ordinal, b[i].segment_ordinal);
    EXPECT_EQ(a[i].request_id, b[i].request_id);  // pure fn of the stream
    EXPECT_EQ(a[i].gesture, b[i].gesture);
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].abstained, b[i].abstained);
    EXPECT_EQ(a[i].quality_rejected, b[i].quality_rejected);
    EXPECT_EQ(a[i].gesture_margin, b[i].gesture_margin);  // bitwise doubles
    EXPECT_EQ(a[i].user_margin, b[i].user_margin);
    EXPECT_EQ(a[i].model_version, b[i].model_version);
  }
}

// THE acceptance bar: health observes the serve stack, it never feeds
// results. ServeResults must be bitwise identical with health fully off vs
// fully on (SLO + flight recorder), for GP_THREADS in {1, 4}.
TEST(HealthServe, ResultsBitwiseIdenticalHealthOnOff) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());

  serve::ServeConfig off = base_config();
  off.health.enabled = false;
  off.health.flightrec = false;
  serve::ServeConfig on = base_config();
  on.health.enabled = true;
  on.health.flightrec = true;
  on.health.slo = health::SloSpec::parse("p99_ms<1000,shed_rate<0.5,window=64t");

  std::vector<serve::ServeResult> reference;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const serve::ServeConfig* sc : {&off, &on}) {
      exec::ExecContext ctx(threads);
      auto results = run_stream(*sc, registry, ctx);
      ASSERT_GE(results.size(), world().streams.size());
      for (const serve::ServeResult& r : results) {
        EXPECT_NE(r.request_id, 0u);  // RequestId minted for every result
      }
      if (reference.empty()) {
        reference = std::move(results);
      } else {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " health=" + (sc->health.enabled ? "on" : "off"));
        expect_bitwise_equal(reference, results);
      }
    }
  }
}

// A seeded fault storm (every session behind a severity-1.0 degraded link)
// must flip the verdict healthy → degraded via the fault_rate clause, and
// quiet ticks must recover it healthy → with hysteresis, not instantly.
TEST(HealthServe, FaultStormFlipsVerdictAndRecoversWithHysteresis) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());

  serve::ServeConfig sc = base_config();
  sc.session_faults = faults::FaultConfig::mixed(1.0);
  sc.health.slo = health::SloSpec::parse(
      "fault_rate<0.01,window=16t,degraded_after=2,unhealthy_after=1000,healthy_after=3");
  exec::ExecContext ctx(2);
  serve::Server server(sc, registry, ctx);

  // Storm phase: stream everything through the degraded links.
  const auto& streams = world().streams;
  std::size_t max_frames = 0;
  for (const ContinuousRecording& r : streams) {
    max_frames = std::max(max_frames, r.frames.size());
  }
  for (std::size_t f = 0; f < max_frames; ++f) {
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (f >= streams[i].frames.size()) continue;
      (void)server.push_frame(static_cast<std::uint64_t>(i + 1), streams[i].frames[f]);
    }
    (void)server.pump();
  }
  {
    const health::HealthSnapshot snap = server.health_snapshot();
    EXPECT_GT(snap.slo_window.fault_drops, 0u) << "storm produced no fault drops";
    EXPECT_GT(snap.slo_window.fault_rate, 0.0);
    EXPECT_EQ(snap.verdict, health::Verdict::kDegraded);
    EXPECT_EQ(snap.verdict_flips, 1u);
    EXPECT_GE(snap.breaches_total, 2u);
  }

  // One quiet tick is not enough: the 16-tick window still holds storm
  // cells, so the clause still breaches — that is the hysteresis.
  (void)server.pump();
  EXPECT_EQ(server.health().verdict(), health::Verdict::kDegraded);

  // Quiet ticks drain the window (fault_rate has a zero denominator → 0),
  // then healthy_after clean evaluations recover the verdict.
  std::size_t quiet = 1;
  for (; quiet < 64 && server.health().verdict() != health::Verdict::kHealthy; ++quiet) {
    (void)server.pump();
  }
  EXPECT_EQ(server.health().verdict(), health::Verdict::kHealthy);
  EXPECT_GE(quiet, sc.health.slo->healthy_after);  // never an instant flip
  EXPECT_EQ(server.health().verdict_flips(), 2u);
}

// The debug_slow_stage hook inflates the *recorded* breakdown of every
// request (results untouched — covered by the bitwise test above); the p99
// exemplar must name that stage in the snapshot and the Chrome trace.
TEST(HealthServe, ExemplarNamesInjectedSlowStage) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());

  serve::ServeConfig sc = base_config();
  sc.health.slo = health::SloSpec::parse("p99_ms<1000,window=64t");
  sc.health.debug_slow_stage = static_cast<int>(health::Stage::kForward);
  sc.health.debug_slow_us = 7'000'000;  // 7 s: dwarfs every real stage
  exec::ExecContext ctx(2);
  serve::Server server(sc, registry, ctx);

  const auto& streams = world().streams;
  std::size_t max_frames = 0;
  for (const ContinuousRecording& r : streams) {
    max_frames = std::max(max_frames, r.frames.size());
  }
  std::size_t results = 0;
  for (std::size_t f = 0; f < max_frames; ++f) {
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (f >= streams[i].frames.size()) continue;
      (void)server.push_frame(static_cast<std::uint64_t>(i + 1), streams[i].frames[f]);
    }
    results += server.pump().size();
  }
  results += server.drain().size();
  ASSERT_GT(results, 0u);

  const health::HealthSnapshot snap = server.health_snapshot();
  ASSERT_TRUE(snap.has_exemplar);
  EXPECT_EQ(snap.exemplar.sample.slowest_stage(), health::Stage::kForward);
  EXPECT_GE(snap.exemplar.sample.stage_us[static_cast<std::size_t>(health::Stage::kForward)],
            sc.health.debug_slow_us);
  EXPECT_NE(snap.exemplar.sample.request_id, 0u);
  EXPECT_STREQ(health::stage_name(snap.exemplar.sample.slowest_stage()), "forward");

  // The snapshot JSON names the stage...
  EXPECT_NE(snap.to_json().find("\"slowest_stage\": \"forward\""), std::string::npos);

  // ...and the exemplar Chrome trace carries a req.forward span whose
  // duration is the inflated stage time.
  const std::string trace = server.health().exemplar_trace_json();
  EXPECT_NE(trace.find("\"req.forward\""), std::string::npos);
  const obs::json::Value doc = obs::json::parse(trace);
  const obs::json::Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  bool found_slow_forward = false;
  for (const obs::json::Value& ev : events.arr) {
    if (ev.at("ph").str != "X") continue;
    if (ev.at("name").str == "req.forward" &&
        ev.at("dur").num >= static_cast<double>(sc.health.debug_slow_us)) {
      found_slow_forward = true;
    }
  }
  EXPECT_TRUE(found_slow_forward);
}

// health_snapshot() JSON parses back with the documented section shape.
TEST(HealthServe, SnapshotJsonParsesBack) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());

  serve::ServeConfig sc = base_config();
  sc.health.slo = health::SloSpec::parse("p99_ms<1000,abstain_rate<0.9,window=32t");
  exec::ExecContext ctx(1);
  serve::Server server(sc, registry, ctx);
  for (std::size_t f = 0; f < world().streams[0].frames.size(); ++f) {
    (void)server.push_frame(1, world().streams[0].frames[f]);
    (void)server.pump();
  }
  (void)server.drain();

  const health::HealthSnapshot snap = server.health_snapshot();
  const obs::json::Value doc = obs::json::parse(snap.to_json());
  const obs::json::Value& h = doc.at("health");
  EXPECT_TRUE(h.at("enabled").boolean);
  EXPECT_EQ(h.at("ticks_closed").num, static_cast<double>(snap.ticks_closed));
  const obs::json::Value& slo = h.at("slo");
  EXPECT_TRUE(slo.at("present").boolean);
  EXPECT_EQ(slo.at("verdict").str, health::verdict_name(snap.verdict));
  // Round-trip: the emitted spec string re-parses to the same canonical form.
  EXPECT_EQ(health::SloSpec::parse(slo.at("spec").str).to_string(), slo.at("spec").str);
  const obs::json::Value& windows = h.at("windows");
  ASSERT_TRUE(windows.is_array());
  ASSERT_EQ(windows.arr.size(), 4u);  // slo + 1s/10s/60s
  EXPECT_EQ(windows.arr[0].at("window").str, "slo");
  EXPECT_EQ(windows.arr[1].at("window").str, "1s");
  for (const obs::json::Value& w : windows.arr) {
    EXPECT_TRUE(w.at("p99_ms").is_number());
    EXPECT_TRUE(w.at("fault_rate").is_number());
    EXPECT_TRUE(w.at("version_mix").is_array());
  }
  EXPECT_TRUE(h.at("exemplar").at("present").boolean);
  EXPECT_TRUE(h.at("flightrec_events").is_number());
}

// The gp::mem steady-tick invariant (PR 6) must survive health fully
// enabled: rings preallocate, close_tick folds cells without touching the
// heap, and quiet ticks record no flight events.
TEST(HealthServe, ServeSteadyTickZeroAllocWithHealthEnabled) {
  serve::ModelRegistry registry(world().config);
  ASSERT_TRUE(registry.publish_file(world().model_path).has_value());

  serve::ServeConfig sc = base_config();
  sc.health.enabled = true;
  sc.health.flightrec = true;
  sc.health.slo = health::SloSpec::parse("p99_ms<1000,shed_rate<0.9,window=32t");
  exec::ExecContext ctx(1);  // single-threaded: the counter is process-global
  serve::Server server(sc, registry, ctx);

  const FrameSequence& frames = world().streams[0].frames;
  constexpr std::uint64_t kSessions = 2;

  // Warm-up: one full pass so every pool, arena, ring, and cached metric
  // handle reaches steady-state capacity.
  for (const FrameCloud& frame : frames) {
    for (std::uint64_t id = 1; id <= kSessions; ++id) {
      ASSERT_EQ(server.push_frame(id, frame), serve::Admission::kAccepted);
    }
    (void)server.pump();
  }

  // Steady ticks: replay the opening frames — gesture onset re-enters but
  // nothing completes. With health on this still must not allocate.
  const std::size_t quiet_ticks = std::min<std::size_t>(8, frames.size());
  const std::uint64_t ticks_before = server.health().ticks_closed();
  mem::AllocCounter counter;
  for (std::size_t f = 0; f < quiet_ticks; ++f) {
    for (std::uint64_t id = 1; id <= kSessions; ++id) {
      (void)server.push_frame(id, frames[f]);
    }
    const std::vector<serve::ServeResult> results = server.pump();
    ASSERT_TRUE(results.empty()) << "tick " << f << " completed a segment; "
                                    "the quiet-tick premise broke";
  }
  EXPECT_EQ(counter.allocations(), 0u)
      << "health-enabled steady tick touched the heap (" << counter.bytes() << " bytes)";
  EXPECT_EQ(server.health().ticks_closed(), ticks_before + quiet_ticks);
}

}  // namespace
}  // namespace gp
