// Tests for the multi-target cluster tracker and simultaneous multi-user
// classification (the §VII-1 future-work extension).
#include <gtest/gtest.h>

#include <cmath>

#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "kinematics/performer.hpp"
#include "radar/sensor.hpp"
#include "system/multi_person.hpp"
#include "system/multi_user.hpp"
#include "system/tracker.hpp"

namespace gp {
namespace {

// A frame with one dense blob at `center` (enough points to be a core
// cluster under the tracker's per-frame DBSCAN).
FrameCloud blob_frame(int index, const Vec3& center, std::size_t n = 6, double spread = 0.15) {
  FrameCloud frame;
  frame.frame_index = index;
  frame.timestamp = index * 0.1;
  Rng rng(static_cast<std::uint64_t>(index) * 977 + 13);
  for (std::size_t i = 0; i < n; ++i) {
    RadarPoint p;
    p.position = center + Vec3(rng.gaussian(0.0, spread), rng.gaussian(0.0, spread),
                               rng.gaussian(0.0, spread));
    p.frame = index;
    frame.points.push_back(p);
  }
  return frame;
}

TEST(Tracker, SingleTargetFollowedAcrossFrames) {
  ClusterTracker tracker;
  for (int f = 0; f < 20; ++f) {
    // Target drifts slowly (+0.03 m per frame, inside the gate).
    tracker.push(blob_frame(f, Vec3(0.03 * f, 1.2, 0.0)));
  }
  ASSERT_EQ(tracker.tracks().size(), 1u);
  const Track& track = tracker.tracks().front();
  EXPECT_EQ(track.frames_observed, 20u);
  EXPECT_NEAR(track.centroid.x, 0.03 * 19, 0.12);
  EXPECT_GE(track.points.size(), 100u);
}

TEST(Tracker, TwoSeparatedTargetsGetTwoTracks) {
  ClusterTracker tracker;
  for (int f = 0; f < 15; ++f) {
    FrameCloud frame = blob_frame(f, Vec3(-1.0, 1.2, 0.0));
    const FrameCloud second = blob_frame(f + 1000, Vec3(1.5, 2.0, 0.0));
    frame.points.insert(frame.points.end(), second.points.begin(), second.points.end());
    frame.frame_index = f;
    tracker.push(frame);
  }
  EXPECT_EQ(tracker.tracks().size(), 2u);
  // Identities are stable: track centroids stay near their own blob.
  for (const Track& track : tracker.tracks()) {
    const bool near_first = distance(track.centroid, Vec3(-1.0, 1.2, 0.0)) < 0.4;
    const bool near_second = distance(track.centroid, Vec3(1.5, 2.0, 0.0)) < 0.4;
    EXPECT_TRUE(near_first || near_second);
  }
}

TEST(Tracker, TrackRetiresAfterMisses) {
  TrackerParams params;
  params.max_misses = 3;
  ClusterTracker tracker(params);
  for (int f = 0; f < 8; ++f) tracker.push(blob_frame(f, Vec3(0, 1.5, 0)));
  ASSERT_EQ(tracker.tracks().size(), 1u);
  // Target disappears.
  for (int f = 8; f < 14; ++f) {
    FrameCloud empty;
    empty.frame_index = f;
    tracker.push(empty);
  }
  EXPECT_TRUE(tracker.tracks().empty());
  const auto finished = tracker.take_finished();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished.front().frames_observed, 8u);
  // take_finished drains.
  EXPECT_TRUE(tracker.take_finished().empty());
}

TEST(Tracker, ReappearanceBeyondGateSpawnsNewTrack) {
  ClusterTracker tracker;
  for (int f = 0; f < 6; ++f) tracker.push(blob_frame(f, Vec3(0, 1.2, 0)));
  // Jump far beyond the gate in one frame.
  for (int f = 6; f < 12; ++f) tracker.push(blob_frame(f, Vec3(3.0, 3.0, 0)));
  // Old track ages out eventually; at this point both may coexist.
  EXPECT_GE(tracker.tracks().size(), 1u);
  bool has_far = false;
  for (const Track& t : tracker.tracks()) {
    if (distance(t.centroid, Vec3(3.0, 3.0, 0.0)) < 0.5) has_far = true;
  }
  EXPECT_TRUE(has_far);
}

TEST(Tracker, FinishFlushesLiveTracks) {
  ClusterTracker tracker;
  for (int f = 0; f < 5; ++f) tracker.push(blob_frame(f, Vec3(0, 1.5, 0)));
  tracker.finish();
  EXPECT_TRUE(tracker.tracks().empty());
  EXPECT_EQ(tracker.take_finished().size(), 1u);
}

TEST(MultiUser, ClassifiesTwoSimultaneousGesturers) {
  // Train a small system, then have two enrolled users gesture at the same
  // time, 2.5 m apart: classify_multi must produce (at least) two tracks
  // and assign plausible gestures.
  DatasetScale scale;
  scale.max_users = 2;
  scale.reps = 10;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(3);
  const Dataset dataset = generate_dataset(spec);

  GesturePrintConfig config;
  config.training.epochs = 6;
  config.prep.augmentation.copies = 2;
  GesturePrintSystem system(config);
  Rng split_rng(5, 1);
  system.fit(dataset, stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);

  // Compose the simultaneous scene from both enrolled users' biometrics.
  Rng user_rng(spec.user_seed, 0x5bd1e995ULL);
  const UserProfile user0 = UserProfile::sample(0, user_rng);
  const UserProfile user1 = UserProfile::sample(1, user_rng);
  PerformanceConfig perf0;
  PerformanceConfig perf1;
  perf1.lateral = 2.5;
  const GesturePerformer p0(user0, perf0);
  const GesturePerformer p1(user1, perf1);
  Rng rep(9);
  const SceneSequence merged =
      merge_scenes(p0.perform(spec.gestures[0], rep), p1.perform(spec.gestures[2], rep));
  Rng radar_rng(3);
  const FrameSequence frames = RadarSensor().observe(merged, radar_rng);

  const auto results = classify_multi(system, frames);
  ASSERT_GE(results.size(), 2u);

  // The two largest tracks sit near the two users' positions.
  const MultiUserResult* near_track = nullptr;
  const MultiUserResult* far_track = nullptr;
  for (const auto& r : results) {
    if (std::abs(r.position.x) < 1.0) near_track = &r;
    if (r.position.x > 1.5) far_track = &r;
  }
  ASSERT_NE(near_track, nullptr);
  ASSERT_NE(far_track, nullptr);
  EXPECT_GE(near_track->num_points, 12u);
  EXPECT_GE(far_track->num_points, 12u);
  // Gesture assignments are valid labels (accuracy asserted loosely: the
  // near user's gesture 0 should usually be recovered).
  EXPECT_GE(near_track->inference.gesture, 0);
  EXPECT_LT(near_track->inference.gesture, 3);
}

TEST(MultiUser, RequiresFittedSystem) {
  GesturePrintSystem system{GesturePrintConfig{}};
  FrameSequence frames(3);
  EXPECT_THROW(classify_multi(system, frames), InvalidArgument);
}

}  // namespace
}  // namespace gp
