// Differential battery for the blocked GEMM kernels (DESIGN.md §11).
//
// The optimized matmul/matmul_bt/matmul_at in src/nn/tensor.cpp are pinned
// against the retained naive references in src/nn/gemm_ref.hpp:
//
//   * matmul / matmul_at — BIT-FOR-BIT (memcmp) on every shape in the grid;
//   * matmul_bt          — band-checked at ulp scale (its serial k-reduction
//                          picks up a TU-dependent contraction mix, see the
//                          contract comment in gemm_ref.hpp);
//   * all three          — bitwise-invariant across GP_THREADS counts.
//
// The shape grid deliberately mixes tile multiples, odd/ragged shapes,
// degenerate vectors, and empty tensors so every remainder-handling branch
// of the register-tiled kernels runs. scripts/verify.sh re-runs this
// binary under -DGP_SANITIZE=address, which turns any out-of-tile read in
// the edge handling into a hard failure.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "exec/exec.hpp"
#include "nn/gemm_ref.hpp"
#include "nn/tensor.hpp"
#include "testkit/digest.hpp"

namespace gp::nn {
namespace {

struct Shape {
  std::size_t m, k, n;
};

// Odd/ragged shapes around the register-tile width, degenerate vectors,
// tall-skinny/wide panels, exact tile multiples, and the layer shapes the
// GesIDNet forward actually runs.
const std::vector<Shape> kShapeGrid{
    {1, 1, 1},     {1, 2, 3},     {2, 3, 4},    {3, 3, 3},    {5, 7, 9},
    {7, 5, 11},    {13, 17, 15},  {17, 17, 17}, {1, 128, 1},  {64, 1, 64},
    {1, 1, 257},   {3, 200, 5},   {200, 3, 2},  {33, 129, 31}, {129, 64, 33},
    {96, 160, 64}, {64, 96, 128}, {128, 128, 128},
};

/// ReLU-style activation fill: `zero_fraction` of entries exactly 0.0f so the
/// zero-skip fast paths in both reference and optimized kernels execute.
void fill(Tensor& t, Rng& rng, double zero_fraction) {
  for (float& v : t.vec()) {
    v = rng.uniform(0.0, 1.0) < zero_fraction
            ? 0.0f
            : static_cast<float>(rng.uniform(-2.0, 2.0));
  }
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.vec().empty() ||
          std::memcmp(a.vec().data(), b.vec().data(),
                      a.vec().size() * sizeof(float)) == 0);
}

testing::AssertionResult band_equal(const Tensor& a, const Tensor& b,
                                    std::size_t k_terms) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return testing::AssertionFailure() << "shape mismatch";
  }
  const double tol_scale = 8.0 * static_cast<double>(k_terms) *
                           static_cast<double>(std::numeric_limits<float>::epsilon());
  for (std::size_t i = 0; i < a.vec().size(); ++i) {
    const double x = a.vec()[i];
    const double y = b.vec()[i];
    const double mag = std::max({std::fabs(x), std::fabs(y), 1.0});
    if (std::fabs(x - y) > tol_scale * mag) {
      return testing::AssertionFailure()
             << "element " << i << ": " << x << " vs " << y << " (tol "
             << tol_scale * mag << ")";
    }
  }
  return testing::AssertionSuccess();
}

std::string digest_of(const Tensor& t) {
  testkit::Digest d;
  d.add_u64(t.rows());
  d.add_u64(t.cols());
  for (const float v : t.vec()) d.add_f64_bits(static_cast<double>(v));
  return d.hex();
}

TEST(GemmKernel, MatmulBitwiseMatchesReferenceAcrossShapeGrid) {
  Rng rng(0x6E11, 1);
  for (const Shape& s : kShapeGrid) {
    Tensor a(s.m, s.k), b(s.k, s.n);
    fill(a, rng, 0.4);
    fill(b, rng, 0.1);
    Tensor ref, opt;
    matmul_ref(a, b, ref);
    matmul(a, b, opt);
    EXPECT_TRUE(bitwise_equal(ref, opt))
        << "matmul " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmKernel, MatmulAtBitwiseMatchesReferenceAcrossShapeGrid) {
  Rng rng(0x6E11, 2);
  for (const Shape& s : kShapeGrid) {
    Tensor a(s.k, s.m), b(s.k, s.n);  // a is pre-transposed: out = a^T * b
    fill(a, rng, 0.4);
    fill(b, rng, 0.1);
    Tensor ref, opt;
    matmul_at_ref(a, b, ref);
    matmul_at(a, b, opt);
    EXPECT_TRUE(bitwise_equal(ref, opt))
        << "matmul_at " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmKernel, MatmulBtBandMatchesReferenceAcrossShapeGrid) {
  Rng rng(0x6E11, 3);
  for (const Shape& s : kShapeGrid) {
    Tensor a(s.m, s.k), bt(s.n, s.k);  // out = a * bt^T
    fill(a, rng, 0.2);
    fill(bt, rng, 0.2);
    Tensor ref, opt;
    matmul_bt_ref(a, bt, ref);
    matmul_bt(a, bt, opt);
    EXPECT_TRUE(band_equal(ref, opt, s.k))
        << "matmul_bt " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmKernel, EmptyOperandsProduceEmptyOutputs) {
  Tensor a(0, 0), b(0, 0), out(3, 3, 1.0f);
  matmul(a, b, out);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 0u);

  // Zero inner dimension: a well-formed (2x0)*(0x4) product is all zeros.
  Tensor a2(2, 0), b2(0, 4), out2;
  matmul(a2, b2, out2);
  ASSERT_EQ(out2.rows(), 2u);
  ASSERT_EQ(out2.cols(), 4u);
  for (const float v : out2.vec()) EXPECT_EQ(v, 0.0f);

  Tensor ref2;
  matmul_ref(a2, b2, ref2);
  EXPECT_TRUE(bitwise_equal(ref2, out2));
}

// NaN/Inf propagation must match the reference's zero-skip masking exactly:
// a NaN row of b multiplied only by a(i,k) == 0.0f never touches the output
// (the skip fires before the multiply), while any nonzero a(i,k) against a
// NaN/Inf b-row poisons the whole output row.
TEST(GemmKernel, NanInfPropagationMatchesZeroSkipSemantics) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();

  Tensor a(2, 3), b(3, 4);
  // Row 0 of a masks b-row 1 (the NaN row); row 1 of a touches it.
  a.at(0, 0) = 1.0f;  a.at(0, 1) = 0.0f;  a.at(0, 2) = 2.0f;
  a.at(1, 0) = 1.0f;  a.at(1, 1) = -1.0f; a.at(1, 2) = 0.5f;
  for (std::size_t j = 0; j < 4; ++j) {
    b.at(0, j) = 1.0f + static_cast<float>(j);
    b.at(1, j) = (j == 2) ? inf : nan;
    b.at(2, j) = 0.25f;
  }

  Tensor ref, opt;
  matmul_ref(a, b, ref);
  matmul(a, b, opt);
  EXPECT_TRUE(bitwise_equal(ref, opt));

  // The masked row stays finite; the touched row is poisoned.
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_TRUE(std::isfinite(opt.at(0, j))) << "masked row poisoned at j=" << j;
    EXPECT_FALSE(std::isfinite(opt.at(1, j))) << "NaN row not propagated at j=" << j;
  }

  // Same contract for matmul_at (skip on a(k,i) == 0.0f).
  Tensor at(3, 2);
  at.at(0, 0) = 1.0f;  at.at(0, 1) = 1.0f;
  at.at(1, 0) = 0.0f;  at.at(1, 1) = -1.0f;
  at.at(2, 0) = 2.0f;  at.at(2, 1) = 0.5f;
  Tensor ref_at, opt_at;
  matmul_at_ref(at, b, ref_at);
  matmul_at(at, b, opt_at);
  EXPECT_TRUE(bitwise_equal(ref_at, opt_at));
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_TRUE(std::isfinite(opt_at.at(0, j)));
    EXPECT_FALSE(std::isfinite(opt_at.at(1, j)));
  }
}

// Signed zeros must survive the zero-skip: an all-masked output element is
// produced by out.zero() and never written, so it is +0.0f bit-for-bit.
TEST(GemmKernel, FullyMaskedOutputIsPositiveZeroBits) {
  Tensor a(1, 3), b(3, 2);
  a.at(0, 0) = 0.0f;
  a.at(0, 1) = 0.0f;
  a.at(0, 2) = 0.0f;
  b.at(0, 0) = -5.0f;
  b.at(1, 1) = std::numeric_limits<float>::quiet_NaN();
  Tensor ref, opt;
  matmul_ref(a, b, ref);
  matmul(a, b, opt);
  EXPECT_TRUE(bitwise_equal(ref, opt));
  for (const float v : opt.vec()) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    EXPECT_EQ(bits, 0u) << "expected +0.0f bits, got sign/NaN leakage";
  }
}

TEST(GemmKernel, ThreadCountBitwiseInvariance) {
  Rng rng(0x6E11, 4);
  exec::ExecContext serial(1);
  exec::ExecContext quad(4);
  for (const Shape& s : kShapeGrid) {
    Tensor a(s.m, s.k), b(s.k, s.n), bt(s.n, s.k), at(s.k, s.m);
    fill(a, rng, 0.4);
    fill(b, rng, 0.1);
    fill(bt, rng, 0.1);
    fill(at, rng, 0.4);

    Tensor o1, o4;
    matmul(a, b, o1, serial);
    matmul(a, b, o4, quad);
    EXPECT_EQ(digest_of(o1), digest_of(o4))
        << "matmul threads 1 vs 4 at " << s.m << "x" << s.k << "x" << s.n;

    matmul_bt(a, bt, o1, serial);
    matmul_bt(a, bt, o4, quad);
    EXPECT_EQ(digest_of(o1), digest_of(o4))
        << "matmul_bt threads 1 vs 4 at " << s.m << "x" << s.k << "x" << s.n;

    matmul_at(at, b, o1, serial);
    matmul_at(at, b, o4, quad);
    EXPECT_EQ(digest_of(o1), digest_of(o4))
        << "matmul_at threads 1 vs 4 at " << s.m << "x" << s.k << "x" << s.n;
  }
}

}  // namespace
}  // namespace gp::nn
