// End-to-end system tests: GesturePrintSystem training/eval in both
// identification modes, classify() runtime path, multi-person separation
// (Fig. 15 logic), and the walker scene generator.
//
// These are integration tests over the whole stack, so they use small
// datasets and loose-but-meaningful accuracy bars.
#include <gtest/gtest.h>

#include "datasets/catalog.hpp"
#include "eval/splits.hpp"
#include "system/gestureprint.hpp"
#include "system/multi_person.hpp"

namespace gp {
namespace {

Dataset small_dataset(int env = 1, std::size_t users = 3, std::size_t gestures = 3,
                      std::size_t reps = 8) {
  DatasetScale scale;
  scale.max_users = users;
  scale.reps = reps;
  DatasetSpec spec = gestureprint_spec(env, scale);
  spec.gestures.resize(gestures);
  return generate_dataset(spec);
}

GesturePrintConfig quick_config() {
  GesturePrintConfig config;
  config.training.epochs = 6;
  config.training.batch_size = 16;
  config.prep.augmentation.copies = 2;
  return config;
}

Split split_by_pair(const Dataset& dataset, std::uint64_t seed = 77) {
  Rng rng(seed, 1);
  std::vector<int> strata;
  const int num_users = static_cast<int>(dataset.num_users());
  for (const auto& s : dataset.samples) strata.push_back(s.gesture * num_users + s.user);
  return stratified_split(strata, 0.2, rng);
}

TEST(System, SerializedModeLearnsBothTasks) {
  const Dataset dataset = small_dataset(1, 3, 3, 14);
  const Split split = split_by_pair(dataset);

  GesturePrintConfig config = quick_config();
  config.training.epochs = 8;
  GesturePrintSystem system(config);
  EXPECT_FALSE(system.fitted());
  system.fit(dataset, split.train);
  EXPECT_TRUE(system.fitted());

  const SystemEvaluation eval = system.evaluate(dataset, split.test);
  EXPECT_GT(eval.gra, 0.8);
  EXPECT_GT(eval.uia, 0.6);  // 3-user chance = 0.33
  EXPECT_GT(eval.grauc, 0.9);
  EXPECT_GT(eval.uiauc, 0.75);
  EXPECT_GT(eval.grf1, 0.75);
  EXPECT_LT(eval.user_roc.eer(), 0.35);
}

TEST(System, ParallelModeAlsoWorks) {
  const Dataset dataset = small_dataset(1, 3, 3, 12);
  const Split split = split_by_pair(dataset);

  GesturePrintConfig config = quick_config();
  config.mode = IdentificationMode::kParallel;
  config.training.epochs = 8;
  GesturePrintSystem system(config);
  system.fit(dataset, split.train);
  const SystemEvaluation eval = system.evaluate(dataset, split.test);
  EXPECT_GT(eval.gra, 0.8);
  EXPECT_GT(eval.uia, 0.55);
}

TEST(System, ClassifyReturnsValidDistributions) {
  const Dataset dataset = small_dataset();
  const Split split = split_by_pair(dataset);
  GesturePrintSystem system(quick_config());
  system.fit(dataset, split.train);

  const GestureSample& sample = dataset.samples[split.test.front()];
  const InferenceResult result = system.classify(sample.cloud);
  ASSERT_EQ(result.gesture_probabilities.size(), dataset.num_gestures());
  ASSERT_EQ(result.user_probabilities.size(), dataset.num_users());
  double gsum = 0.0;
  for (double p : result.gesture_probabilities) gsum += p;
  EXPECT_NEAR(gsum, 1.0, 1e-5);
  EXPECT_GE(result.gesture, 0);
  EXPECT_LT(result.gesture, static_cast<int>(dataset.num_gestures()));
  EXPECT_GE(result.user, 0);
  EXPECT_LT(result.user, static_cast<int>(dataset.num_users()));
}

TEST(System, EvaluateBeforeFitThrows) {
  const Dataset dataset = small_dataset(1, 2, 2, 4);
  GesturePrintSystem system(quick_config());
  const auto idx = std::vector<std::size_t>{0, 1};
  EXPECT_THROW(system.evaluate(dataset, idx), Error);
}

TEST(System, CrossDatasetEvaluationRuns) {
  // Train in the meeting room, evaluate on the office set (cross-env path).
  const Dataset meeting = small_dataset(1);
  const Dataset office = small_dataset(0);
  GesturePrintSystem system(quick_config());
  system.fit(meeting, split_by_pair(meeting).train);
  const SystemEvaluation eval = system.evaluate_dataset(office);
  // Degraded but far above chance for recognition.
  EXPECT_GT(eval.gra, 0.5);
}

TEST(MultiPerson, MergeScenesCombinesReflectors) {
  SceneSequence a(3);
  SceneSequence b(2);
  for (auto& f : a) f.reflectors.resize(2);
  for (auto& f : b) f.reflectors.resize(3);
  const SceneSequence merged = merge_scenes(a, b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].reflectors.size(), 5u);
  EXPECT_EQ(merged[2].reflectors.size(), 2u);
}

TEST(MultiPerson, WalkerSceneMovesAcrossFrames) {
  Rng rng(1);
  WalkerConfig config;
  const SceneSequence scene = make_walker_scene(config, rng);
  ASSERT_EQ(scene.size(), static_cast<std::size_t>(config.num_frames));
  // The torso drifts by velocity * time.
  const Vec3 start = scene.front().reflectors.front().position;
  const Vec3 end = scene.back().reflectors.front().position;
  EXPECT_NEAR(end.x - start.x, config.velocity.x * 3.9, 0.15);
  // Walker reflectors carry non-zero Doppler (so clutter removal keeps them
  // — which is exactly why DBSCAN-based separation matters).
  EXPECT_GT(scene[5].reflectors.front().velocity.norm(), 0.3);
}

TEST(MultiPerson, SeparationIsolatesUserFromWalker) {
  // User gestures at 1.2 m while someone walks past 2+ m away laterally:
  // the main cluster must be the user's.
  Rng rng(2);
  const UserProfile user = UserProfile::sample(0, rng);
  PerformanceConfig perf;
  const GesturePerformer performer(user, perf);
  Rng rep(3);
  SceneSequence gesture_scene = performer.perform(asl_gesture_set()[0], rep);

  WalkerConfig walker;
  walker.start = Vec3(2.5, 3.4, 0.0);
  walker.velocity = Vec3(-0.7, 0.0, 0.0);
  walker.num_frames = static_cast<int>(gesture_scene.size());
  const SceneSequence walker_scene = make_walker_scene(walker, rng);

  const SceneSequence merged = merge_scenes(gesture_scene, walker_scene);
  const RadarSensor sensor;
  const FrameSequence frames = sensor.observe(merged, rng);

  const Vec3 user_position(0.0, 1.2, 0.0);
  const SeparationResult result = analyze_separation(aggregate(frames), user_position);
  EXPECT_GE(result.num_clusters, 2u);
  EXPECT_GT(result.centroid_gap, 1.0);
  // A long walk can out-point the gesture, so size-based selection is not
  // guaranteed here — but the work-zone policy must find the user cluster.
  EXPECT_LT(result.zone_cluster_distance, 0.8);
  EXPECT_GT(result.zone_cluster_size, 30u);
}

TEST(MultiPerson, SecondGesturerSeparatedWhenFarEnough) {
  // Two people gesturing 2.5 m apart (well beyond D_max = 1 m): DBSCAN must
  // keep them in distinct clusters.
  Rng rng(4);
  const UserProfile user_a = UserProfile::sample(0, rng);
  const UserProfile user_b = UserProfile::sample(1, rng);
  PerformanceConfig perf_a;
  PerformanceConfig perf_b;
  perf_b.lateral = 2.5;
  const GesturePerformer pa(user_a, perf_a);
  const GesturePerformer pb(user_b, perf_b);
  Rng rep(5);
  const SceneSequence merged =
      merge_scenes(pa.perform(asl_gesture_set()[0], rep), pb.perform(asl_gesture_set()[4], rep));

  const RadarSensor sensor;
  const FrameSequence frames = sensor.observe(merged, rng);
  const SeparationResult result = analyze_separation(aggregate(frames), Vec3(0.0, 1.2, 0.0));
  EXPECT_GE(result.num_clusters, 2u);
  EXPECT_GT(result.main_cluster_fraction, 0.3);
}

}  // namespace
}  // namespace gp
