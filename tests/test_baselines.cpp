// Baseline classifier tests: each comparison network (PointNet / EdgeConv /
// ProfileNet / DTW-kNN) must learn the same separable synthetic task, and
// their specific mechanics (profiles, trajectories, DTW) are unit tested.
#include <gtest/gtest.h>

#include "baselines/dtw_knn.hpp"
#include "baselines/edgeconv.hpp"
#include "baselines/pointnet.hpp"
#include "baselines/profile_net.hpp"
#include "gesidnet/trainer.hpp"
#include "nn/loss.hpp"

namespace gp {
namespace {

// Class 0: slow cloud drifting left-to-rest; class 1: fast cloud moving up.
// Separable in both trajectory and velocity statistics.
FeaturizedSample synth_sample(int label, Rng& rng, std::size_t points = 32) {
  FeaturizedSample s;
  s.num_points = points;
  s.dims = 7;
  for (std::size_t i = 0; i < points; ++i) {
    const double t = rng.uniform();
    const double x = label == 0 ? 0.4 - 0.8 * t : 0.0;
    const double z = label == 0 ? 0.0 : -0.3 + 0.6 * t;
    const double v = label == 0 ? 0.3 : 0.9;
    const double px = x + rng.gaussian(0.0, 0.05);
    const double py = rng.gaussian(0.0, 0.05);
    const double pz = z + rng.gaussian(0.0, 0.05);
    s.positions.insert(s.positions.end(),
                       {static_cast<float>(px), static_cast<float>(py), static_cast<float>(pz)});
    s.features.insert(s.features.end(),
                      {static_cast<float>(px), static_cast<float>(py), static_cast<float>(pz),
                       static_cast<float>(v + rng.gaussian(0.0, 0.05)), 0.5f,
                       static_cast<float>(t), 0.5f});
  }
  return s;
}

LabeledSamples synth_dataset(std::size_t per_class, Rng& rng) {
  LabeledSamples data;
  for (std::size_t i = 0; i < per_class; ++i) {
    data.push(synth_sample(0, rng), 0);
    data.push(synth_sample(1, rng), 1);
  }
  return data;
}

template <typename Model>
void expect_learns(Model& model, Rng& rng, double min_accuracy = 0.9) {
  const LabeledSamples train = synth_dataset(20, rng);
  TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 16;
  tc.lr = 2e-3;
  const TrainStats stats = train_classifier(model, train, tc);
  EXPECT_GT(stats.train_accuracy, min_accuracy);

  Rng fresh(4242);
  const LabeledSamples test = synth_dataset(10, fresh);
  const nn::Tensor logits = predict_logits(model, test.samples);
  EXPECT_GT(nn::accuracy(logits, test.labels), min_accuracy);
}

TEST(PointNet, LearnsSeparableTask) {
  Rng rng(1);
  PointNetConfig config;
  config.num_classes = 2;
  config.point_mlp = {16, 32};
  config.head_hidden = 16;
  PointNetBaseline model(config, rng);
  expect_learns(model, rng);
}

TEST(PointNet, OutputShape) {
  Rng rng(2);
  PointNetConfig config;
  config.num_classes = 4;
  PointNetBaseline model(config, rng);
  std::vector<FeaturizedSample> samples{synth_sample(0, rng), synth_sample(1, rng)};
  const nn::Tensor logits = model.infer(make_batch(samples, 0, 2));
  EXPECT_EQ(logits.rows(), 2u);
  EXPECT_EQ(logits.cols(), 4u);
}

TEST(EdgeConv, LearnsSeparableTask) {
  Rng rng(3);
  EdgeConvConfig config;
  config.num_classes = 2;
  config.k = 6;
  config.edge_mlp = {16, 24};
  config.global_mlp = {32};
  config.head_hidden = 16;
  EdgeConvBaseline model(config, rng);
  expect_learns(model, rng);
}

TEST(EdgeConv, HandlesKLargerThanPointCount) {
  Rng rng(4);
  EdgeConvConfig config;
  config.num_classes = 2;
  config.k = 100;  // > points: clamped internally
  EdgeConvBaseline model(config, rng);
  std::vector<FeaturizedSample> samples{synth_sample(0, rng, 8), synth_sample(1, rng, 8)};
  const nn::Tensor logits = model.infer(make_batch(samples, 0, 2));
  EXPECT_EQ(logits.rows(), 2u);
}

TEST(ProfileNet, ProfileExtractionAveragesBins) {
  Rng rng(5);
  ProfileNetConfig config;
  config.num_classes = 2;
  config.time_bins = 4;
  ProfileNetBaseline model(config, rng);

  // One sample, all points in time bin 0 at x=1.
  FeaturizedSample s;
  s.num_points = 4;
  s.dims = 7;
  for (int i = 0; i < 4; ++i) {
    s.positions.insert(s.positions.end(), {1.0f, 2.0f, 3.0f});
    s.features.insert(s.features.end(), {1.0f, 2.0f, 3.0f, 0.5f, 0.7f, 0.0f, 0.5f});
  }
  std::vector<FeaturizedSample> samples{s};
  const nn::Tensor profiles = model.extract_profiles(make_batch(samples, 0, 1));
  EXPECT_EQ(profiles.cols(), 4u * 6);
  EXPECT_FLOAT_EQ(profiles.at(0, 0), 1.0f);   // bin 0 centroid x
  EXPECT_FLOAT_EQ(profiles.at(0, 3), 0.5f);   // bin 0 mean Doppler
  EXPECT_FLOAT_EQ(profiles.at(0, 5), 1.0f);   // bin 0 holds all points
  EXPECT_FLOAT_EQ(profiles.at(0, 6 + 5), 0.0f);  // bin 1 empty
}

TEST(ProfileNet, LearnsSeparableTask) {
  Rng rng(6);
  ProfileNetConfig config;
  config.num_classes = 2;
  config.time_bins = 8;
  config.hidden = {32, 24};
  ProfileNetBaseline model(config, rng);
  expect_learns(model, rng);
}

TEST(DtwKnn, DistanceAxioms) {
  Trajectory a{{0, 0, 0, 0}, {1, 0, 0, 0}, {2, 0, 0, 0}};
  Trajectory b{{0, 1, 0, 0}, {1, 1, 0, 0}, {2, 1, 0, 0}};
  EXPECT_NEAR(dtw_distance(a, a), 0.0, 1e-12);
  EXPECT_NEAR(dtw_distance(a, b), dtw_distance(b, a), 1e-12);
  EXPECT_GT(dtw_distance(a, b), 0.0);
}

TEST(DtwKnn, WarpingToleratesSpeedChange) {
  // Same path traversed at different sampling densities: DTW distance must
  // stay far below the distance to a genuinely different path.
  Trajectory slow;
  Trajectory fast;
  for (int i = 0; i <= 10; ++i) slow.push_back({i * 0.1, 0, 0, 0});
  for (int i = 0; i <= 5; ++i) fast.push_back({i * 0.2, 0, 0, 0});
  Trajectory other;
  for (int i = 0; i <= 10; ++i) other.push_back({0, i * 0.1, 0, 0});
  EXPECT_LT(dtw_distance(slow, fast), 0.3 * dtw_distance(slow, other));
}

TEST(DtwKnn, ClassifiesSeparableTask) {
  Rng rng(7);
  DtwKnnClassifier classifier;
  classifier.fit(synth_dataset(15, rng));

  Rng fresh(4243);
  const LabeledSamples test = synth_dataset(10, fresh);
  const auto predictions = classifier.predict(test.samples);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    correct += predictions[i] == test.labels[i] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / predictions.size(), 0.85);
}

TEST(DtwKnn, PredictBeforeFitThrows) {
  DtwKnnClassifier classifier;
  Rng rng(8);
  EXPECT_THROW(classifier.predict(synth_sample(0, rng)), Error);
}

}  // namespace
}  // namespace gp
