// gp::obs tests: metric exactness under thread contention, span nesting,
// trace export well-formedness (the emitted JSON is parsed back with the
// in-tree parser), disabled-mode overhead sanity, and the determinism
// contract (instrumentation must never perturb model numerics).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "gesidnet/batch.hpp"
#include "gesidnet/gesidnet.hpp"
#include "gesidnet/trainer.hpp"
#include "nn/tensor.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gp {
namespace {

/// Restores the global metrics/trace switches on scope exit so tests can
/// toggle them freely without leaking state into other tests.
struct ObsSwitchGuard {
  bool metrics = obs::metrics_enabled();
  bool trace = obs::trace_enabled();
  ~ObsSwitchGuard() {
    obs::set_metrics_enabled(metrics);
    obs::set_trace_enabled(trace);
  }
};

// ----------------------------------------------------------------- metrics

TEST(ObsMetrics, CounterExactUnderContention) {
  ObsSwitchGuard guard;
  obs::set_metrics_enabled(true);
  obs::Counter& counter = obs::counter("gp.test.contended_counter");
  counter.reset();

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsMetrics, HistogramExactMomentsUnderContention) {
  ObsSwitchGuard guard;
  obs::set_metrics_enabled(true);
  obs::Histogram& hist = obs::histogram("gp.test.contended_histogram");
  hist.reset();

  // Every thread observes the same integer-valued sequence: count, sum, min
  // and max all have exact expected values regardless of interleaving
  // (integer-valued doubles sum exactly at these magnitudes).
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) hist.observe(static_cast<double>(1 + i % 100));
    });
  }
  for (auto& thread : threads) thread.join();

  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  // Per thread: 200 full cycles of 1..100 -> 200 * 5050.
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(kThreads) * 200.0 * 5050.0);

  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsMetrics, QuantileWithinBucketResolution) {
  ObsSwitchGuard guard;
  obs::set_metrics_enabled(true);
  obs::Histogram& hist = obs::histogram("gp.test.quantile_histogram");
  hist.reset();

  for (int i = 1; i <= 1000; ++i) hist.observe(static_cast<double>(i));
  const obs::HistogramSnapshot snap = hist.snapshot();

  // Geometric buckets with growth 1.2 bound the relative error by ~20%.
  EXPECT_NEAR(snap.quantile(0.5), 500.0, 0.2 * 500.0);
  EXPECT_NEAR(snap.quantile(0.95), 950.0, 0.2 * 950.0);
  EXPECT_NEAR(snap.quantile(0.99), 990.0, 0.2 * 990.0);
  // Estimates are clamped to the observed range.
  EXPECT_GE(snap.quantile(0.0), snap.min);
  EXPECT_LE(snap.quantile(1.0), snap.max);
}

TEST(ObsMetrics, DisabledRecordingIsDropped) {
  ObsSwitchGuard guard;
  obs::Counter& counter = obs::counter("gp.test.disabled_counter");
  counter.reset();
  obs::set_metrics_enabled(false);
  counter.add(42);
  obs::set_metrics_enabled(true);
  EXPECT_EQ(counter.value(), 0u);
  counter.add(1);
  EXPECT_EQ(counter.value(), 1u);
}

TEST(ObsMetrics, RegistryJsonParsesBack) {
  ObsSwitchGuard guard;
  obs::set_metrics_enabled(true);
  obs::counter("gp.test.json_counter").add(3);
  obs::gauge("gp.test.json_gauge").set(2.5);
  obs::histogram("gp.test.json_histogram").observe(1.25);

  std::ostringstream out;
  obs::Registry::global().to_json(out, 2);
  const obs::json::Value doc = obs::json::parse(out.str());
  ASSERT_TRUE(doc.is_object());
  const obs::json::Value& counters = doc.at("counters");
  ASSERT_TRUE(counters.is_object());
  ASSERT_NE(counters.find("gp.test.json_counter"), nullptr);
  EXPECT_GE(counters.at("gp.test.json_counter").num, 3.0);
  const obs::json::Value& hist = doc.at("histograms").at("gp.test.json_histogram");
  EXPECT_GE(hist.at("count").num, 1.0);
  EXPECT_GT(hist.at("p50").num, 0.0);
}

// ------------------------------------------------------------------- spans

TEST(ObsTrace, SpanNestingDepthsAndContainment) {
  ObsSwitchGuard guard;
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  obs::clear_trace();

  {
    GP_SPAN("test.outer");
    {
      GP_SPAN("test.middle");
      {
        GP_SPAN("test.inner");
      }
    }
  }

  const std::vector<obs::TraceEvent> events = obs::collect_trace_events();
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* middle = nullptr;
  const obs::TraceEvent* inner = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "test.outer") outer = &e;
    if (std::string(e.name) == "test.middle") middle = &e;
    if (std::string(e.name) == "test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  ASSERT_NE(inner, nullptr);

  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(middle->depth, 1);
  EXPECT_EQ(inner->depth, 2);
  EXPECT_EQ(outer->tid, middle->tid);
  EXPECT_EQ(middle->tid, inner->tid);

  // Children are contained within their parents.
  EXPECT_GE(middle->start_ns, outer->start_ns);
  EXPECT_LE(middle->start_ns + middle->duration_ns, outer->start_ns + outer->duration_ns);
  EXPECT_GE(inner->start_ns, middle->start_ns);
  EXPECT_LE(inner->start_ns + inner->duration_ns, middle->start_ns + middle->duration_ns);
}

TEST(ObsTrace, SpansFromWorkerThreadsKeepTheirOwnBuffers) {
  ObsSwitchGuard guard;
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  obs::clear_trace();

  constexpr int kThreads = 8;
  constexpr int kSpansEach = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansEach; ++i) {
        GP_SPAN("test.worker_span");
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Events survive thread exit; all of them are collectable afterwards.
  std::size_t worker_events = 0;
  for (const auto& e : obs::collect_trace_events()) {
    if (std::string(e.name) == "test.worker_span") ++worker_events;
  }
  EXPECT_EQ(worker_events, static_cast<std::size_t>(kThreads) * kSpansEach);
}

TEST(ObsTrace, StageStatsRecordMinDepthAndDurations) {
  ObsSwitchGuard guard;
  obs::set_metrics_enabled(true);
  {
    GP_SPAN("test.stage_depth_outer");
    GP_SPAN("test.stage_depth_inner");
  }
  bool outer_seen = false;
  bool inner_seen = false;
  for (const auto& s : obs::stage_snapshots()) {
    if (s.name == "test.stage_depth_outer") {
      outer_seen = true;
      EXPECT_EQ(s.min_depth, 0);
      EXPECT_GE(s.histogram.count, 1u);
    }
    if (s.name == "test.stage_depth_inner") {
      inner_seen = true;
      EXPECT_EQ(s.min_depth, 1);
    }
  }
  EXPECT_TRUE(outer_seen);
  EXPECT_TRUE(inner_seen);
}

TEST(ObsTrace, ChromeTraceJsonIsWellFormed) {
  ObsSwitchGuard guard;
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  obs::clear_trace();
  {
    GP_SPAN("test.export_outer");
    GP_SPAN("test.export_inner");
  }

  std::ostringstream out;
  obs::write_chrome_trace(out);
  const obs::json::Value doc = obs::json::parse(out.str());
  ASSERT_TRUE(doc.is_object());
  const obs::json::Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GE(events.arr.size(), 2u);
  std::size_t span_events = 0;
  std::size_t metadata_events = 0;
  for (const auto& e : events.arr) {
    ASSERT_TRUE(e.is_object());
    EXPECT_TRUE(e.at("name").is_string());
    if (e.at("ph").str == "M") {
      // Process/thread-name metadata: args carries the label, no timestamps.
      EXPECT_TRUE(e.at("args").is_object());
      ++metadata_events;
      continue;
    }
    EXPECT_EQ(e.at("ph").str, "X");
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_GE(e.at("dur").num, 0.0);
    EXPECT_TRUE(e.at("tid").is_number());
    ++span_events;
  }
  EXPECT_GE(span_events, 2u);
  EXPECT_GE(metadata_events, 1u);  // at least the process_name event
}

TEST(ObsTrace, ThreadNameMetadataAppearsInExport) {
  ObsSwitchGuard guard;
  obs::set_trace_enabled(true);
  obs::clear_trace();
  obs::set_thread_name("test.main");
  {
    GP_SPAN("test.named_thread");
  }

  std::ostringstream out;
  obs::write_chrome_trace(out);
  const obs::json::Value doc = obs::json::parse(out.str());
  const obs::json::Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  bool saw_name = false;
  for (const auto& e : events.arr) {
    if (e.at("ph").str != "M" || e.at("name").str != "thread_name") continue;
    if (e.at("args").at("name").str == "test.main") saw_name = true;
  }
  EXPECT_TRUE(saw_name);

  const auto names = obs::thread_names();
  bool listed = false;
  for (const auto& [tid, name] : names) {
    if (name == "test.main") listed = true;
  }
  EXPECT_TRUE(listed);
}

TEST(ObsTrace, RingBufferBoundsMemory) {
  ObsSwitchGuard guard;
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  obs::clear_trace();
  const std::size_t cap = obs::trace_buffer_capacity();
  for (std::size_t i = 0; i < cap + 1000; ++i) {
    GP_SPAN("test.ring_overflow");
  }
  std::size_t count = 0;
  for (const auto& e : obs::collect_trace_events()) {
    if (std::string(e.name) == "test.ring_overflow") ++count;
  }
  EXPECT_EQ(count, cap);  // oldest events were overwritten, newest kept
}

// ---------------------------------------------------------------- overhead

TEST(ObsOverhead, DisabledSpanIsCheap) {
  ObsSwitchGuard guard;
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);

  constexpr int kIters = 1000000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    GP_SPAN("test.disabled_span");
  }
  const double ns_per_span =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count()) /
      kIters;
  // Real cost is a few ns (one predicted branch); the bound is generous to
  // stay robust under sanitizers and loaded CI machines.
  EXPECT_LT(ns_per_span, 500.0);

  // Nothing was recorded while disabled.
  for (const auto& s : obs::stage_snapshots()) {
    if (s.name == "test.disabled_span") {
      EXPECT_EQ(s.histogram.count, 0u);
    }
  }
}

// ------------------------------------------------------------- determinism

FeaturizedSample synthetic_sample(Rng& rng, std::size_t num_points) {
  FeaturizedSample s;
  s.num_points = num_points;
  s.dims = 7;
  s.positions.reserve(num_points * 3);
  s.features.reserve(num_points * s.dims);
  for (std::size_t p = 0; p < num_points; ++p) {
    for (int d = 0; d < 3; ++d) {
      s.positions.push_back(static_cast<float>(rng.gaussian(0.0, 0.2)));
    }
    for (std::size_t d = 0; d < s.dims; ++d) {
      s.features.push_back(static_cast<float>(rng.gaussian(0.0, 1.0)));
    }
  }
  return s;
}

nn::Tensor train_and_predict_tiny() {
  Rng data_rng(99, 7);
  LabeledSamples data;
  for (int i = 0; i < 12; ++i) {
    data.samples.push_back(synthetic_sample(data_rng, 24));
    data.labels.push_back(i % 2);
  }

  GesIDNetConfig config;
  config.num_classes = 2;
  config.sa1_centroids = 8;
  config.sa2_centroids = 4;
  Rng init_rng(123, 5);
  GesIDNet model(config, init_rng);

  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 4;
  tc.seed = 11;
  train_classifier(model, data, tc);
  return predict_logits(model, data.samples, 6);
}

TEST(ObsDeterminism, TracingDoesNotPerturbLogits) {
  ObsSwitchGuard guard;

  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);
  const nn::Tensor plain = train_and_predict_tiny();

  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  const nn::Tensor traced = train_and_predict_tiny();

  ASSERT_EQ(plain.rows(), traced.rows());
  ASSERT_EQ(plain.cols(), traced.cols());
  for (std::size_t i = 0; i < plain.rows(); ++i) {
    for (std::size_t j = 0; j < plain.cols(); ++j) {
      EXPECT_EQ(plain.at(i, j), traced.at(i, j)) << "logit (" << i << "," << j << ")";
    }
  }
}

}  // namespace
}  // namespace gp
