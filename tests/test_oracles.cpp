// Differential oracles across the repo's intentionally-redundant paths.
//
//  * full FMCW chain vs fast geometric backend: per-frame cloud statistics
//    must agree within the physical tolerance bands of the fast backend's
//    calibration contract (testkit::default_backend_bands) — these are the
//    §III quantities GesturePrint's identifiability signal lives in.
//  * serial vs GP_THREADS=N: the whole GesturePrintSystem facade (fit →
//    logits → evaluation) must be bitwise identical under SerialScope vs a
//    wide pool — extending tests/test_determinism.cpp from single kernels
//    to the top of the stack.
//  * dataset cache hit vs fresh synthesis: exact digest equality.
//  * serialize → reload vs in-memory model: bitwise logit equality.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <span>
#include <sstream>

#include "datasets/cache.hpp"
#include "datasets/catalog.hpp"
#include "datasets/dataset.hpp"
#include "datasets/prep.hpp"
#include "exec/exec.hpp"
#include "gesidnet/trainer.hpp"
#include "kinematics/gesture_spec.hpp"
#include "kinematics/performer.hpp"
#include "radar/fast_backend.hpp"
#include "radar/frontend.hpp"
#include "system/gestureprint.hpp"
#include "testkit/oracle.hpp"

namespace gp {
namespace {

DatasetSpec small_spec(const std::string& name = "oracle") {
  DatasetScale scale;
  scale.max_users = 3;
  scale.reps = 2;
  DatasetSpec spec = gestureprint_spec(0, scale);
  spec.gestures.resize(3);
  spec.name = name;
  return spec;
}

std::filesystem::path fresh_temp_dir(const std::string& leaf) {
  const auto dir = std::filesystem::temp_directory_path() / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---- full FMCW chain vs fast geometric backend ----------------------------

TEST(BackendOracle, FullChainAndFastBackendAgreeWithinBands) {
  const RadarConfig radar;
  FastBackendConfig fast;
  fast.ghost_prob = 0.0;    // the comparison is on the clean physics;
  fast.clutter_rate = 0.0;  // clutter calibration is a separate contract

  // Aggregate over several (user, gesture) scenes so the statistics are
  // stable enough for the band check to be meaningful.
  const std::vector<GestureSpec> gestures = asl_gesture_set();
  FrameSequence full_all, fast_all;
  int stream = 0;
  for (int user_id = 0; user_id < 2; ++user_id) {
    Rng user_rng(404, 100 + user_id);
    const UserProfile user = UserProfile::sample(user_id, user_rng);
    const GesturePerformer performer(user, PerformanceConfig{});
    for (std::size_t g = 0; g < 3; ++g) {
      Rng scene_rng(404, 200 + stream);
      const SceneSequence scene = performer.perform(gestures[g], scene_rng);
      Rng full_rng(404, 300 + stream);
      FrameSequence full = process_scene(radar, scene, full_rng);
      Rng fast_rng(404, 400 + stream);
      FrameSequence fastf = fast_process_scene(radar, fast, scene, fast_rng);
      full_all.insert(full_all.end(), full.begin(), full.end());
      fast_all.insert(fast_all.end(), fastf.begin(), fastf.end());
      ++stream;
    }
  }

  const testkit::CloudStats full_stats = testkit::cloud_stats(full_all);
  const testkit::CloudStats fast_stats = testkit::cloud_stats(fast_all);
  ASSERT_GT(full_stats.total_points, 0.0);
  ASSERT_GT(fast_stats.total_points, 0.0);

  const auto violations =
      testkit::check_stat_bands(full_stats, fast_stats, testkit::default_backend_bands());
  std::string joined;
  for (const auto& v : violations) joined += "  " + v + "\n";
  EXPECT_TRUE(violations.empty()) << "backend statistics diverged:\n" << joined;
}

// ---- serial vs GP_THREADS=N on the whole system facade --------------------

struct FacadeRun {
  std::vector<float> logits;
  SystemEvaluation eval;
};

FacadeRun run_facade(const Dataset& dataset) {
  GesturePrintConfig config;
  config.training.epochs = 2;
  config.training.batch_size = 8;
  config.eval_rounds = 1;
  GesturePrintSystem system(config);

  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < dataset.samples.size(); ++i) {
    (i % 3 == 0 ? test_idx : train_idx).push_back(i);
  }
  system.fit(dataset, train_idx);

  Rng prep_rng(17);
  const LabeledSamples labeled = prepare_subset(dataset, test_idx, LabelKind::kGesture,
                                                PrepConfig{}, prep_rng);
  const nn::Tensor logits = predict_logits(system.gesture_model(), labeled.samples, 8);
  FacadeRun run;
  run.logits = logits.vec();
  run.eval = system.evaluate(dataset, test_idx);
  return run;
}

TEST(ThreadOracle, SystemFacadeIsBitwiseSerialVsParallel) {
  exec::ExecContext wide(8);
  const Dataset dataset = generate_dataset(small_spec("facade"), wide);

  FacadeRun serial_run = [&] {
    exec::SerialScope serial;  // every internal ExecContext runs inline
    return run_facade(dataset);
  }();
  FacadeRun parallel_run = run_facade(dataset);  // global pool, GP_THREADS/default

  ASSERT_EQ(serial_run.logits.size(), parallel_run.logits.size());
  EXPECT_TRUE(serial_run.logits == parallel_run.logits);
  EXPECT_EQ(serial_run.eval.gra, parallel_run.eval.gra);
  EXPECT_EQ(serial_run.eval.grf1, parallel_run.eval.grf1);
  EXPECT_EQ(serial_run.eval.grauc, parallel_run.eval.grauc);
  EXPECT_EQ(serial_run.eval.uia, parallel_run.eval.uia);
  EXPECT_EQ(serial_run.eval.uif1, parallel_run.eval.uif1);
  EXPECT_EQ(serial_run.eval.uiauc, parallel_run.eval.uiauc);
}

// ---- cache hit vs fresh synthesis -----------------------------------------

TEST(CacheOracle, CacheHitEqualsFreshSynthesisExactly) {
  const auto dir = fresh_temp_dir("gp_oracle_cache");
  const DatasetSpec spec = small_spec("cache_oracle");
  exec::ExecContext ctx(4);

  const Dataset fresh = generate_dataset_cached(spec, dir.string(), ctx);   // miss
  const Dataset cached = generate_dataset_cached(spec, dir.string(), ctx);  // hit
  const Dataset direct = generate_dataset(spec, ctx);                       // no cache

  EXPECT_EQ(testkit::exact_digest(fresh), testkit::exact_digest(cached));
  EXPECT_EQ(testkit::exact_digest(fresh), testkit::exact_digest(direct));
  std::filesystem::remove_all(dir);
}

// And the stream round-trip on its own: write → read must be lossless.
TEST(CacheOracle, DatasetStreamRoundTripIsExact) {
  exec::ExecContext ctx(2);
  const Dataset dataset = generate_dataset(small_spec("roundtrip"), ctx);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_dataset(buf, dataset);
  const auto reloaded = read_dataset(buf, "roundtrip");
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(testkit::exact_digest(dataset), testkit::exact_digest(*reloaded));
}

// ---- serialize → reload vs in-memory model --------------------------------

TEST(SerializeOracle, SavedAndReloadedSystemEmitsBitwiseIdenticalLogits) {
  exec::ExecContext ctx(4);
  const Dataset dataset = generate_dataset(small_spec("saveload"), ctx);

  GesturePrintConfig config;
  config.training.epochs = 2;
  config.training.batch_size = 8;
  GesturePrintSystem trained(config);
  trained.fit(dataset, all_indices(dataset));

  Rng prep_rng(29);
  const LabeledSamples labeled = prepare_subset(dataset, all_indices(dataset),
                                                LabelKind::kGesture, PrepConfig{}, prep_rng);
  const nn::Tensor before =
      predict_logits(trained.gesture_model(), labeled.samples, 8, ctx);

  const auto dir = fresh_temp_dir("gp_oracle_saveload");
  const std::string path = (dir / "system.gpsy").string();
  trained.save(path);

  GesturePrintSystem reloaded(config);
  reloaded.load(path);
  const nn::Tensor after =
      predict_logits(reloaded.gesture_model(), labeled.samples, 8, ctx);

  EXPECT_EQ(testkit::exact_digest(before), testkit::exact_digest(after));
  EXPECT_TRUE(before.vec() == after.vec());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gp
