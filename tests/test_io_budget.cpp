// Tests for the recording I/O format, the radar link-budget analysis, and
// the allocation budgets of the repeated-IO paths (cache-hit dataset loads,
// steady trainer epochs) — the gp::mem counting hooks keep allocator
// traffic on these paths from silently regressing.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.hpp"
#include "common/mem.hpp"
#include "common/rng.hpp"
#include "datasets/cache.hpp"
#include "datasets/catalog.hpp"
#include "datasets/prep.hpp"
#include "exec/exec.hpp"
#include "gesidnet/gesidnet.hpp"
#include "gesidnet/trainer.hpp"
#include "kinematics/performer.hpp"
#include "pointcloud/io.hpp"
#include "radar/fmcw.hpp"
#include "radar/frontend.hpp"
#include "radar/link_budget.hpp"
#include "radar/sensor.hpp"

namespace gp {
namespace {

FrameSequence synth_recording() {
  Rng rng(1);
  const UserProfile user = UserProfile::sample(0, rng);
  const GesturePerformer performer(user, PerformanceConfig{});
  Rng rep(2);
  const SceneSequence scene = performer.perform(asl_gesture_set()[0], rep);
  return RadarSensor().observe(scene, rng);
}

TEST(RecordingIo, RoundTripPreservesEverything) {
  const FrameSequence original = synth_recording();
  std::stringstream buffer;
  save_recording(buffer, original);
  const FrameSequence restored = load_recording(buffer);

  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t f = 0; f < original.size(); ++f) {
    EXPECT_EQ(restored[f].frame_index, original[f].frame_index);
    EXPECT_DOUBLE_EQ(restored[f].timestamp, original[f].timestamp);
    ASSERT_EQ(restored[f].points.size(), original[f].points.size());
    for (std::size_t i = 0; i < original[f].points.size(); ++i) {
      EXPECT_DOUBLE_EQ(restored[f].points[i].position.x, original[f].points[i].position.x);
      EXPECT_DOUBLE_EQ(restored[f].points[i].velocity, original[f].points[i].velocity);
      EXPECT_EQ(restored[f].points[i].frame, original[f].points[i].frame);
    }
  }
}

TEST(RecordingIo, FileRoundTripAndMissingFile) {
  const FrameSequence original = synth_recording();
  const std::string path = testing::TempDir() + "gp_recording.gprc";
  save_recording_file(path, original);
  const auto restored = load_recording_file(path);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), original.size());
  std::filesystem::remove(path);

  EXPECT_FALSE(load_recording_file("/nonexistent/rec.gprc").has_value());
}

TEST(RecordingIo, GarbageThrows) {
  std::stringstream buffer;
  buffer << "garbage bytes";
  EXPECT_THROW(load_recording(buffer), SerializationError);
}

TEST(RecordingIo, CsvExportHasOneRowPerPoint) {
  const FrameSequence recording = synth_recording();
  const std::string path = testing::TempDir() + "gp_recording.csv";
  export_recording_csv(path, recording);

  std::ifstream in(path);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 1 + total_points(recording));  // header + points
  std::filesystem::remove(path);
}

// ---- link budget -----------------------------------------------------------

TEST(LinkBudget, SnrFallsAsFourthPowerOfRange) {
  const RadarConfig config;
  const LinkBudget near = compute_link_budget(config, 1.2, 1.0);
  const LinkBudget far = compute_link_budget(config, 2.4, 1.0);
  // Doubling range costs 12 dB in received power (R^-4 -> 40 log10(2)).
  EXPECT_NEAR(near.snr_db - far.snr_db, 40.0 * std::log10(2.0), 1e-9);
}

TEST(LinkBudget, SnrGrowsWithRcs) {
  const RadarConfig config;
  const LinkBudget small = compute_link_budget(config, 1.5, 0.5);
  const LinkBudget large = compute_link_budget(config, 1.5, 2.0);
  EXPECT_NEAR(large.snr_db - small.snr_db, 10.0 * std::log10(4.0), 1e-9);
}

TEST(LinkBudget, ProcessingGainMatchesFftSizes) {
  // Coherent gain: N*M * CG^2 (amplitude) over noise gain N*M*PG^2 and the
  // antenna-sum wash: per the model, gain = 10log10(N*M * CG^2/PG^2)... we
  // simply require the analytic value to be large and independent of range.
  const RadarConfig config;
  const LinkBudget a = compute_link_budget(config, 1.0, 1.0);
  const LinkBudget b = compute_link_budget(config, 3.0, 1.0);
  EXPECT_NEAR(a.processing_gain_db, b.processing_gain_db, 1e-9);
  EXPECT_GT(a.processing_gain_db, 25.0);  // 256x16 FFTs give > 300x power gain
}

TEST(LinkBudget, PredictsFullChainDetectability) {
  // A target the budget says is strong (SNR >> threshold) must actually be
  // detected by the full chain; one far below must not.
  RadarConfig config;
  config.noise_sigma = 0.004;
  Rng rng(3);

  const double strong_range = 1.5;
  const LinkBudget strong = compute_link_budget(config, strong_range, 2.0);
  ASSERT_GT(strong.snr_db, 15.0);
  SceneFrame scene;
  Reflector r;
  r.position = Vec3(0.0, strong_range, 0.0);
  r.velocity = Vec3(0.0, 1.0, 0.0);
  r.rcs = 2.0;
  scene.reflectors.push_back(r);
  const auto cube = synthesize_frame(config, scene.reflectors, rng);
  EXPECT_FALSE(detect_points(config, cube, 0).empty());
}

TEST(LinkBudget, DetectionRangeMonotoneInRcs) {
  // Thresholds chosen so the crossing happens inside the unambiguous range:
  // snr(R) = snr(1.2) - 40 log10(R/1.2) + 10 log10(rcs).
  const RadarConfig config;
  const double weak = detection_range(config, 0.05, 30.0);
  const double strong = detection_range(config, 0.5, 30.0);
  EXPECT_GT(strong, weak);
  EXPECT_GT(weak, 0.5);
  EXPECT_LT(strong, config.max_range());
  // Closed form: R = 1.2 * 10^((snr(1.2) + 10log10(rcs) - thr)/40).
  const double snr12 = compute_link_budget(config, 1.2, 1.0).snr_db;
  const double expected_weak =
      1.2 * std::pow(10.0, (snr12 + 10.0 * std::log10(0.05) - 30.0) / 40.0);
  EXPECT_NEAR(weak, expected_weak, 0.02);
}

TEST(LinkBudget, CalibratedFastBackendMatchesEmpiricalDefault) {
  // The analytic ideal-point-target budget minus the documented ~30 dB
  // implementation loss lands on the empirically tuned reference — i.e.
  // the fast backend's calibration is traceable to the radar equation.
  const RadarConfig config;
  const FastBackendConfig calibrated = calibrate_fast_backend(config);
  EXPECT_NEAR(calibrated.snr_ref_db, FastBackendConfig{}.snr_ref_db, 3.0);
  // Ideal bound always exceeds the empirical reference.
  EXPECT_GT(compute_link_budget(config, 1.2, 1.0).snr_db, FastBackendConfig{}.snr_ref_db);
}

// ---- allocation budgets ----------------------------------------------------

// A cache-hit dataset load must stay within a small per-sample allocation
// budget: deserialising a sample needs its cloud vector plus a few fixed
// buffers, nothing quadratic and nothing per-point. The bound is
// deliberately generous (an order above the observed cost) — it exists to
// catch accidental per-point or copy-amplifying regressions, not to pin the
// exact count.
TEST(AllocBudget, DatasetCacheHitLoadStaysBounded) {
  DatasetScale scale;
  scale.max_users = 2;
  scale.reps = 2;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(2);

  (void)generate_dataset_cached(spec);  // ensure the cache entry exists

  mem::AllocCounter counter;
  const Dataset dataset = generate_dataset_cached(spec);  // pure cache hit
  const std::uint64_t allocs = counter.allocations();

  ASSERT_FALSE(dataset.samples.empty());
  const std::uint64_t per_sample = allocs / dataset.samples.size();
  std::cout << "[budget] cache-hit load: " << allocs << " allocs for "
            << dataset.samples.size() << " samples (" << per_sample << "/sample)\n";
  EXPECT_LE(per_sample, 64u);
}

// Steady-state training: after the first epoch has sized every activation
// and gradient buffer, later epochs over the same data must not allocate
// more than the first did — per-epoch allocator traffic is bounded, not
// creeping.
TEST(AllocBudget, SteadyTrainerEpochStaysBounded) {
  DatasetScale scale;
  scale.max_users = 2;
  scale.reps = 3;
  DatasetSpec spec = gestureprint_spec(1, scale);
  spec.gestures.resize(2);
  const Dataset dataset = generate_dataset_cached(spec);

  Rng prep_rng(11);
  const LabeledSamples labeled = prepare_subset(dataset, all_indices(dataset),
                                                LabelKind::kGesture, PrepConfig{}, prep_rng);
  exec::ExecContext ctx(1);
  TrainConfig tc;
  tc.batch_size = 8;
  tc.seed = 5;

  const auto train_allocs = [&](std::size_t epochs) {
    Rng model_rng(51);
    GesIDNetConfig net_config;
    net_config.num_classes = dataset.num_gestures();
    GesIDNet model(net_config, model_rng);
    tc.epochs = epochs;
    mem::AllocCounter counter;
    (void)train_classifier(model, labeled, tc, ctx);
    return counter.allocations();
  };

  const std::uint64_t one_epoch = train_allocs(1);
  const std::uint64_t three_epochs = train_allocs(3);
  ASSERT_GE(three_epochs, one_epoch);
  const std::uint64_t per_steady_epoch = (three_epochs - one_epoch) / 2;
  std::cout << "[budget] trainer: first epoch " << one_epoch << " allocs, steady epoch "
            << per_steady_epoch << " allocs\n";
  // A steady epoch may allocate (fresh minibatch activations per step) but
  // must not exceed the first epoch, which bore all one-time setup.
  EXPECT_LE(per_steady_epoch, one_epoch);
  EXPECT_GT(one_epoch, 0u);  // the counting hooks are actually live
}

}  // namespace
}  // namespace gp
