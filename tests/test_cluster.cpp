// gp::cluster tests (DESIGN.md §12): checksummed wire protocol hardening,
// mid-gesture segmenter/session state round-trips, multi-process serving
// equivalence across worker counts, and the chaos acceptance bar — bit-flip
// and truncation link faults plus SIGKILL'd workers mid-stream must produce
// typed rejections, worker evictions, and migrated sessions whose final
// results are bitwise identical to a fault-free single-worker run.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/wire.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "datasets/catalog.hpp"
#include "datasets/dataset.hpp"
#include "eval/splits.hpp"
#include "health/flightrec.hpp"
#include "pipeline/segmentation.hpp"
#include "serve/server.hpp"
#include "system/gestureprint.hpp"

namespace gp {
namespace {

// ----------------------------------------------------------------- fixture

/// Shared world: one small trained + saved system and a few client streams,
/// built once for the whole binary (training dominates this file's runtime).
struct ClusterWorld {
  GesturePrintConfig config;
  std::string model_path;
  DatasetSpec spec;
  std::vector<ContinuousRecording> streams;  ///< per-session recordings
};

const ClusterWorld& world() {
  static const ClusterWorld* w = [] {
    auto* out = new ClusterWorld();
    DatasetScale scale;
    scale.max_users = 3;
    scale.reps = 8;
    out->spec = gestureprint_spec(1, scale);
    out->spec.gestures.resize(3);
    const Dataset dataset = generate_dataset(out->spec);

    out->config.training.epochs = 6;
    out->config.training.batch_size = 16;
    out->config.prep.augmentation.copies = 2;
    out->config.abstain_margin = 0.05;

    GesturePrintSystem system(out->config);
    Rng split_rng(3, 1);
    system.fit(dataset,
               stratified_split(dataset.gesture_labels(), 0.2, split_rng).train);
    out->model_path = testing::TempDir() + "gp_cluster_model.gpsy";
    system.save(out->model_path);

    const std::vector<std::vector<int>> scripts{{0, 2, 1}, {1, 0, 2}, {2, 1, 0}};
    for (std::size_t s = 0; s < scripts.size(); ++s) {
      out->streams.push_back(generate_recording(out->spec, s % out->spec.num_users,
                                                scripts[s], 0xC105 + s));
    }
    return out;
  }();
  return *w;
}

cluster::ClusterConfig base_config(std::size_t workers) {
  cluster::ClusterConfig cc;
  cc.workers = workers;
  cc.model_path = world().model_path;
  cc.serve.system = world().config;
  cc.serve.shards = 1;
  cc.checkpoint_every = 8;
  return cc;
}

const std::vector<std::uint64_t> kSessions{7, 1001, 424242};

/// Streams every recording frame-by-frame (interleaved) through a Cluster,
/// optionally SIGKILLing the owner of kSessions[0] at frame `kill_at`.
/// Returns all results sorted by (session, ordinal).
std::vector<serve::ServeResult> run_cluster(cluster::Cluster& cluster,
                                            std::size_t kill_at = SIZE_MAX) {
  const auto& streams = world().streams;
  std::size_t max_frames = 0;
  for (const auto& s : streams) max_frames = std::max(max_frames, s.frames.size());
  std::vector<serve::ServeResult> results;
  for (std::size_t f = 0; f < max_frames; ++f) {
    if (f == kill_at) {
      const std::size_t owner = cluster.owner_slot(kSessions[0]);
      EXPECT_NE(owner, static_cast<std::size_t>(-1)) << "victim session unowned";
      const pid_t pid = cluster.worker_pid(owner);
      EXPECT_GT(pid, 0);
      if (pid > 0) {
        EXPECT_EQ(::kill(pid, SIGKILL), 0);
      }
    }
    for (std::size_t i = 0; i < kSessions.size(); ++i) {
      if (f >= streams[i].frames.size()) continue;
      const serve::Admission verdict =
          cluster.push_frame(kSessions[i], streams[i].frames[f]);
      EXPECT_EQ(verdict, serve::Admission::kAccepted);
    }
    for (serve::ServeResult& r : cluster.pump()) results.push_back(std::move(r));
  }
  for (serve::ServeResult& r : cluster.drain()) results.push_back(std::move(r));
  std::sort(results.begin(), results.end(), [](const auto& a, const auto& b) {
    return a.session_id != b.session_id ? a.session_id < b.session_id
                                        : a.segment_ordinal < b.segment_ordinal;
  });
  return results;
}

void expect_bitwise_equal(const std::vector<serve::ServeResult>& a,
                          const std::vector<serve::ServeResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].session_id, b[i].session_id) << "row " << i;
    EXPECT_EQ(a[i].segment_ordinal, b[i].segment_ordinal) << "row " << i;
    EXPECT_EQ(a[i].request_id, b[i].request_id) << "row " << i;
    EXPECT_EQ(a[i].gesture, b[i].gesture) << "row " << i;
    EXPECT_EQ(a[i].user, b[i].user) << "row " << i;
    EXPECT_EQ(a[i].abstained, b[i].abstained) << "row " << i;
    EXPECT_EQ(a[i].quality_rejected, b[i].quality_rejected) << "row " << i;
    EXPECT_EQ(a[i].gesture_margin, b[i].gesture_margin) << "row " << i;  // bitwise
    EXPECT_EQ(a[i].user_margin, b[i].user_margin) << "row " << i;
  }
}

/// The fault-free single-worker reference every chaos run must match.
const std::vector<serve::ServeResult>& reference_results() {
  static const std::vector<serve::ServeResult>* ref = [] {
    cluster::Cluster c(base_config(1));
    return new std::vector<serve::ServeResult>(run_cluster(c));
  }();
  return *ref;
}

// ------------------------------------------------------------ wire protocol

TEST(ClusterWire, MessageRoundTrip) {
  cluster::Message msg;
  msg.type = cluster::MsgType::kFrame;
  msg.seq = 0x0123456789ABCDEFULL;
  msg.payload = std::string("hello\0world", 11);
  const std::string bytes = cluster::encode_message(msg);
  const cluster::Message back = cluster::decode_message(bytes);
  EXPECT_EQ(back.type, msg.type);
  EXPECT_EQ(back.seq, msg.seq);
  EXPECT_EQ(back.payload, msg.payload);
}

TEST(ClusterWire, FrameAndResultsRoundTrip) {
  const FrameCloud& frame = world().streams[0].frames[3];
  const std::string fp = cluster::encode_wire_frame(99, frame);
  const cluster::WireFrame wf = cluster::decode_wire_frame(fp);
  EXPECT_EQ(wf.session_id, 99u);
  EXPECT_EQ(wf.frame.frame_index, frame.frame_index);
  EXPECT_EQ(wf.frame.timestamp, frame.timestamp);
  ASSERT_EQ(wf.frame.points.size(), frame.points.size());
  for (std::size_t i = 0; i < frame.points.size(); ++i) {
    EXPECT_EQ(wf.frame.points[i].position.x, frame.points[i].position.x);
    EXPECT_EQ(wf.frame.points[i].velocity, frame.points[i].velocity);
    EXPECT_EQ(wf.frame.points[i].snr_db, frame.points[i].snr_db);
    EXPECT_EQ(wf.frame.points[i].frame, frame.points[i].frame);
  }

  std::vector<serve::ServeResult> results(2);
  results[0].session_id = 7;
  results[0].segment_ordinal = 3;
  results[0].request_id = 0xFEED;
  results[0].gesture = 2;
  results[0].user = 1;
  results[0].gesture_margin = 0.25;
  results[0].user_margin = -0.5;
  results[0].model_version = 42;
  results[1].session_id = 8;
  results[1].abstained = true;
  results[1].quality_rejected = true;
  const std::string rp = cluster::encode_wire_results(results);
  const std::vector<serve::ServeResult> back = cluster::decode_wire_results(rp);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].session_id, 7u);
  EXPECT_EQ(back[0].segment_ordinal, 3u);
  EXPECT_EQ(back[0].request_id, 0xFEEDu);
  EXPECT_EQ(back[0].gesture, 2);
  EXPECT_EQ(back[0].user, 1);
  EXPECT_EQ(back[0].gesture_margin, 0.25);
  EXPECT_EQ(back[0].user_margin, -0.5);
  EXPECT_EQ(back[0].model_version, 42u);
  EXPECT_TRUE(back[1].abstained);
  EXPECT_TRUE(back[1].quality_rejected);
}

TEST(ClusterWire, ControlPayloadRoundTrips) {
  EXPECT_EQ(cluster::decode_ack(cluster::encode_ack(3)), 3u);
  EXPECT_EQ(cluster::decode_u64(cluster::encode_u64(0xDEADBEEFCAFEULL)),
            0xDEADBEEFCAFEULL);
  const auto [sid, blob] =
      cluster::decode_state(cluster::encode_state(12, std::string("\x00\x01gp", 4)));
  EXPECT_EQ(sid, 12u);
  EXPECT_EQ(blob, std::string("\x00\x01gp", 4));
  EXPECT_EQ(cluster::decode_text(cluster::encode_text("boom")), "boom");
}

// Every single-bit flip anywhere in the envelope must surface as a typed
// SerializationError — the FNV checksum covers the payload *and* the
// type/seq header words, so no corruption can silently alter routing or
// defeat the worker's duplicate suppression.
TEST(ClusterWire, EverySingleBitFlipIsRejectedTyped) {
  cluster::Message msg;
  msg.type = cluster::MsgType::kFrame;
  msg.seq = 17;
  msg.payload = cluster::encode_wire_frame(5, world().streams[0].frames[0]);
  const std::string bytes = cluster::encode_message(msg);
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      EXPECT_THROW(cluster::decode_message(corrupt), SerializationError)
          << "byte " << byte << " bit " << bit << " slipped through";
    }
  }
}

TEST(ClusterWire, EveryTruncationIsRejectedTyped) {
  cluster::Message msg;
  msg.type = cluster::MsgType::kResults;
  msg.seq = 29;
  msg.payload = cluster::encode_wire_results({serve::ServeResult{}});
  const std::string bytes = cluster::encode_message(msg);
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    EXPECT_THROW(cluster::decode_message(bytes.substr(0, keep)), SerializationError)
        << "truncation to " << keep << " bytes slipped through";
  }
}

TEST(ClusterWire, PayloadDecodersRejectCrossedTags) {
  // Feeding a frame payload to the results decoder (and vice versa) is a
  // typed error via the inner payload tags, not a garbage decode.
  const std::string frame_payload =
      cluster::encode_wire_frame(1, world().streams[0].frames[0]);
  const std::string results_payload = cluster::encode_wire_results({});
  EXPECT_THROW(cluster::decode_wire_results(frame_payload), SerializationError);
  EXPECT_THROW(cluster::decode_wire_frame(results_payload), SerializationError);
  EXPECT_THROW(cluster::decode_ack(cluster::encode_wire_results({})), SerializationError);
}

// -------------------------------------------------- state round-trips (§12)

/// Reference: all segments of `frames` from one uninterrupted segmenter.
std::vector<GestureSegment> segment_uninterrupted(const FrameSequence& frames) {
  GestureSegmenter seg;
  std::vector<GestureSegment> out;
  for (const FrameCloud& f : frames) {
    seg.push(f);
    for (GestureSegment& s : seg.take_segments()) out.push_back(std::move(s));
  }
  seg.finish();
  for (GestureSegment& s : seg.take_segments()) out.push_back(std::move(s));
  return out;
}

void expect_segments_equal(const std::vector<GestureSegment>& a,
                           const std::vector<GestureSegment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_frame, b[i].start_frame) << "segment " << i;
    EXPECT_EQ(a[i].end_frame, b[i].end_frame) << "segment " << i;
    ASSERT_EQ(a[i].frames.size(), b[i].frames.size()) << "segment " << i;
    for (std::size_t f = 0; f < a[i].frames.size(); ++f) {
      EXPECT_EQ(a[i].frames[f].frame_index, b[i].frames[f].frame_index);
      EXPECT_EQ(a[i].frames[f].timestamp, b[i].frames[f].timestamp);  // bitwise
      ASSERT_EQ(a[i].frames[f].points.size(), b[i].frames[f].points.size());
      for (std::size_t p = 0; p < a[i].frames[f].points.size(); ++p) {
        EXPECT_EQ(a[i].frames[f].points[p].position.x, b[i].frames[f].points[p].position.x);
        EXPECT_EQ(a[i].frames[f].points[p].position.y, b[i].frames[f].points[p].position.y);
        EXPECT_EQ(a[i].frames[f].points[p].position.z, b[i].frames[f].points[p].position.z);
        EXPECT_EQ(a[i].frames[f].points[p].velocity, b[i].frames[f].points[p].velocity);
      }
    }
  }
}

// Save mid-stream (including mid-gesture split points), restore into a
// fresh segmenter, finish the stream: the combined segment list must be
// bitwise identical to the uninterrupted run. This is the foundation the
// cluster's session-handoff determinism stands on.
TEST(ClusterStateRoundTrip, SegmenterResumesBitwiseAtManySplitPoints) {
  const FrameSequence& frames = world().streams[0].frames;
  const std::vector<GestureSegment> reference = segment_uninterrupted(frames);
  ASSERT_FALSE(reference.empty());
  // Split points: stream fractions plus one pinned *inside* a truth span
  // (mid-gesture — the hard case: an open gesture must survive the hop).
  std::vector<std::size_t> splits{frames.size() / 4, frames.size() / 2,
                                  (3 * frames.size()) / 4};
  const auto& spans = world().streams[0].truth_spans;
  ASSERT_FALSE(spans.empty());
  splits.push_back((spans[0].first + spans[0].second) / 2);
  for (const std::size_t split : splits) {
    std::vector<GestureSegment> combined;
    GestureSegmenter a;
    for (std::size_t f = 0; f < split; ++f) {
      a.push(frames[f]);
      for (GestureSegment& s : a.take_segments()) combined.push_back(std::move(s));
    }
    std::ostringstream blob(std::ios::binary);
    {
      BinaryWriter w(blob, "GPSG");
      a.save_state(w);
    }
    GestureSegmenter b;
    {
      std::istringstream in(blob.str(), std::ios::binary);
      BinaryReader r(in, "GPSG");
      b.load_state(r);
    }
    for (std::size_t f = split; f < frames.size(); ++f) {
      b.push(frames[f]);
      for (GestureSegment& s : b.take_segments()) combined.push_back(std::move(s));
    }
    b.finish();
    for (GestureSegment& s : b.take_segments()) combined.push_back(std::move(s));
    SCOPED_TRACE("split at frame " + std::to_string(split));
    expect_segments_equal(reference, combined);
  }
}

TEST(ClusterStateRoundTrip, SegmenterSaveRequiresDrainedCompletedStore) {
  const FrameSequence& frames = world().streams[0].frames;
  GestureSegmenter seg;
  for (const FrameCloud& f : frames) seg.push(f);
  seg.finish();
  ASSERT_GT(seg.completed_count(), 0u);  // undrained on purpose
  std::ostringstream blob(std::ios::binary);
  BinaryWriter w(blob, "GPSG");
  EXPECT_THROW(seg.save_state(w), Error);
}

TEST(ClusterStateRoundTrip, SegmenterLoadRejectsParamsMismatch) {
  GestureSegmenter a;  // default params
  std::ostringstream blob(std::ios::binary);
  {
    BinaryWriter w(blob, "GPSG");
    a.save_state(w);
  }
  SegmentationParams other;
  other.detection_window += 1;
  GestureSegmenter b(other);
  std::istringstream in(blob.str(), std::ios::binary);
  BinaryReader r(in, "GPSG");
  EXPECT_THROW(b.load_state(r), SerializationError);
}

// Server-level handoff: export a live session mid-stream, restore it into a
// *fresh* server, finish the stream there — the migrated session's results
// (ordinals, ids, margins) must be bitwise those of the uninterrupted run.
TEST(ClusterStateRoundTrip, ServerSessionExportRestoreResumesBitwise) {
  serve::ServeConfig sc;
  sc.system = world().config;
  sc.shards = 1;
  sc.batch_wait_us = 0;
  serve::ModelRegistry registry(sc.system);
  ASSERT_TRUE(registry.publish_file(world().model_path, sc.quant).has_value());
  const std::uint64_t sid = 77;
  const FrameSequence& frames = world().streams[1].frames;

  std::vector<serve::ServeResult> reference;
  {
    serve::Server server(sc, registry);
    for (const FrameCloud& f : frames) {
      ASSERT_EQ(server.push_frame(sid, f), serve::Admission::kAccepted);
      for (auto& r : server.pump()) reference.push_back(std::move(r));
    }
    for (auto& r : server.drain()) reference.push_back(std::move(r));
  }
  ASSERT_FALSE(reference.empty());

  const std::size_t split = frames.size() / 2;
  std::vector<serve::ServeResult> migrated;
  std::string blob;
  {
    serve::Server first(sc, registry);
    for (std::size_t f = 0; f < split; ++f) {
      ASSERT_EQ(first.push_frame(sid, frames[f]), serve::Admission::kAccepted);
      for (auto& r : first.pump()) migrated.push_back(std::move(r));
    }
    std::ostringstream out(std::ios::binary);
    ASSERT_TRUE(first.export_session(sid, out));
    blob = out.str();
  }
  {
    serve::Server second(sc, registry);
    std::istringstream in(blob, std::ios::binary);
    second.restore_session(sid, in);
    for (std::size_t f = split; f < frames.size(); ++f) {
      ASSERT_EQ(second.push_frame(sid, frames[f]), serve::Admission::kAccepted);
      for (auto& r : second.pump()) migrated.push_back(std::move(r));
    }
    for (auto& r : second.drain()) migrated.push_back(std::move(r));
  }
  expect_bitwise_equal(reference, migrated);
}

TEST(ClusterStateRoundTrip, SessionRestoreRejectsWrongId) {
  serve::ServeConfig sc;
  sc.system = world().config;
  sc.shards = 1;
  serve::ModelRegistry registry(sc.system);
  serve::Server server(sc, registry);
  ASSERT_EQ(server.push_frame(5, world().streams[0].frames[0]),
            serve::Admission::kAccepted);
  server.pump();
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(server.export_session(5, out));
  EXPECT_FALSE(server.export_session(999, out));  // unknown session

  serve::Server other(sc, registry);
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_THROW(other.restore_session(6, in), SerializationError);
}

// -------------------------------------------------------- cluster serving

// The cluster's per-session results must be bitwise invariant to the worker
// count: routing decides only *where* a session is computed, never what it
// computes.
TEST(ClusterServe, ResultsInvariantToWorkerCount) {
  const auto& ref = reference_results();
  ASSERT_FALSE(ref.empty());
  for (const std::size_t workers : {2, 3}) {
    cluster::Cluster c(base_config(workers));
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_bitwise_equal(ref, run_cluster(c));
    EXPECT_EQ(c.stats().workers_evicted, 0u);
    EXPECT_EQ(c.verdict(), health::Verdict::kHealthy);
  }
}

TEST(ClusterServe, SpreadsSessionsAndCountsFrames) {
  cluster::Cluster c(base_config(3));
  const auto results = run_cluster(c);
  EXPECT_FALSE(results.empty());
  const cluster::Cluster::Stats stats = c.stats();
  EXPECT_GT(stats.frames_accepted, 0u);
  EXPECT_EQ(stats.frames_shed_no_worker, 0u);
  EXPECT_GT(stats.checkpoints, 0u);  // checkpoint_every=8 must have fired
  EXPECT_EQ(stats.results, results.size());
  std::vector<std::size_t> owners;
  for (const std::uint64_t sid : kSessions) owners.push_back(c.owner_slot(sid));
  for (const std::size_t owner : owners) ASSERT_LT(owner, 3u);
}

// SIGKILL the owner of a mid-stream session: the supervisor must evict the
// dead worker, respawn the slot, migrate its sessions (checkpoint restore +
// replay), and the final results must stay bitwise identical to the
// fault-free single-worker reference.
TEST(ClusterServe, SigkillMidStreamFailsOverBitwise) {
  health::FlightRecorder::global().clear();
  cluster::Cluster c(base_config(2));
  const std::size_t kill_at = world().streams[0].frames.size() / 2;
  expect_bitwise_equal(reference_results(), run_cluster(c, kill_at));
  const cluster::Cluster::Stats stats = c.stats();
  EXPECT_GE(stats.workers_evicted, 1u);
  EXPECT_GE(stats.evicted_process_died + stats.evicted_link_failure, 1u);
  EXPECT_GE(stats.sessions_migrated, 1u);
  EXPECT_GE(stats.workers_respawned, 1u);
  EXPECT_EQ(c.verdict(), health::Verdict::kHealthy);  // slot was respawned
  EXPECT_EQ(c.workers_alive(), 2u);

  bool saw_eviction = false;
  bool saw_migration = false;
  for (const health::FlightEvent& e : health::FlightRecorder::global().snapshot()) {
    saw_eviction |= e.kind == health::EventKind::kWorkerEvicted;
    saw_migration |= e.kind == health::EventKind::kSessionMigrated;
  }
  EXPECT_TRUE(saw_eviction) << "eviction missing from the flight recorder";
  EXPECT_TRUE(saw_migration) << "migration missing from the flight recorder";
}

// Deterministic link chaos on every link, both directions: corrupt
// envelopes must surface as typed rejections + retries (never crashes or
// wrong results), and the final stream must still be bitwise correct.
TEST(ClusterServe, LinkCorruptionIsRejectedTypedAndRetried) {
  cluster::ClusterConfig cc = base_config(2);
  cc.link_faults.flip_prob = 0.05;
  cc.link_faults.truncate_prob = 0.03;
  cc.link_faults.seed = 0xBADC0FFEEULL;
  cluster::Cluster c(cc);
  expect_bitwise_equal(reference_results(), run_cluster(c));
  const cluster::Cluster::Stats stats = c.stats();
  EXPECT_GT(stats.corrupt_requests + stats.corrupt_replies, 0u)
      << "chaos too weak: no corrupt envelope was ever seen";
  EXPECT_GT(stats.rpc_attempts, stats.rpc_calls) << "no retry ever fired";
}

// The ISSUE acceptance bar: link bit-flips + truncations AND a SIGKILL'd
// worker mid-stream, in one run. Typed corrupt-frame rejections observed,
// worker evicted, sessions migrated and resumed, final per-session results
// bitwise identical to the fault-free single-worker run, zero uncaught
// exceptions (any escape would fail the test process).
TEST(ClusterServe, ChaosAcceptanceKillAndCorruptMidStream) {
  cluster::ClusterConfig cc = base_config(2);
  cc.link_faults.flip_prob = 0.04;
  cc.link_faults.truncate_prob = 0.02;
  cluster::Cluster c(cc);
  const std::size_t kill_at = world().streams[0].frames.size() / 3;
  expect_bitwise_equal(reference_results(), run_cluster(c, kill_at));
  const cluster::Cluster::Stats stats = c.stats();
  EXPECT_GE(stats.workers_evicted, 1u);
  EXPECT_GE(stats.sessions_migrated, 1u);
  EXPECT_GT(stats.corrupt_requests + stats.corrupt_replies, 0u);
  EXPECT_EQ(stats.frames_shed_no_worker, 0u);
}

// A hung (SIGSTOP'd, not dead) worker must fall to the heartbeat prober:
// missed probes accumulate and the eviction is typed kMissedHeartbeats.
TEST(ClusterServe, HungWorkerEvictedByMissedHeartbeats) {
  cluster::ClusterConfig cc = base_config(2);
  cc.heartbeat_ms = 10;
  cc.max_missed_heartbeats = 2;
  cluster::Cluster c(cc);
  const pid_t pid = c.worker_pid(0);
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(pid, SIGSTOP), 0);
  for (int i = 0; i < 50 && c.stats().evicted_missed_heartbeats == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    c.supervise();
  }
  const cluster::Cluster::Stats stats = c.stats();
  EXPECT_GE(stats.heartbeat_probes, 1u);
  EXPECT_GE(stats.heartbeat_misses, 1u);
  EXPECT_GE(stats.evicted_missed_heartbeats, 1u)
      << "SIGSTOP'd worker was never evicted";
  EXPECT_EQ(c.workers_alive(), 2u);  // respawned into the same slot
}

// Graceful degradation end state: every worker down, respawn off — frames
// shed typed with the serve admission vocabulary and the verdict goes
// kUnhealthy; nothing throws.
TEST(ClusterServe, AllWorkersDownShedsTypedNoWorker) {
  cluster::ClusterConfig cc = base_config(1);
  cc.respawn = false;
  cluster::Cluster c(cc);
  ASSERT_EQ(c.push_frame(kSessions[0], world().streams[0].frames[0]),
            serve::Admission::kAccepted);
  const pid_t pid = c.worker_pid(0);
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  // SIGKILL delivery is asynchronous: poll supervise() until the child turns
  // reapable and the slot is evicted (no respawn with respawn=false).
  for (int i = 0; i < 200 && c.workers_alive() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    c.supervise();
  }
  EXPECT_EQ(c.workers_alive(), 0u);
  EXPECT_EQ(c.verdict(), health::Verdict::kUnhealthy);
  const serve::Admission verdict =
      c.push_frame(kSessions[0], world().streams[0].frames[1]);
  EXPECT_EQ(verdict, serve::Admission::kRejectedNoWorker);
  EXPECT_STREQ(serve::admission_name(verdict), "rejected_no_worker");
  EXPECT_GE(c.stats().frames_shed_no_worker, 1u);
  EXPECT_GE(c.stats().migration_failures, 1u);  // session could not re-home
}

TEST(ClusterServe, DegradedVerdictWhileASlotIsDown) {
  cluster::ClusterConfig cc = base_config(2);
  cc.respawn = false;
  cluster::Cluster c(cc);
  EXPECT_EQ(c.verdict(), health::Verdict::kHealthy);
  const pid_t pid = c.worker_pid(1);
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  for (int i = 0; i < 200 && c.workers_alive() > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    c.supervise();
  }
  EXPECT_EQ(c.workers_alive(), 1u);
  EXPECT_EQ(c.verdict(), health::Verdict::kDegraded);
  // The surviving slot still serves every session.
  ASSERT_EQ(c.push_frame(kSessions[0], world().streams[0].frames[0]),
            serve::Admission::kAccepted);
  ASSERT_EQ(c.push_frame(kSessions[1], world().streams[1].frames[0]),
            serve::Admission::kAccepted);
  EXPECT_EQ(c.owner_slot(kSessions[0]), 0u);
  EXPECT_EQ(c.owner_slot(kSessions[1]), 0u);
}

// ------------------------------------------------------------------ config

TEST(ClusterConfig, FromEnvAppliesAndValidates) {
  ::setenv("GP_CLUSTER_WORKERS", "5", 1);
  ::setenv("GP_CLUSTER_HEARTBEAT_MS", "123", 1);
  cluster::ClusterConfig cc = cluster::ClusterConfig::from_env();
  EXPECT_EQ(cc.workers, 5u);
  EXPECT_EQ(cc.heartbeat_ms, 123u);
  ::setenv("GP_CLUSTER_WORKERS", "zero", 1);
  ::setenv("GP_CLUSTER_HEARTBEAT_MS", "0", 1);
  cc = cluster::ClusterConfig::from_env();
  EXPECT_EQ(cc.workers, cluster::ClusterConfig{}.workers);  // junk ignored
  EXPECT_EQ(cc.heartbeat_ms, cluster::ClusterConfig{}.heartbeat_ms);
  ::unsetenv("GP_CLUSTER_WORKERS");
  ::unsetenv("GP_CLUSTER_HEARTBEAT_MS");
}

TEST(ClusterConfig, EvictionReasonNames) {
  EXPECT_STREQ(cluster::eviction_reason_name(cluster::EvictionReason::kProcessDied),
               "process_died");
  EXPECT_STREQ(cluster::eviction_reason_name(cluster::EvictionReason::kLinkFailure),
               "link_failure");
  EXPECT_STREQ(
      cluster::eviction_reason_name(cluster::EvictionReason::kMissedHeartbeats),
      "missed_heartbeats");
}

}  // namespace
}  // namespace gp
