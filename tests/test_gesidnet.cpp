// GesIDNet model tests: shape contracts, learning on separable synthetic
// tasks, auxiliary loss / fusion behaviour, feature extraction, trainer
// mechanics, and model serialization through the common interface.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "gesidnet/gesidnet.hpp"
#include "gesidnet/trainer.hpp"
#include "nn/loss.hpp"
#include "nn/serialize_nn.hpp"

namespace gp {
namespace {

// Tiny synthetic task: class 0 clouds sit near the origin and move slowly,
// class 1 clouds are offset and fast. Trivially separable: any functioning
// model must reach high accuracy quickly.
FeaturizedSample synth_sample(int label, Rng& rng, std::size_t points = 32) {
  FeaturizedSample s;
  s.num_points = points;
  s.dims = 7;
  const double offset = label == 0 ? -0.25 : 0.25;
  const double velocity = label == 0 ? 0.1 : 0.8;
  for (std::size_t i = 0; i < points; ++i) {
    const double x = offset + rng.gaussian(0.0, 0.08);
    const double y = rng.gaussian(0.0, 0.08);
    const double z = rng.gaussian(0.0, 0.08);
    s.positions.insert(s.positions.end(),
                       {static_cast<float>(x), static_cast<float>(y), static_cast<float>(z)});
    s.features.insert(
        s.features.end(),
        {static_cast<float>(x), static_cast<float>(y), static_cast<float>(z),
         static_cast<float>(velocity + rng.gaussian(0.0, 0.05)), 0.5f,
         static_cast<float>(rng.uniform()), 0.6f});
  }
  return s;
}

LabeledSamples synth_dataset(std::size_t per_class, Rng& rng) {
  LabeledSamples data;
  for (std::size_t i = 0; i < per_class; ++i) {
    data.push(synth_sample(0, rng), 0);
    data.push(synth_sample(1, rng), 1);
  }
  return data;
}

GesIDNetConfig tiny_config(std::size_t classes = 2) {
  GesIDNetConfig config;
  config.num_classes = classes;
  config.sa1_centroids = 8;
  config.sa1_scales = {{0.3, 4, {8, 12}}, {0.6, 6, {12, 16}}};
  config.sa2_centroids = 4;
  config.sa2_scales = {{0.5, 3, {16, 20}}};
  config.level1_mlp = {24, 32};
  config.level2_mlp = {32, 40};
  config.head1_hidden = 16;
  config.head2_hidden = 16;
  return config;
}

TEST(Batch, MakeBatchLayout) {
  Rng rng(1);
  std::vector<FeaturizedSample> samples{synth_sample(0, rng, 16), synth_sample(1, rng, 16)};
  const BatchedCloud batch = make_batch(samples, 0, 2);
  EXPECT_EQ(batch.batch, 2u);
  EXPECT_EQ(batch.num_points, 16u);
  EXPECT_EQ(batch.positions.rows(), 32u);
  EXPECT_EQ(batch.features.cols(), 7u);
  // Row 16 belongs to sample 1.
  EXPECT_FLOAT_EQ(batch.positions.at(16, 0), samples[1].positions[0]);
}

TEST(Batch, RejectsInhomogeneousSamples) {
  Rng rng(2);
  std::vector<FeaturizedSample> samples{synth_sample(0, rng, 16), synth_sample(1, rng, 24)};
  EXPECT_THROW(make_batch(samples, 0, 2), InvalidArgument);
}

TEST(GesIDNet, OutputShapesMatchClassCount) {
  Rng rng(3);
  GesIDNet model(tiny_config(5), rng);
  std::vector<FeaturizedSample> samples{synth_sample(0, rng), synth_sample(1, rng),
                                        synth_sample(0, rng)};
  const nn::Tensor logits = model.infer(make_batch(samples, 0, 3));
  EXPECT_EQ(logits.rows(), 3u);
  EXPECT_EQ(logits.cols(), 5u);
}

TEST(GesIDNet, LearnsSeparableTask) {
  Rng rng(4);
  const LabeledSamples train = synth_dataset(24, rng);
  GesIDNet model(tiny_config(), rng);

  TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 16;
  tc.lr = 2e-3;
  const TrainStats stats = train_classifier(model, train, tc);
  EXPECT_GT(stats.train_accuracy, 0.95);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());

  // Generalises to fresh draws.
  Rng fresh(1234);
  const LabeledSamples test = synth_dataset(12, fresh);
  const nn::Tensor logits = predict_logits(model, test.samples);
  EXPECT_GT(nn::accuracy(logits, test.labels), 0.9);
}

TEST(GesIDNet, FusionAblationStillLearnsButModelDiffers) {
  Rng rng(5);
  GesIDNetConfig config = tiny_config();
  config.enable_fusion = false;
  GesIDNet model(config, rng);
  const LabeledSamples train = synth_dataset(24, rng);
  TrainConfig tc;
  tc.epochs = 12;
  tc.batch_size = 16;
  tc.lr = 2e-3;
  const TrainStats stats = train_classifier(model, train, tc);
  EXPECT_GT(stats.train_accuracy, 0.9);

  // No fusion parameters registered.
  for (nn::Parameter* p : model.parameters()) {
    EXPECT_EQ(p->name.find("fusion"), std::string::npos);
  }
}

TEST(GesIDNet, FeatureExtractionShapes) {
  Rng rng(6);
  GesIDNet model(tiny_config(), rng);
  std::vector<FeaturizedSample> samples{synth_sample(0, rng), synth_sample(1, rng)};
  const GesIDNet::Features f = model.extract_features(make_batch(samples, 0, 2));
  EXPECT_EQ(f.low.rows(), 2u);
  EXPECT_EQ(f.high.rows(), 2u);
  EXPECT_EQ(f.fused_low.rows(), 2u);
  EXPECT_EQ(f.low.cols(), f.fused_low.cols());
  EXPECT_EQ(f.high.cols(), f.fused_high.cols());
}

TEST(GesIDNet, TrainStepReducesLossOnFixedBatch) {
  Rng rng(7);
  GesIDNet model(tiny_config(), rng);
  LabeledSamples data = synth_dataset(8, rng);
  const BatchedCloud batch = make_batch(data.samples, 0, data.samples.size());

  nn::Adam opt(model.parameters(), 2e-3);
  const double first = model.train_step(batch, data.labels);
  opt.step();
  double last = first;
  for (int i = 0; i < 20; ++i) {
    last = model.train_step(batch, data.labels);
    opt.step();
  }
  EXPECT_LT(last, first * 0.7);
}

TEST(GesIDNet, DeterministicForSameSeed) {
  Rng rng_a(8);
  Rng rng_b(8);
  GesIDNet a(tiny_config(), rng_a);
  GesIDNet b(tiny_config(), rng_b);
  Rng data_rng(9);
  std::vector<FeaturizedSample> samples{synth_sample(0, data_rng), synth_sample(1, data_rng)};
  const BatchedCloud batch = make_batch(samples, 0, 2);
  const nn::Tensor la = a.infer(batch);
  const nn::Tensor lb = b.infer(batch);
  for (std::size_t i = 0; i < la.numel(); ++i) EXPECT_FLOAT_EQ(la.vec()[i], lb.vec()[i]);
}

TEST(GesIDNet, SerializationRoundTripPreservesInference) {
  Rng rng(10);
  GesIDNet model(tiny_config(), rng);
  const LabeledSamples train = synth_dataset(8, rng);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 8;
  train_classifier(model, train, tc);

  std::stringstream buffer;
  nn::save_parameters(buffer, model.parameters());

  Rng rng2(999);
  GesIDNet restored(tiny_config(), rng2);
  nn::load_parameters(buffer, restored.parameters());

  // Note: running BN statistics are architecture state, not parameters; we
  // compare on a batch large enough that they are not used (inference mode
  // uses running stats in both models — restored keeps defaults, so compare
  // logits of the trained model against itself via a second save/load).
  std::stringstream buffer2;
  nn::save_parameters(buffer2, restored.parameters());
  Rng rng3(555);
  GesIDNet again(tiny_config(), rng3);
  nn::load_parameters(buffer2, again.parameters());

  const BatchedCloud batch = make_batch(train.samples, 0, 4);
  const nn::Tensor la = restored.infer(batch);
  const nn::Tensor lb = again.infer(batch);
  for (std::size_t i = 0; i < la.numel(); ++i) EXPECT_FLOAT_EQ(la.vec()[i], lb.vec()[i]);
}

TEST(Trainer, ArgmaxLabels) {
  nn::Tensor logits(2, 3);
  logits.at(0, 2) = 5.0f;
  logits.at(1, 0) = 5.0f;
  const auto labels = argmax_labels(logits);
  EXPECT_EQ(labels[0], 2);
  EXPECT_EQ(labels[1], 0);
}

TEST(Trainer, PredictLogitsAlignsWithSamples) {
  Rng rng(11);
  GesIDNet model(tiny_config(), rng);
  std::vector<FeaturizedSample> samples;
  for (int i = 0; i < 7; ++i) samples.push_back(synth_sample(i % 2, rng));
  const nn::Tensor logits = predict_logits(model, samples, 3);  // odd batch split
  EXPECT_EQ(logits.rows(), 7u);
}

TEST(Trainer, RejectsDegenerateInputs) {
  Rng rng(12);
  GesIDNet model(tiny_config(), rng);
  LabeledSamples empty;
  TrainConfig tc;
  EXPECT_THROW(train_classifier(model, empty, tc), InvalidArgument);

  LabeledSamples mismatched = synth_dataset(4, rng);
  mismatched.labels.pop_back();
  EXPECT_THROW(train_classifier(model, mismatched, tc), InvalidArgument);
}

}  // namespace
}  // namespace gp
