#!/usr/bin/env bash
# Tiered verification runner for the GesturePrint repo.
#
#   scripts/verify.sh            # tier 1: default build + full ctest
#   scripts/verify.sh asan       # tier 2: -DGP_SANITIZE=address build,
#                                #         fuzz-smoke + obs-smoke + fault + mem
#                                #         + gemm + quant + cluster labels
#   scripts/verify.sh tsan       # tier 3: -DGP_SANITIZE=thread build,
#                                #         tsan-smoke + serve + health labels
#   scripts/verify.sh all        # tiers 1 + 2 + 3 in sequence
#
# Tier 1 is the bar every PR must clear (ROADMAP "tier-1"); the sanitizer
# tiers re-run the labelled smoke subsets in instrumented builds. Each tier
# uses its own build directory (build, build-asan, build-tsan) so the
# instrumented caches never pollute the default one.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
MODE="${1:-tier1}"

run_tier1() {
  echo "==> tier 1: default build + full test suite"
  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build" -j "$JOBS"
  (cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")
}

run_asan() {
  echo "==> tier 2: AddressSanitizer build, fuzz-smoke + obs-smoke + fault + mem + gemm + quant + cluster + enroll labels"
  cmake -B "$ROOT/build-asan" -S "$ROOT" -DGP_SANITIZE=address >/dev/null
  cmake --build "$ROOT/build-asan" -j "$JOBS"
  # mem rides the asan lane: the counting operator new/delete and the arena
  # reuse paths must stay clean under ASan's allocator interposition.
  # gemm + quant ride it too: the register-tiled edge handling and the
  # int8 panel/scratch indexing are exactly where an out-of-tile read hides.
  # cluster rides asan (not tsan): the wire decoders chew corrupted bytes and
  # the failover path replays serialized session state — both are
  # memory-safety surfaces — while the fork()ed single-threaded workers give
  # TSan nothing to see and are kept out of its lane.
  # enroll rides asan: the GPEB/GPBG readers parse untrusted bytes and the
  # buffered-evidence clouds move through take()/fine-tune ownership handoffs
  # — lifetime bugs there are ASan's department.
  (cd "$ROOT/build-asan" && ctest --output-on-failure -j "$JOBS" -L 'fuzz-smoke|obs-smoke|fault|mem|gemm|quant|cluster|enroll')
}

run_tsan() {
  echo "==> tier 3: ThreadSanitizer build, tsan-smoke + serve + health labels"
  cmake -B "$ROOT/build-tsan" -S "$ROOT" -DGP_SANITIZE=thread >/dev/null
  cmake --build "$ROOT/build-tsan" -j "$JOBS"
  # health rides the tsan lane: any-thread admission/shed/fault producers
  # racing the pump thread's close_tick, plus the lock-free flight recorder.
  (cd "$ROOT/build-tsan" && ctest --output-on-failure -j "$JOBS" -L 'tsan-smoke|serve|health')
}

case "$MODE" in
  tier1) run_tier1 ;;
  asan)  run_asan ;;
  tsan)  run_tsan ;;
  all)   run_tier1; run_asan; run_tsan ;;
  *)
    echo "usage: $0 [tier1|asan|tsan|all]" >&2
    exit 2
    ;;
esac
echo "==> verify.sh: '$MODE' passed"
